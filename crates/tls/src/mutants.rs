//! Protocol mutants for failure injection.
//!
//! A verifier is only trustworthy if it *rejects* broken protocols. Each
//! mutant here is a small, meaningful flaw injected into the symbolic
//! model; `expected_failures` names the properties that must stop proving
//! (and the integration tests assert both directions: the listed
//! properties fail with the failure localized to the mutant transition,
//! and a control property still proves).
//!
//! The mutants also double as reproductions of known modeling ideas from
//! the paper's related work — `Oops` is Paulson's session-key-compromise
//! rule, cited in §6.

use crate::symbolic::TlsModel;
use equitls_core::prelude::Ots;
use equitls_core::CoreError;
use equitls_lint::{LintCode, LintConfig, Severity};
use equitls_spec::error::SpecError;
use equitls_spec::spec::Spec;

/// A named protocol mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// Paulson's `Oops`: any observed encrypted pre-master secret may be
    /// compromised (republished under the intruder's key). Breaks `inv1`.
    Oops,
    /// A trustable-but-buggy server writes a different server identity
    /// into its Finished hash. Breaks `lem-esfin-origin` (and with it the
    /// authenticity chain).
    ConfusedServer,
    /// A careless client encrypts its pre-master secret under the
    /// intruder's public key while naming an honest server. Breaks `inv1`.
    CarelessClient,
}

impl Mutant {
    /// All mutants.
    pub fn all() -> [Mutant; 3] {
        [Mutant::Oops, Mutant::ConfusedServer, Mutant::CarelessClient]
    }

    /// The name of the injected transition.
    pub fn transition_name(self) -> &'static str {
        match self {
            Mutant::Oops => "oops",
            Mutant::ConfusedServer => "confusedSfin",
            Mutant::CarelessClient => "carelessKx",
        }
    }

    /// Properties expected to *stop* proving under this mutant.
    pub fn expected_failures(self) -> &'static [&'static str] {
        match self {
            // Note: `lem-cepms-cpms` survives oops — the republished kx
            // feeds cpms and cepms together — only secrecy itself breaks.
            Mutant::Oops => &["inv1"],
            Mutant::ConfusedServer => &["lem-esfin-origin"],
            Mutant::CarelessClient => &["inv1"],
        }
    }

    /// A property expected to *keep* proving (control).
    pub fn control_property(self) -> &'static str {
        match self {
            Mutant::Oops => "lem-src-honest",
            Mutant::ConfusedServer => "inv1",
            Mutant::CarelessClient => "lem-src-honest",
        }
    }

    fn module_source(self) -> &'static str {
        match self {
            Mutant::Oops => {
                r#"
                mod! OOPS {
                  pr(PROTOCOL)
                  bop oops : Protocol EncPms -> Protocol .
                  var P : Protocol . var E : EncPms .
                  vars A2 B2 : Prin . var I2 : Sid .
                  op c-oops : Protocol EncPms -> Bool .
                  eq c-oops(P, E) = E \in cepms(nw(P)) .
                  ceq nw(oops(P, E))
                    = (kx(intruder, intruder, intruder, epms(k(intruder), pl(E))) , nw(P))
                    if c-oops(P, E) .
                  eq ur(oops(P, E)) = ur(P) .
                  eq ui(oops(P, E)) = ui(P) .
                  eq us(oops(P, E)) = us(P) .
                  eq ss(oops(P, E), A2, B2, I2) = ss(P, A2, B2, I2) .
                  ceq oops(P, E) = P if not c-oops(P, E) .
                }
                "#
            }
            Mutant::ConfusedServer => {
                r#"
                mod! CONFUSED {
                  pr(PROTOCOL)
                  bop confusedSfin : Protocol Prin Prin Prin Sid ListOfChoices
                                     Choice Rand Rand Secret -> Protocol .
                  var P : Protocol . vars B X A : Prin .
                  var I : Sid . var L : ListOfChoices . var C : Choice .
                  vars R1 R2 : Rand . var S : Secret .
                  vars A2 B2 : Prin . var I2 : Sid .
                  eq nw(confusedSfin(P, B, X, A, I, L, C, R1, R2, S))
                    = (sf(B, B, A,
                          esfin(key(X, pms(A, X, S), R1, R2),
                                sfin(A, X, I, L, C, R1, R2, pms(A, X, S)))) , nw(P)) .
                  eq ur(confusedSfin(P, B, X, A, I, L, C, R1, R2, S)) = ur(P) .
                  eq ui(confusedSfin(P, B, X, A, I, L, C, R1, R2, S)) = ui(P) .
                  eq us(confusedSfin(P, B, X, A, I, L, C, R1, R2, S)) = us(P) .
                  eq ss(confusedSfin(P, B, X, A, I, L, C, R1, R2, S), A2, B2, I2)
                    = ss(P, A2, B2, I2) .
                }
                "#
            }
            Mutant::CarelessClient => {
                r#"
                mod! CARELESS {
                  pr(PROTOCOL)
                  bop carelessKx : Protocol Prin Prin Secret -> Protocol .
                  var P : Protocol . vars A B : Prin . var S : Secret .
                  vars A2 B2 : Prin . var I2 : Sid .
                  op c-careless : Protocol Prin Prin Secret -> Bool .
                  eq c-careless(P, A, B, S) = not (S \in us(P)) .
                  ceq nw(carelessKx(P, A, B, S))
                    = (kx(A, A, B, epms(k(intruder), pms(A, B, S))) , nw(P))
                    if c-careless(P, A, B, S) .
                  ceq us(carelessKx(P, A, B, S)) = (S , us(P))
                    if c-careless(P, A, B, S) .
                  eq ur(carelessKx(P, A, B, S)) = ur(P) .
                  eq ui(carelessKx(P, A, B, S)) = ui(P) .
                  eq ss(carelessKx(P, A, B, S), A2, B2, I2) = ss(P, A2, B2, I2) .
                  ceq carelessKx(P, A, B, S) = P if not c-careless(P, A, B, S) .
                }
                "#
            }
        }
    }

    /// Inject this mutant into a model, returning the extended OTS (the
    /// model's `ots` field is left untouched; provers should use the
    /// returned one).
    ///
    /// # Errors
    ///
    /// Propagates specification errors from the injected module.
    pub fn inject(self, model: &mut TlsModel) -> Result<Ots, CoreError> {
        model.spec.load_module(self.module_source())?;
        Ots::from_spec(&mut model.spec, "Protocol", "init")
    }
}

/// Deliberately broken *rewrite systems* (as opposed to the protocol
/// mutants above): fixtures that `equitls-lint` must reject.
///
/// Where [`Mutant`] checks that the prover rejects broken protocols, these
/// check that the static analyzer rejects broken equation sets — each one
/// seeds exactly the flaw its `expected_code` lint exists to catch, and
/// `tls-lint` fails its own run if a fixture comes back clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintFixture {
    /// `spin(N) → spin(s(N))`: the left-hand side matches inside its own
    /// result, so innermost rewriting diverges. Must be denied by
    /// `termination-loop`.
    Looping,
    /// `pick(T) → a` and `pick(T) → b`: the root overlap yields the
    /// critical pair `a = b` with two distinct normal forms. Must be
    /// denied by `unjoinable-critical-pair`.
    NonConfluent,
    /// `orphan(X) → wrap(Y)`: the right-hand side uses a variable the
    /// left-hand side does not bind, so the loader quarantines the
    /// equation. Must be denied by `unbound-variable`.
    UnboundVariable,
    /// A `{root}`-marked entry point plus an operator no root reaches:
    /// its rule can never fire. Must be denied by `dead-rule` (escalated
    /// from its warn default by [`LintFixture::config`]).
    DeadRule,
}

impl LintFixture {
    /// All fixtures.
    pub fn all() -> [LintFixture; 4] {
        [
            LintFixture::Looping,
            LintFixture::NonConfluent,
            LintFixture::UnboundVariable,
            LintFixture::DeadRule,
        ]
    }

    /// Report-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            LintFixture::Looping => "fixture: looping rule",
            LintFixture::NonConfluent => "fixture: non-confluent pair",
            LintFixture::UnboundVariable => "fixture: unbound RHS variable",
            LintFixture::DeadRule => "fixture: dead rule",
        }
    }

    /// The lint that must fire at deny level on this fixture.
    pub fn expected_code(self) -> LintCode {
        match self {
            LintFixture::Looping => LintCode::TerminationLoop,
            LintFixture::NonConfluent => LintCode::UnjoinableCriticalPair,
            LintFixture::UnboundVariable => LintCode::UnboundVariable,
            LintFixture::DeadRule => LintCode::DeadRule,
        }
    }

    /// The configuration the fixture is gated under. `dead-rule` defaults
    /// to warn (TLS observers legitimately tolerate unreached helpers
    /// during refactors), so the dead-code fixture escalates it to deny.
    pub fn config(self) -> LintConfig {
        let mut config = LintConfig::new();
        if self == LintFixture::DeadRule {
            config.set_severity(
                LintCode::DeadRule,
                Severity::Deny,
                "fixture gate: seeded dead code must fail",
            );
        }
        config
    }

    fn module_source(self) -> &'static str {
        match self {
            LintFixture::Looping => {
                r#"
                mod! LOOPING {
                  [ Cnt ]
                  op z : -> Cnt {constr} .
                  op s : Cnt -> Cnt {constr} .
                  op spin : Cnt -> Cnt .
                  var N : Cnt .
                  eq [spin-diverges] : spin(N) = spin(s(N)) .
                }
                "#
            }
            LintFixture::NonConfluent => {
                r#"
                mod! AMBIGUOUS {
                  [ Tok ]
                  op a : -> Tok {constr} .
                  op b : -> Tok {constr} .
                  op pick : Tok -> Tok .
                  var T : Tok .
                  eq [pick-a] : pick(T) = a .
                  eq [pick-b] : pick(T) = b .
                }
                "#
            }
            LintFixture::UnboundVariable => {
                r#"
                mod! UNBOUNDED {
                  [ U ]
                  op u0 : -> U {constr} .
                  op wrap : U -> U {constr} .
                  op orphan : U -> U .
                  vars X Y : U .
                  eq [orphan-unbound] : orphan(X) = wrap(Y) .
                }
                "#
            }
            LintFixture::DeadRule => {
                r#"
                mod! DEADCODE {
                  [ D ]
                  op d0 : -> D {constr} .
                  op step : D -> D {root} .
                  op live : D -> D .
                  op stale : D -> D .
                  var X : D .
                  eq [step-live] : step(X) = live(X) .
                  eq [live-base] : live(d0) = d0 .
                  eq [stale-spin] : stale(d0) = d0 .
                }
                "#
            }
        }
    }

    /// Load the fixture into a fresh specification.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration errors (none for the shipped sources).
    pub fn load(self) -> Result<Spec, SpecError> {
        let mut spec = Spec::new()?;
        spec.load_module(self.module_source())?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mutant_injects_one_extra_transition() {
        for mutant in Mutant::all() {
            let mut model = TlsModel::standard().unwrap();
            let ots = mutant.inject(&mut model).unwrap();
            assert_eq!(ots.actions.len(), 28, "{mutant:?}");
            assert!(
                ots.action(mutant.transition_name()).is_some(),
                "{mutant:?} transition present"
            );
        }
    }

    #[test]
    fn expectations_reference_known_properties() {
        for mutant in Mutant::all() {
            let model = TlsModel::standard().unwrap();
            for name in mutant.expected_failures() {
                assert!(model.invariants.get(name).is_some(), "{name}");
            }
            assert!(model.invariants.get(mutant.control_property()).is_some());
        }
    }

    #[test]
    fn lint_fixtures_are_denied_for_the_seeded_reason() {
        use equitls_lint::lint_spec;
        for fixture in LintFixture::all() {
            let spec = fixture.load().unwrap();
            let report = lint_spec(&spec, fixture.name(), &fixture.config());
            assert!(report.has_deny(), "{}: {report}", fixture.name());
            let hits = report.with_code(fixture.expected_code());
            assert!(
                hits.iter().any(|d| d.severity == Severity::Deny),
                "{}: expected deny-level {}, got {report}",
                fixture.name(),
                fixture.expected_code(),
            );
            // Parsed fixtures carry source positions into the report.
            assert!(
                hits.iter().any(|d| d.span.is_some()),
                "{}: deny finding should carry a span",
                fixture.name(),
            );
        }
    }
}
