//! # equitls-tls
//!
//! The abstract TLS handshake protocol of *Equational Approach to Formal
//! Analysis of TLS* (Ogata & Futatsugi, ICDCS 2005), in two guises:
//!
//! * [`symbolic`] — the algebraic model of §3.2/§4: an OTS written in
//!   equations over a CafeOBJ-style specification, with the Dolev–Yao
//!   intruder and the eighteen verified properties. This is what the
//!   inductive prover of `equitls-core` reasons about.
//! * [`concrete`] — an executable Rust semantics of the same protocol:
//!   finite domains, explicit network multisets, and an intruder knowledge
//!   closure. This is what the `equitls-mc` model checker explores to
//!   reproduce the paper's §5.3 counterexamples and to cross-validate the
//!   symbolic proofs in finite scopes.
//!
//! Both models implement the same abstract protocol (Figure 2) under the
//! same assumptions (§3.2): RSA key exchange only, server always sends its
//! certificate (doubling as ServerHelloDone), no client certificates, one
//! trusted CA, ChangeCipherSpec implicit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concrete;
pub mod mutants;
pub mod symbolic;
pub mod verify;

pub use symbolic::{TlsModel, Variant};
