//! Development driver: prove one property (or all) and print the report.
//!
//! ```text
//! cargo run -p equitls-tls --bin tls-prove -- inv1
//! cargo run -p equitls-tls --bin tls-prove -- --all
//! cargo run -p equitls-tls --bin tls-prove -- --variant inv2
//! cargo run -p equitls-tls --bin tls-prove -- inv1 --trace out.jsonl --metrics
//! ```
//!
//! `--trace <path.jsonl>` streams every observability event (spans,
//! counters, gauges) as newline-delimited JSON; `--metrics` turns on
//! per-rule profiling and prints summary tables (hot rules, obligation
//! latency histograms, per-invariant totals, wall-clock per phase) at the
//! end of the run; `--profile <path.json>` additionally writes the run as
//! Chrome trace-event JSON (open in Perfetto or `about://tracing`;
//! convert or diff with `tls-trace`); `--jobs N` fans proof obligations
//! out over N worker threads (default: available parallelism; reports
//! are identical for every N — profiling never changes a verdict).
//!
//! Robustness flags: `--deadline-ms N` bounds the whole run by wall
//! clock, `--max-mem-mb N` caps the term-arena heap estimate, and
//! `--fuel N` overrides the per-reduction rewrite fuel. A tripped budget
//! leaves the affected obligations *open* (with a `(budget: …)` or fuel
//! residual naming the offending term) and the process exits 1 — it
//! never dies mid-proof.
//!
//! Checkpoint flags: `--checkpoint <path>` records every finished proof
//! obligation in a crash-safe ledger snapshot (atomically rewritten at
//! obligation boundaries; throttle with `--checkpoint-every-secs N`);
//! `--resume` reloads the ledger and skips obligations it already proved.
//!
//! Engine flags: `--shared-cache` shares normal forms across a
//! property's obligations (verdicts, counts, and scores are unchanged;
//! `rewrites` metrics may drop because hits replay cached reductions);
//! `--linear-scan` disables the discrimination-tree rule index and
//! matches rules by scanning per-operator lists (diagnostic; results
//! are bit-identical either way).
//!
//! Exit codes: **0** every requested property proved; **1** at least one
//! obligation open or faulted (budget trip, fuel exhaustion, stuck case);
//! **2** usage error or unusable checkpoint snapshot (missing, truncated,
//! corrupt, or wrong version — corruption is always a typed error, never
//! a garbage resume).

use equitls_core::prelude::{render_report_table, CoreError, ProofReport};
use equitls_obs::sink::{EventSink, JsonlSink, Obs, RecordingSink, TeeSink};
use equitls_obs::summary::{Align, MetricsSummary, Table};
use equitls_obs::trace::Trace;
use equitls_persist::{peek_meta, signal, SnapshotMeta};
use equitls_rewrite::budget::Budget;
use equitls_tls::verify::VerifyOptions;
use equitls_tls::{verify, TlsModel};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Deep proof searches recurse heavily; run on a large stack.
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(run)
        .expect("spawn prover thread");
    child.join().expect("prover thread panicked");
}

struct Options {
    variant: bool,
    metrics: bool,
    trace: Option<std::path::PathBuf>,
    /// Chrome trace-event JSON output path (implies profiling).
    profile: Option<std::path::PathBuf>,
    /// Worker threads for proof obligations; `0` = available parallelism.
    jobs: usize,
    /// Wall-clock budget for the whole run, in milliseconds.
    deadline_ms: Option<u64>,
    /// Heap-estimate ceiling, in mebibytes.
    max_mem_mb: Option<u64>,
    /// Rewriting fuel per reduction (default: prover default).
    fuel: Option<u64>,
    /// Obligation-ledger snapshot path.
    checkpoint: Option<std::path::PathBuf>,
    /// Minimum seconds between ledger writes (0 = every obligation).
    checkpoint_every_secs: u64,
    /// Resume from the ledger at `checkpoint`.
    resume: bool,
    /// Share normal forms across a property's obligations.
    shared_cache: bool,
    /// Disable the rule index; scan per-operator rule lists instead.
    linear_scan: bool,
    names: Vec<String>,
}

/// Parse the flag argument that must follow `flag`, exiting with the
/// usage hint on a missing or malformed value.
fn numeric_flag(args: &mut impl Iterator<Item = String>, flag: &str, hint: &str) -> u64 {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs {hint}");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut opts = Options {
        variant: false,
        metrics: false,
        trace: None,
        profile: None,
        jobs: 0,
        deadline_ms: None,
        max_mem_mb: None,
        fuel: None,
        checkpoint: None,
        checkpoint_every_secs: 0,
        resume: false,
        shared_cache: false,
        linear_scan: false,
        names: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--variant" => opts.variant = true,
            "--metrics" => opts.metrics = true,
            "--trace" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--trace needs a file path (e.g. --trace out.jsonl)");
                    std::process::exit(2);
                });
                opts.trace = Some(path.into());
            }
            "--profile" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--profile needs a file path (e.g. --profile run.json)");
                    std::process::exit(2);
                });
                opts.profile = Some(path.into());
            }
            "--jobs" => {
                opts.jobs = numeric_flag(
                    &mut args,
                    "--jobs",
                    "a thread count (e.g. --jobs 4; 0 = all cores)",
                ) as usize;
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(numeric_flag(
                    &mut args,
                    "--deadline-ms",
                    "a duration in milliseconds (e.g. --deadline-ms 2000)",
                ));
            }
            "--max-mem-mb" => {
                opts.max_mem_mb = Some(numeric_flag(
                    &mut args,
                    "--max-mem-mb",
                    "a size in mebibytes (e.g. --max-mem-mb 512)",
                ));
            }
            "--fuel" => {
                opts.fuel = Some(numeric_flag(
                    &mut args,
                    "--fuel",
                    "a rewrite-step budget (e.g. --fuel 5000000)",
                ));
            }
            "--checkpoint" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--checkpoint needs a file path (e.g. --checkpoint campaign.snap)");
                    std::process::exit(2);
                });
                opts.checkpoint = Some(path.into());
            }
            "--checkpoint-every-secs" => {
                opts.checkpoint_every_secs = numeric_flag(
                    &mut args,
                    "--checkpoint-every-secs",
                    "a duration in seconds (e.g. --checkpoint-every-secs 30; 0 = every obligation)",
                );
            }
            "--resume" => opts.resume = true,
            "--shared-cache" => opts.shared_cache = true,
            "--linear-scan" => opts.linear_scan = true,
            "--all" => {}
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            name => opts.names.push(name.to_string()),
        }
    }
    if opts.resume && opts.checkpoint.is_none() {
        eprintln!("--resume needs --checkpoint <path> (the snapshot to resume from)");
        std::process::exit(2);
    }
    opts
}

fn run() {
    let opts = parse_args();
    // Assemble the sink stack: a JSONL stream when tracing, an in-memory
    // recorder when summarizing or profiling, a tee when both.
    let want_recorder = opts.metrics || opts.profile.is_some();
    let recorder = want_recorder.then(|| Arc::new(RecordingSink::new()));
    let mut sinks: Vec<Arc<dyn EventSink>> = Vec::new();
    if let Some(path) = &opts.trace {
        match JsonlSink::create(path) {
            Ok(sink) => sinks.push(Arc::new(sink)),
            Err(e) => {
                eprintln!("cannot open trace file {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if let Some(rec) = &recorder {
        sinks.push(rec.clone());
    }
    let obs = match sinks.len() {
        0 => Obs::noop(),
        1 => Obs::new(sinks.pop().expect("one sink")),
        _ => Obs::new(Arc::new(TeeSink::new(sinks))),
    };

    // Peek at the snapshot header *before* the run replaces the file, so
    // the "resumed from checkpoint" line can report the snapshot's age. A
    // resume against an unreadable snapshot dies here, early and typed.
    let resumed_meta: Option<SnapshotMeta> = if opts.resume {
        let path = opts.checkpoint.as_ref().expect("checked at parse time");
        match peek_meta(path) {
            Ok(meta) => Some(meta),
            Err(e) => {
                eprintln!("cannot resume from {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    } else {
        None
    };

    let mut model = if opts.variant {
        TlsModel::variant().expect("variant model builds")
    } else {
        TlsModel::standard().expect("standard model builds")
    };
    let mut budget = Budget::unlimited();
    if let Some(ms) = opts.deadline_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(mb) = opts.max_mem_mb {
        budget = budget.with_max_mem_mb(mb);
    }
    // Signal-drain: SIGINT/SIGTERM cancel the campaign's shared budget
    // token. The prover stops cooperatively at the next passage
    // boundary, the obligation ledger gets its final checkpoint, and the
    // process exits 130 — so an interrupted campaign resumes with
    // `--resume` instead of losing finished obligations.
    signal::install_term_flag();
    let term_token = budget.cancel_token();
    std::thread::Builder::new()
        .name("term-watcher".into())
        .spawn(move || {
            while !signal::term_requested() {
                std::thread::sleep(Duration::from_millis(25));
            }
            term_token.cancel();
        })
        .expect("spawn term watcher");
    let verify_opts = VerifyOptions {
        budget,
        fuel: opts.fuel,
        profile_rules: want_recorder,
        jobs: opts.jobs,
        checkpoint_path: opts.checkpoint.clone(),
        checkpoint_every_secs: opts.checkpoint_every_secs,
        resume: opts.resume,
        shared_nf_cache: opts.shared_cache,
        linear_scan: opts.linear_scan,
        ..VerifyOptions::default()
    };
    let mut reports = Vec::new();
    let mut failed = false;
    if opts.names.is_empty() {
        match verify::verify_all_opts(&mut model, &verify_opts, &obs) {
            Ok(rs) => reports = rs,
            Err(e) => exit_engine_error(&e),
        }
    } else {
        for name in &opts.names {
            match verify::verify_property_opts(&mut model, name, &verify_opts, &obs) {
                Ok(r) => reports.push(r),
                Err(CoreError::Persist(e)) => {
                    eprintln!("checkpoint error proving {name}: {e}");
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("error proving {name}: {e}");
                    failed = true;
                }
            }
        }
    }
    obs.flush();
    // Any obligation left open (budget trip, fuel exhaustion, genuinely
    // stuck case) or faulted means the campaign did not go through.
    failed |= reports.iter().any(|r| !r.is_proved());

    for r in &reports {
        println!("{r}");
        for (action, case) in r.open_cases().into_iter().take(4) {
            println!("  OPEN [{action}]");
            for d in &case.decisions {
                println!("    {d}");
            }
            println!("    residual: {}", case.residual);
        }
    }
    println!("{}", render_report_table(&reports));

    if let Some(rec) = &recorder {
        if let Some(path) = &opts.profile {
            let chrome = Trace::from_events(rec.timed_events()).chrome_trace();
            match std::fs::write(path, chrome.to_string()) {
                Ok(()) => eprintln!(
                    "Chrome trace written to {} (open in Perfetto)",
                    path.display()
                ),
                Err(e) => {
                    eprintln!("cannot write profile {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        let mut summary = MetricsSummary::from_events(&rec.events());
        summary.set_dropped_events(obs.dropped_events());
        if let Some(meta) = &resumed_meta {
            let path = opts.checkpoint.as_ref().expect("checked at parse time");
            println!(
                "resumed from checkpoint {} (snapshot age {}s, {} proved obligation(s) skipped)",
                path.display(),
                meta.age_secs(),
                summary.counter_total("persist.resume_skipped_obligations"),
            );
            println!();
        }
        print_metrics(&summary, &reports);
    }
    if let Some(path) = &opts.trace {
        eprintln!("trace written to {}", path.display());
    }
    let dropped = obs.dropped_events();
    if dropped > 0 {
        eprintln!(
            "warning: {dropped} observability event(s) dropped (sink I/O failed); \
             the trace and any summary derived from it are incomplete"
        );
    }
    // A signal-initiated drain outranks the pass/fail verdict: the
    // cancelled obligations are *open by interruption*, not refuted, and
    // exit 130 tells callers (and scripts) to resume rather than report.
    if signal::term_requested() {
        let checkpointed = opts
            .checkpoint
            .as_ref()
            .map(|p| format!("; checkpoint {} written, resume with --resume", p.display()))
            .unwrap_or_default();
        eprintln!(
            "tls-prove: {} received, campaign drained{checkpointed}",
            signal::term_signal_name().unwrap_or("termination signal"),
        );
        std::process::exit(signal::TERM_EXIT_CODE);
    }
    if failed {
        std::process::exit(1);
    }
}

/// Exit on an engine error from the full campaign: snapshot problems are
/// usage-class failures (exit 2), anything else is a failed run (exit 1).
fn exit_engine_error(e: &CoreError) -> ! {
    match e {
        CoreError::Persist(e) => {
            eprintln!("checkpoint error: {e}");
            std::process::exit(2);
        }
        other => {
            eprintln!("engine error: {other}");
            std::process::exit(1);
        }
    }
}

/// Render the `--metrics` summary: hottest rules, per-invariant totals,
/// and wall-clock per phase.
fn print_metrics(summary: &MetricsSummary, reports: &[ProofReport]) {
    const TOP_N: usize = 15;

    let hot = summary.counters_with_prefix("rule.time_us:");
    if !hot.is_empty() {
        println!("hot rules (top {TOP_N} by cumulative match+fire time)");
        let mut table = Table::new(
            &["rule", "attempts", "fires", "time"],
            &[Align::Left, Align::Right, Align::Right, Align::Right],
        );
        for (label, time_us) in hot.into_iter().take(TOP_N) {
            table.row(vec![
                label.clone(),
                summary
                    .counter_total(&format!("rule.attempts:{label}"))
                    .to_string(),
                summary
                    .counter_total(&format!("rule.fires:{label}"))
                    .to_string(),
                format!("{:.2?}", std::time::Duration::from_micros(time_us)),
            ]);
        }
        print!("{}", table.render());
        println!();
    }

    println!("per-invariant totals");
    let mut table = Table::new(
        &[
            "invariant",
            "passages",
            "splits",
            "rewrites",
            "cache-hit",
            "time",
            "verdict",
        ],
        &[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Left,
        ],
    );
    for r in reports {
        let m = r.total_metrics();
        let stats = r.total_rewrite_stats();
        table.row(vec![
            r.invariant.clone(),
            m.passages.to_string(),
            m.splits.to_string(),
            m.rewrites.to_string(),
            format!("{:.1}%", stats.cache_hit_rate() * 100.0),
            format!("{:.2?}", r.duration),
            if r.is_proved() { "PROVED" } else { "OPEN" }.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();

    println!("wall-clock per phase (latency histograms; rates omitted below 1ms)");
    print!("{}", summary.render_histogram_table());
}
