//! Development driver: prove one property (or all) and print the report.
//!
//! ```text
//! cargo run -p equitls-tls --bin tls-prove -- inv1
//! cargo run -p equitls-tls --bin tls-prove -- --all
//! cargo run -p equitls-tls --bin tls-prove -- --variant inv2
//! ```

use equitls_core::prelude::render_report_table;
use equitls_tls::{verify, TlsModel};

fn main() {
    // Deep proof searches recurse heavily; run on a large stack.
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(run)
        .expect("spawn prover thread");
    child.join().expect("prover thread panicked");
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let variant = args.iter().any(|a| a == "--variant");
    let mut model = if variant {
        TlsModel::variant().expect("variant model builds")
    } else {
        TlsModel::standard().expect("standard model builds")
    };
    let names: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    let mut reports = Vec::new();
    if names.is_empty() {
        reports = verify::verify_all(&mut model).expect("engine ok");
    } else {
        for name in &names {
            match verify::verify_property(&mut model, name) {
                Ok(r) => reports.push(r),
                Err(e) => eprintln!("error proving {name}: {e}"),
            }
        }
    }
    for r in &reports {
        println!("{r}");
        for (action, case) in r.open_cases().into_iter().take(4) {
            println!("  OPEN [{action}]");
            for d in &case.decisions {
                println!("    {d}");
            }
            println!("    residual: {}", case.residual);
        }
    }
    println!("{}", render_report_table(&reports));
}
