//! Static-analysis gate: lint every shipped equation set.
//!
//! ```text
//! cargo run --release -p equitls-tls --bin tls-lint
//! cargo run --release -p equitls-tls --bin tls-lint -- --json
//! cargo run --release -p equitls-tls --bin tls-lint -- bool fixtures
//! cargo run --release -p equitls-tls --bin tls-lint -- --jobs 4 --cache lint.snap
//! cargo run --release -p equitls-tls --bin tls-lint -- --sarif out.sarif --graph deps.dot
//! ```
//!
//! Targets (all by default; name them to filter):
//!
//! * `bool` — the Hsiang–Dershowitz `BOOL` rewrite system;
//! * `eq` — the constructor-equality decision procedure;
//! * `standard` / `variant` — the two symbolic TLS models;
//! * `fixtures` — the deliberately broken systems from
//!   `equitls_tls::mutants::LintFixture`, which must come back *denied*
//!   (the gate fails if the linter misses a seeded flaw).
//!
//! Flags:
//!
//! * `--jobs N` — worker threads for critical-pair joinability. The report
//!   is identical at every level (each pair is judged independently).
//! * `--cache PATH` — incremental analysis: load a pass-result snapshot,
//!   skip passes whose fingerprinted inputs are unchanged, save back.
//!   Stats go to stderr so stdout is byte-identical cold vs. warm; a
//!   corrupt cache is reported on stderr and the run continues cold.
//! * `--sarif PATH` — write every report as one SARIF 2.1.0 log.
//! * `--graph PATH` — write the first spec target's operator dependency
//!   graph as Graphviz DOT (for the TLS models the reachability roots are
//!   the observers, the transitions, and every operator an invariant
//!   mentions).
//!
//! Exit status: `0` when every shipped set is deny-free **and** every
//! fixture is denied for its seeded reason; `1` otherwise; `2` on usage
//! errors. `--json` prints one JSON object with per-target reports
//! (rendered by `equitls-obs`, no external dependencies).

use equitls_core::prelude::InvariantSet;
use equitls_kernel::op::OpKind;
use equitls_kernel::prelude::OpId;
use equitls_kernel::signature::Signature;
use equitls_kernel::term::{Term, TermStore};
use equitls_lint::cache::LintCache;
use equitls_lint::{
    analyze_spec, analyze_system, deps, sarif, AnalysisOptions, AnalysisOutcome, LintCode,
    LintConfig, LintReport, Severity,
};
use equitls_obs::json::JsonValue;
use equitls_obs::sink::Obs;
use equitls_rewrite::bool_alg::BoolAlg;
use equitls_rewrite::bool_rules::hd_bool_rules;
use equitls_spec::spec::Spec;
use equitls_tls::mutants::LintFixture;
use equitls_tls::TlsModel;
use std::path::PathBuf;

fn main() {
    // Critical-pair joinability normalizes deep open terms; use the same
    // big-stack thread as the prover.
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(run)
        .expect("spawn lint thread");
    child.join().expect("lint thread panicked");
}

/// The constructor-equality decision procedure as a rewrite system: the
/// shape every `_=_` in the TLS data modules follows (reflexivity by a
/// non-linear rule, clashes between distinct constructors, injectivity
/// of compound constructors).
const EQ_PROCEDURE: &str = r#"
mod! EQPROC {
  [ Data ]
  op na : -> Data {constr} .
  op nb : -> Data {constr} .
  op pair : Data Data -> Data {constr} .
  vars X Y Z W : Data .
  eq [eq-refl] : (X = X) = true .
  eq [eq-na-nb] : (na = nb) = false .
  eq [eq-nb-na] : (nb = na) = false .
  eq [eq-pair] : (pair(X, Y) = pair(Z, W)) = (X = Z) and (Y = W) .
  eq [eq-na-pair] : (na = pair(X, Y)) = false .
  eq [eq-pair-na] : (pair(X, Y) = na) = false .
  eq [eq-nb-pair] : (nb = pair(X, Y)) = false .
  eq [eq-pair-nb] : (pair(X, Y) = nb) = false .
}
"#;

/// What a target's report must look like for the gate to pass.
enum Expectation {
    /// No deny-level findings.
    Clean,
    /// At least one deny-level finding with this code (fixture self-test).
    DeniedWith(LintCode),
}

struct TargetOutcome {
    report: LintReport,
    expectation: Expectation,
    /// DOT rendering of the dependency graph, for `--graph`.
    dot: Option<String>,
    passes_analyzed: usize,
    passes_reused: usize,
}

impl TargetOutcome {
    fn passed(&self) -> bool {
        match self.expectation {
            Expectation::Clean => !self.report.has_deny(),
            Expectation::DeniedWith(code) => self
                .report
                .with_code(code)
                .iter()
                .any(|d| d.severity == Severity::Deny),
        }
    }

    fn from_analysis(outcome: AnalysisOutcome, expectation: Expectation) -> Self {
        TargetOutcome {
            report: outcome.report,
            expectation,
            dot: None,
            passes_analyzed: outcome.passes_analyzed,
            passes_reused: outcome.passes_reused,
        }
    }
}

/// Dependency-analysis roots of a TLS model: every observer and action in
/// the signature, plus every operator an invariant body mentions — the
/// terms `red` is actually asked to reduce during the proof scores.
fn model_roots(spec: &Spec, invariants: &InvariantSet) -> Vec<OpId> {
    let store = spec.store();
    let mut roots: Vec<OpId> = Vec::new();
    for (id, decl) in store.signature().ops() {
        if matches!(decl.attrs.kind, OpKind::Observer | OpKind::Action) {
            roots.push(id);
        }
    }
    for inv in invariants.iter() {
        for t in store.subterms(inv.body) {
            if let Term::App { op, .. } = store.node(t) {
                if !roots.contains(op) {
                    roots.push(*op);
                }
            }
        }
    }
    roots
}

fn spec_dot(spec: &Spec, roots: &[OpId], name: &str) -> String {
    let graph = deps::build_graph(spec.store(), spec.rules(), roots);
    deps::to_dot(spec.store(), &graph, name)
}

fn lint_bool(options: &AnalysisOptions, cache: Option<&mut LintCache>) -> TargetOutcome {
    let mut sig = Signature::new();
    let alg = BoolAlg::install(&mut sig).expect("fresh signature");
    let mut store = TermStore::new(sig);
    let rules = hd_bool_rules(&mut store, &alg).expect("HD BOOL builds");
    let outcome = analyze_system(
        &store,
        &alg,
        &rules,
        "BOOL (Hsiang-Dershowitz)",
        &LintConfig::new(),
        options,
        cache,
    );
    TargetOutcome::from_analysis(outcome, Expectation::Clean)
}

fn lint_eq_procedure(options: &AnalysisOptions, cache: Option<&mut LintCache>) -> TargetOutcome {
    let mut spec = Spec::new().expect("fresh spec");
    spec.load_module(EQ_PROCEDURE).expect("EQPROC parses");
    let outcome = analyze_spec(
        &spec,
        "equality procedure (EQPROC)",
        &LintConfig::new(),
        options,
        cache,
    );
    let mut outcome = TargetOutcome::from_analysis(outcome, Expectation::Clean);
    outcome.dot = Some(spec_dot(&spec, &[], "EQPROC"));
    outcome
}

fn lint_model(
    variant: bool,
    options: &AnalysisOptions,
    cache: Option<&mut LintCache>,
) -> TargetOutcome {
    let (model, label) = if variant {
        (TlsModel::variant().expect("variant model"), "TLS (variant)")
    } else {
        (
            TlsModel::standard().expect("standard model"),
            "TLS (standard)",
        )
    };
    // Triaged: the model's data selectors are deliberately partial
    // functions. `rand`/`sid`/... project only the message constructor
    // they belong to, the session observers are undefined on `noSession`,
    // and the gleaning membership `_\in_` is defined only for the payload
    // sorts the proofs query. Stuck selector terms never arise in
    // reachable proof terms, so the missing cases are design, not gaps.
    let mut config = LintConfig::new();
    config.allow(
        LintCode::MissingCase,
        "selectors in the OTS model are partial by design; \
         they are only ever applied to their own constructors",
    );
    // Triaged: the data modules ship every projection of every compound
    // constructor for symmetry (`hk`, `owner`, `fi`, ...), but the proof
    // scores only query a subset, so the rest are unreachable from the
    // invariant/observer/action roots. Keep them visible in the census,
    // not as warnings.
    config.allow(
        LintCode::DeadRule,
        "unqueried data selectors are shipped for symmetry with the paper's \
         DATA modules; the proofs never reduce them",
    );
    let roots = model_roots(&model.spec, &model.invariants);
    let model_options = AnalysisOptions {
        jobs: options.jobs,
        roots: roots.clone(),
    };
    let outcome = analyze_spec(&model.spec, label, &config, &model_options, cache);
    let mut outcome = TargetOutcome::from_analysis(outcome, Expectation::Clean);
    outcome.dot = Some(spec_dot(&model.spec, &roots, label));
    outcome
}

fn lint_fixtures(
    options: &AnalysisOptions,
    mut cache: Option<&mut LintCache>,
) -> Vec<TargetOutcome> {
    LintFixture::all()
        .into_iter()
        .map(|fixture| {
            let spec = fixture.load().expect("fixture loads");
            let outcome = analyze_spec(
                &spec,
                fixture.name(),
                &fixture.config(),
                options,
                cache.as_deref_mut(),
            );
            TargetOutcome::from_analysis(outcome, Expectation::DeniedWith(fixture.expected_code()))
        })
        .collect()
}

const TARGET_NAMES: [&str; 5] = ["bool", "eq", "standard", "variant", "fixtures"];

const USAGE: &str = "usage: tls-lint [--json] [--jobs N] [--cache PATH] [--sarif PATH] \
                     [--graph PATH] [TARGET...]";

struct Cli {
    json: bool,
    jobs: usize,
    cache: Option<PathBuf>,
    sarif: Option<PathBuf>,
    graph: Option<PathBuf>,
    selected: Vec<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        json: false,
        jobs: 1,
        cache: None,
        sarif: None,
        graph: None,
        selected: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_flag =
            |name: &str, slot: &mut Option<PathBuf>, args: &mut dyn Iterator<Item = String>| {
                match args.next() {
                    Some(v) => *slot = Some(PathBuf::from(v)),
                    None => {
                        eprintln!("{name} needs a path\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            };
        match arg.as_str() {
            "--json" => cli.json = true,
            "--jobs" => {
                cli.jobs = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive integer\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--cache" => path_flag("--cache", &mut cli.cache, &mut args),
            "--sarif" => path_flag("--sarif", &mut cli.sarif, &mut args),
            "--graph" => path_flag("--graph", &mut cli.graph, &mut args),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
            name if TARGET_NAMES.contains(&name) => cli.selected.push(name.to_string()),
            other => {
                eprintln!(
                    "unknown target `{other}` (expected one of: {})",
                    TARGET_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    cli
}

fn run() {
    let cli = parse_cli();
    let want = |name: &str| cli.selected.is_empty() || cli.selected.iter().any(|s| s == name);
    let options = AnalysisOptions {
        jobs: cli.jobs,
        roots: Vec::new(),
    };
    let obs = Obs::noop();

    // A corrupt or unreadable cache must never take the gate down: warn
    // on stderr and run cold.
    let mut cache = match &cli.cache {
        None => None,
        Some(path) if path.exists() => match LintCache::load(path, &obs) {
            Ok(cache) => Some(cache),
            Err(err) => {
                eprintln!(
                    "tls-lint: warning: lint cache {} is unusable ({err}); running cold",
                    path.display()
                );
                Some(LintCache::new())
            }
        },
        Some(_) => Some(LintCache::new()),
    };

    let mut outcomes = Vec::new();
    if want("bool") {
        outcomes.push(lint_bool(&options, cache.as_mut()));
    }
    if want("eq") {
        outcomes.push(lint_eq_procedure(&options, cache.as_mut()));
    }
    if want("standard") {
        outcomes.push(lint_model(false, &options, cache.as_mut()));
    }
    if want("variant") {
        outcomes.push(lint_model(true, &options, cache.as_mut()));
    }
    if want("fixtures") {
        outcomes.extend(lint_fixtures(&options, cache.as_mut()));
    }

    if let (Some(cache), Some(path)) = (&cache, &cli.cache) {
        let analyzed: usize = outcomes.iter().map(|o| o.passes_analyzed).sum();
        let reused: usize = outcomes.iter().map(|o| o.passes_reused).sum();
        eprintln!("tls-lint: lint cache: {reused} passes reused, {analyzed} analyzed");
        // A failed cache write degrades the *next* run to cold — this
        // run's findings are already complete, so warn and continue
        // rather than abort the campaign.
        if let Err(err) = cache.save(path, &obs) {
            obs.counter("persist.snapshot_failed", 1);
            eprintln!(
                "tls-lint: warning: cannot write lint cache {} ({err}); next run starts cold",
                path.display()
            );
        }
    }

    if let Some(path) = &cli.sarif {
        let reports: Vec<&LintReport> = outcomes.iter().map(|o| &o.report).collect();
        let log = sarif::to_sarif(&reports).to_string();
        if let Err(err) = std::fs::write(path, log) {
            eprintln!("tls-lint: cannot write SARIF log {}: {err}", path.display());
            std::process::exit(2);
        }
    }

    if let Some(path) = &cli.graph {
        let Some(dot) = outcomes.iter().find_map(|o| o.dot.as_ref()) else {
            eprintln!("tls-lint: --graph needs a spec target (eq, standard, or variant)");
            std::process::exit(2);
        };
        if let Err(err) = std::fs::write(path, dot) {
            eprintln!("tls-lint: cannot write graph {}: {err}", path.display());
            std::process::exit(2);
        }
    }

    let all_passed = outcomes.iter().all(TargetOutcome::passed);
    if cli.json {
        let targets = outcomes
            .iter()
            .map(|o| {
                let mut obj = match o.report.to_json() {
                    JsonValue::Object(fields) => fields,
                    _ => unreachable!("reports render as objects"),
                };
                let expectation = match o.expectation {
                    Expectation::Clean => "clean".to_string(),
                    Expectation::DeniedWith(code) => format!("denied-with:{code}"),
                };
                obj.push(("expectation".to_string(), JsonValue::String(expectation)));
                obj.push(("passed".to_string(), JsonValue::Bool(o.passed())));
                JsonValue::Object(obj)
            })
            .collect();
        let doc = JsonValue::Object(vec![
            ("targets".to_string(), JsonValue::Array(targets)),
            ("passed".to_string(), JsonValue::Bool(all_passed)),
        ]);
        println!("{doc}");
    } else {
        for o in &outcomes {
            print!("{}", o.report);
            let verdict = if o.passed() { "PASS" } else { "FAIL" };
            let expect = match o.expectation {
                Expectation::Clean => "expected deny-free".to_string(),
                Expectation::DeniedWith(code) => {
                    format!("expected deny-level `{code}`")
                }
            };
            println!("  -> {verdict} ({expect})");
            println!();
        }
        let summary = if all_passed { "clean" } else { "FAILED" };
        println!("tls-lint: {} target(s), gate {summary}", outcomes.len());
    }
    std::process::exit(if all_passed { 0 } else { 1 });
}
