//! Static-analysis gate: lint every shipped equation set.
//!
//! ```text
//! cargo run --release -p equitls-tls --bin tls-lint
//! cargo run --release -p equitls-tls --bin tls-lint -- --json
//! cargo run --release -p equitls-tls --bin tls-lint -- bool fixtures
//! ```
//!
//! Targets (all by default; name them to filter):
//!
//! * `bool` — the Hsiang–Dershowitz `BOOL` rewrite system;
//! * `eq` — the constructor-equality decision procedure;
//! * `standard` / `variant` — the two symbolic TLS models;
//! * `fixtures` — the deliberately broken systems from
//!   `equitls_tls::mutants::LintFixture`, which must come back *denied*
//!   (the gate fails if the linter misses a seeded flaw).
//!
//! Exit status: `0` when every shipped set is deny-free **and** every
//! fixture is denied for its seeded reason; `1` otherwise; `2` on usage
//! errors. `--json` prints one JSON object with per-target reports
//! (rendered by `equitls-obs`, no external dependencies).

use equitls_kernel::signature::Signature;
use equitls_kernel::term::TermStore;
use equitls_lint::{lint_spec, lint_system, LintCode, LintConfig, LintReport, Severity};
use equitls_obs::json::JsonValue;
use equitls_rewrite::bool_alg::BoolAlg;
use equitls_rewrite::bool_rules::hd_bool_rules;
use equitls_spec::spec::Spec;
use equitls_tls::mutants::LintFixture;
use equitls_tls::TlsModel;

fn main() {
    // Critical-pair joinability normalizes deep open terms; use the same
    // big-stack thread as the prover.
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(run)
        .expect("spawn lint thread");
    child.join().expect("lint thread panicked");
}

/// The constructor-equality decision procedure as a rewrite system: the
/// shape every `_=_` in the TLS data modules follows (reflexivity by a
/// non-linear rule, clashes between distinct constructors, injectivity
/// of compound constructors).
const EQ_PROCEDURE: &str = r#"
mod! EQPROC {
  [ Data ]
  op na : -> Data {constr} .
  op nb : -> Data {constr} .
  op pair : Data Data -> Data {constr} .
  vars X Y Z W : Data .
  eq [eq-refl] : (X = X) = true .
  eq [eq-na-nb] : (na = nb) = false .
  eq [eq-nb-na] : (nb = na) = false .
  eq [eq-pair] : (pair(X, Y) = pair(Z, W)) = (X = Z) and (Y = W) .
  eq [eq-na-pair] : (na = pair(X, Y)) = false .
  eq [eq-pair-na] : (pair(X, Y) = na) = false .
  eq [eq-nb-pair] : (nb = pair(X, Y)) = false .
  eq [eq-pair-nb] : (pair(X, Y) = nb) = false .
}
"#;

/// What a target's report must look like for the gate to pass.
enum Expectation {
    /// No deny-level findings.
    Clean,
    /// At least one deny-level finding with this code (fixture self-test).
    DeniedWith(LintCode),
}

struct TargetOutcome {
    report: LintReport,
    expectation: Expectation,
}

impl TargetOutcome {
    fn passed(&self) -> bool {
        match self.expectation {
            Expectation::Clean => !self.report.has_deny(),
            Expectation::DeniedWith(code) => self
                .report
                .with_code(code)
                .iter()
                .any(|d| d.severity == Severity::Deny),
        }
    }
}

fn lint_bool() -> TargetOutcome {
    let mut sig = Signature::new();
    let alg = BoolAlg::install(&mut sig).expect("fresh signature");
    let mut store = TermStore::new(sig);
    let rules = hd_bool_rules(&mut store, &alg).expect("HD BOOL builds");
    let report = lint_system(
        &mut store,
        &alg,
        &rules,
        "BOOL (Hsiang-Dershowitz)",
        &LintConfig::new(),
    );
    TargetOutcome {
        report,
        expectation: Expectation::Clean,
    }
}

fn lint_eq_procedure() -> TargetOutcome {
    let mut spec = Spec::new().expect("fresh spec");
    spec.load_module(EQ_PROCEDURE).expect("EQPROC parses");
    let report = lint_spec(&mut spec, "equality procedure (EQPROC)", &LintConfig::new());
    TargetOutcome {
        report,
        expectation: Expectation::Clean,
    }
}

fn lint_model(variant: bool) -> TargetOutcome {
    let (mut model, label) = if variant {
        (TlsModel::variant().expect("variant model"), "TLS (variant)")
    } else {
        (
            TlsModel::standard().expect("standard model"),
            "TLS (standard)",
        )
    };
    // Triaged: the model's data selectors are deliberately partial
    // functions. `rand`/`sid`/... project only the message constructor
    // they belong to, the session observers are undefined on `noSession`,
    // and the gleaning membership `_\in_` is defined only for the payload
    // sorts the proofs query. Stuck selector terms never arise in
    // reachable proof terms, so the missing cases are design, not gaps.
    let mut config = LintConfig::new();
    config.allow(
        LintCode::MissingCase,
        "selectors in the OTS model are partial by design; \
         they are only ever applied to their own constructors",
    );
    let report = lint_spec(&mut model.spec, label, &config);
    TargetOutcome {
        report,
        expectation: Expectation::Clean,
    }
}

fn lint_fixtures() -> Vec<TargetOutcome> {
    LintFixture::all()
        .into_iter()
        .map(|fixture| {
            let mut spec = fixture.load().expect("fixture loads");
            let report = lint_spec(&mut spec, fixture.name(), &LintConfig::new());
            TargetOutcome {
                report,
                expectation: Expectation::DeniedWith(fixture.expected_code()),
            }
        })
        .collect()
}

const TARGET_NAMES: [&str; 5] = ["bool", "eq", "standard", "variant", "fixtures"];

fn run() {
    let mut json = false;
    let mut selected: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            name if TARGET_NAMES.contains(&name) => selected.push(name.to_string()),
            other => {
                eprintln!(
                    "unknown target `{other}` (expected one of: {})",
                    TARGET_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);

    let mut outcomes = Vec::new();
    if want("bool") {
        outcomes.push(lint_bool());
    }
    if want("eq") {
        outcomes.push(lint_eq_procedure());
    }
    if want("standard") {
        outcomes.push(lint_model(false));
    }
    if want("variant") {
        outcomes.push(lint_model(true));
    }
    if want("fixtures") {
        outcomes.extend(lint_fixtures());
    }

    let all_passed = outcomes.iter().all(TargetOutcome::passed);
    if json {
        let targets = outcomes
            .iter()
            .map(|o| {
                let mut obj = match o.report.to_json() {
                    JsonValue::Object(fields) => fields,
                    _ => unreachable!("reports render as objects"),
                };
                let expectation = match o.expectation {
                    Expectation::Clean => "clean".to_string(),
                    Expectation::DeniedWith(code) => format!("denied-with:{code}"),
                };
                obj.push(("expectation".to_string(), JsonValue::String(expectation)));
                obj.push(("passed".to_string(), JsonValue::Bool(o.passed())));
                JsonValue::Object(obj)
            })
            .collect();
        let doc = JsonValue::Object(vec![
            ("targets".to_string(), JsonValue::Array(targets)),
            ("passed".to_string(), JsonValue::Bool(all_passed)),
        ]);
        println!("{doc}");
    } else {
        for o in &outcomes {
            print!("{}", o.report);
            let verdict = if o.passed() { "PASS" } else { "FAIL" };
            let expect = match o.expectation {
                Expectation::Clean => "expected deny-free".to_string(),
                Expectation::DeniedWith(code) => {
                    format!("expected deny-level `{code}`")
                }
            };
            println!("  -> {verdict} ({expect})");
            println!();
        }
        let summary = if all_passed { "clean" } else { "FAILED" };
        println!("tls-lint: {} target(s), gate {summary}", outcomes.len());
    }
    std::process::exit(if all_passed { 0 } else { 1 });
}
