//! Offline trace analysis for `.jsonl` event traces (written by
//! `tls-prove --trace`, the examples, or any [`equitls_obs::JsonlSink`]).
//!
//! ```text
//! tls-trace summarize <run.jsonl>
//! tls-trace export <run.jsonl> --chrome <out.json>
//! tls-trace export <run.jsonl> --folded <out.folded>
//! tls-trace diff <before.jsonl> <after.jsonl> [--threshold-pct N]
//! ```
//!
//! `summarize` renders the latency histograms (p50/p90/p99/max per span),
//! the hot-rule ranking over the rewrite rules, and the explorer's
//! per-level phase split. `export --chrome` converts the trace to Chrome
//! trace-event JSON (open in Perfetto or `about://tracing`); `--folded`
//! emits folded stacks for `flamegraph.pl`/`inferno`/speedscope. `diff`
//! compares the cumulative span and per-rule times of two runs and exits
//! **1** when anything slowed down by more than the threshold (default
//! 20%) — the regression gate `scripts/bench.sh` and perf PRs use.
//!
//! Exit codes: **0** success (and, for `diff`, no regression); **1**
//! regression past the threshold; **2** usage error or unreadable trace.

use equitls_obs::summary::{Align, MetricsSummary, Table};
use equitls_obs::trace::{diff_summaries, Trace, TraceDiff};
use std::time::Duration;

/// Default `diff` regression threshold, in percent.
const DEFAULT_THRESHOLD_PCT: f64 = 20.0;

/// Rows shown in the ranking tables.
const TOP_N: usize = 15;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("summarize") => summarize(&args[1..]),
        Some("export") => export(&args[1..]),
        Some("diff") => diff(&args[1..]),
        Some(other) => usage(&format!("unknown command {other}")),
        None => usage("missing command"),
    };
    std::process::exit(code);
}

fn usage(complaint: &str) -> i32 {
    eprintln!(
        "{complaint}\n\
         usage: tls-trace summarize <run.jsonl>\n\
         \x20      tls-trace export <run.jsonl> --chrome <out.json> | --folded <out.folded>\n\
         \x20      tls-trace diff <before.jsonl> <after.jsonl> [--threshold-pct N]"
    );
    2
}

/// Load a trace or exit 2: an unreadable file or a file with no usable
/// event lines is a usage-class error, a few torn lines are only noted.
fn load_trace(path: &str) -> Result<Trace, i32> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return Err(2);
        }
    };
    let trace = Trace::parse(&text);
    if trace.is_empty() {
        eprintln!(
            "{path} contains no trace events ({} unusable line(s)) — not a .jsonl event trace?",
            trace.skipped_lines
        );
        return Err(2);
    }
    if trace.skipped_lines > 0 {
        eprintln!(
            "note: {} unusable line(s) in {path} skipped (torn write from an interrupted run?)",
            trace.skipped_lines
        );
    }
    Ok(trace)
}

fn summarize(args: &[String]) -> i32 {
    let [path] = args else {
        return usage("summarize takes exactly one trace file");
    };
    let trace = match load_trace(path) {
        Ok(trace) => trace,
        Err(code) => return code,
    };
    let summary = trace.summary();
    println!(
        "{}: {} events over {:.2?}\n",
        path,
        trace.events.len(),
        Duration::from_micros(trace.duration_us()),
    );

    println!("span latency (log2-bucketed histograms; rates omitted below 1ms)");
    print!("{}", summary.render_histogram_table());
    println!();

    let hot = summary.counters_with_prefix("rule.time_us:");
    if !hot.is_empty() {
        println!(
            "hot rules (top {TOP_N} of {} by cumulative time)",
            hot.len()
        );
        print!("{}", render_hot_rules(&summary, TOP_N));
        println!();
    }

    let levels = summary.counters_with_prefix("mc.succ_us:");
    if !levels.is_empty() {
        println!("explorer levels (successor generation vs. merge/dedup)");
        let mut table = Table::new(
            &["level", "successors", "dedup"],
            &[Align::Right, Align::Right, Align::Right],
        );
        let mut sorted = levels;
        sorted.sort_by_key(|(level, _)| level.parse::<u64>().unwrap_or(u64::MAX));
        for (level, succ_us) in sorted {
            let dedup_us = summary.counter_total(&format!("mc.dedup_us:{level}"));
            table.row(vec![
                level,
                format!("{:.2?}", Duration::from_micros(succ_us)),
                format!("{:.2?}", Duration::from_micros(dedup_us)),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    0
}

/// The ranked hot-rule table shared by `summarize` (and mirroring
/// `tls-prove --metrics`).
fn render_hot_rules(summary: &MetricsSummary, top_n: usize) -> String {
    let mut table = Table::new(
        &["rule", "attempts", "fires", "failures", "blocked", "time"],
        &[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for (label, time_us) in summary
        .counters_with_prefix("rule.time_us:")
        .into_iter()
        .take(top_n)
    {
        let count = |kind: &str| summary.counter_total(&format!("rule.{kind}:{label}"));
        table.row(vec![
            label.clone(),
            count("attempts").to_string(),
            count("fires").to_string(),
            count("failures").to_string(),
            count("blocked").to_string(),
            format!("{:.2?}", Duration::from_micros(time_us)),
        ]);
    }
    table.render()
}

fn export(args: &[String]) -> i32 {
    let (path, format, out) = match args {
        [path, format, out] => (path, format.as_str(), out),
        _ => return usage("export takes <run.jsonl> --chrome|--folded <out>"),
    };
    let trace = match load_trace(path) {
        Ok(trace) => trace,
        Err(code) => return code,
    };
    let rendered = match format {
        "--chrome" => trace.chrome_trace().to_string(),
        "--folded" => trace.folded(),
        other => return usage(&format!("unknown export format {other}")),
    };
    if let Err(e) = std::fs::write(out, rendered) {
        eprintln!("cannot write {out}: {e}");
        return 2;
    }
    match format {
        "--chrome" => eprintln!("Chrome trace written to {out} (open in Perfetto)"),
        _ => eprintln!("folded stacks written to {out} (feed to flamegraph.pl or speedscope)"),
    }
    0
}

fn diff(args: &[String]) -> i32 {
    let (before_path, after_path, threshold) = match args {
        [before, after] => (before, after, DEFAULT_THRESHOLD_PCT),
        [before, after, flag, value] if flag == "--threshold-pct" => match value.parse::<f64>() {
            Ok(t) if t >= 0.0 => (before, after, t),
            _ => return usage("--threshold-pct needs a non-negative percentage"),
        },
        _ => return usage("diff takes <before.jsonl> <after.jsonl> [--threshold-pct N]"),
    };
    let (before, after) = match (load_trace(before_path), load_trace(after_path)) {
        (Ok(b), Ok(a)) => (b, a),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let result = diff_summaries(&before.summary(), &after.summary(), threshold);
    print_diff(&result, before_path, after_path);
    if result.is_clean() {
        println!("no regression past {threshold}% — OK");
        0
    } else {
        println!(
            "{} regression(s) past {threshold}% — FAIL",
            result.regressions().len()
        );
        1
    }
}

fn print_diff(result: &TraceDiff, before_path: &str, after_path: &str) {
    println!("diff: {before_path} (before) vs. {after_path} (after)\n");
    let mut table = Table::new(
        &["quantity", "before", "after", "delta", ""],
        &[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Left,
        ],
    );
    let flagged: Vec<&str> = result
        .regressions()
        .iter()
        .map(|r| r.name.as_str())
        .collect();
    for row in result.rows.iter().take(TOP_N) {
        let delta = if row.delta_pct.is_infinite() {
            "new".to_string()
        } else {
            format!("{:+.1}%", row.delta_pct)
        };
        table.row(vec![
            row.name.clone(),
            format!("{:.2?}", Duration::from_micros(row.before_us)),
            format!("{:.2?}", Duration::from_micros(row.after_us)),
            delta,
            if flagged.contains(&row.name.as_str()) {
                "REGRESSION".into()
            } else {
                String::new()
            },
        ]);
    }
    print!("{}", table.render());
    if result.rows.len() > TOP_N {
        println!("({} more row(s) not shown)", result.rows.len() - TOP_N);
    }
    println!();
}
