//! The verified properties: the paper's five invariants (§5.1) plus the
//! thirteen auxiliary lemmas ("We need 13 more properties to prove the
//! five properties"), eighteen in all — matching the paper's §1/§7 count.
//!
//! The auxiliary set is our reconstruction (the paper does not list its
//! thirteen); each lemma is stated with projections instead of existential
//! quantifiers so it fits the equational fragment:
//!
//! * `lem-cepms-cpms` — anything gleanable as a ciphertext under
//!   `k(intruder)` has an already-gleanable payload;
//! * `lem-esfin-origin` / `lem-esfin2-origin` / `lem-ecfin-origin` /
//!   `lem-ecfin2-origin` — well-formed Finished ciphertexts between
//!   honest principals originate from the genuine sender;
//! * `lem-src-honest` — only the intruder sends with a forged sender
//!   field;
//! * `lem-sf-session` / `lem-sf2-session` — a genuine ServerFinished(2)
//!   implies the matching ServerHello(2) (and Certificate) were sent;
//! * `lem-kx-shape` / `lem-cf-shape` / `lem-sf-shape` — trustable
//!   principals' messages have the protocol's payload shape;
//! * `lem-secret-us` / `lem-rand-ur` — used-value tracking.

use equitls_core::prelude::{Invariant, InvariantSet};
use equitls_core::CoreError;
use equitls_spec::parser::{elaborate_term, parse_term_ast, ElabScope};
use equitls_spec::prelude::*;

/// `(variable name, sort)` pairs usable in property bodies.
const PROPERTY_VARS: [(&str, &str); 16] = [
    ("P", "Protocol"),
    ("A", "Prin"),
    ("B", "Prin"),
    ("B1", "Prin"),
    ("R1", "Rand"),
    ("R2", "Rand"),
    ("L", "ListOfChoices"),
    ("C", "Choice"),
    ("I", "Sid"),
    ("S", "Secret"),
    ("PM", "Pms"),
    ("M", "Msg"),
    ("ES", "EncSFin"),
    ("ES2", "EncSFin2"),
    ("EC", "EncCFin"),
    ("EC2", "EncCFin2"),
];

/// `(name, params, body)` for all eighteen properties.
///
/// Bodies are written in the surface DSL; `P` is always the state
/// variable.
pub const PROPERTIES: [(&str, &[&str], &str); 18] = [
    // ---- the five properties of §5.1 -----------------------------------
    (
        "inv1",
        &["PM"],
        r"PM \in cpms(nw(P)) implies (client(PM) = intruder or server(PM) = intruder)",
    ),
    (
        "inv2",
        &["A", "B", "B1", "R1", "R2", "L", "C", "I", "S"],
        r"not (A = intruder)
          and sf(B1, B, A, esfin(key(B, pms(A, B, S), R1, R2),
                                 sfin(A, B, I, L, C, R1, R2, pms(A, B, S)))) \in nw(P)
          implies
          sf(B, B, A, esfin(key(B, pms(A, B, S), R1, R2),
                            sfin(A, B, I, L, C, R1, R2, pms(A, B, S)))) \in nw(P)",
    ),
    (
        "inv3",
        &["A", "B", "B1", "R1", "R2", "C", "I", "S"],
        r"not (A = intruder)
          and sf2(B1, B, A, esfin2(key(B, pms(A, B, S), R1, R2),
                                   sfin2(A, B, I, C, R1, R2, pms(A, B, S)))) \in nw(P)
          implies
          sf2(B, B, A, esfin2(key(B, pms(A, B, S), R1, R2),
                              sfin2(A, B, I, C, R1, R2, pms(A, B, S)))) \in nw(P)",
    ),
    (
        "inv4",
        &["A", "B", "B1", "R1", "R2", "L", "C", "I", "S"],
        r"not (A = intruder)
          and sh(B1, B, A, R2, I, C) \in nw(P)
          and ct(B1, B, A, cert(B, k(B), sig(ca, B, k(B)))) \in nw(P)
          and sf(B1, B, A, esfin(key(B, pms(A, B, S), R1, R2),
                                 sfin(A, B, I, L, C, R1, R2, pms(A, B, S)))) \in nw(P)
          implies
          (sh(B, B, A, R2, I, C) \in nw(P)
           and ct(B, B, A, cert(B, k(B), sig(ca, B, k(B)))) \in nw(P))",
    ),
    (
        "inv5",
        &["A", "B", "B1", "R1", "R2", "C", "I", "S"],
        r"not (A = intruder)
          and sh2(B1, B, A, R2, I, C) \in nw(P)
          and sf2(B1, B, A, esfin2(key(B, pms(A, B, S), R1, R2),
                                   sfin2(A, B, I, C, R1, R2, pms(A, B, S)))) \in nw(P)
          implies
          sh2(B, B, A, R2, I, C) \in nw(P)",
    ),
    // ---- auxiliary lemmas ----------------------------------------------
    (
        "lem-cepms-cpms",
        &["PM"],
        r"epms(k(intruder), PM) \in cepms(nw(P)) implies PM \in cpms(nw(P))",
    ),
    (
        "lem-esfin-origin",
        &["ES"],
        r"ES \in cesfin(nw(P))
          and ES = esfin(key(fb(bd(ES)), fp(bd(ES)), fr1(bd(ES)), fr2(bd(ES))), bd(ES))
          and client(fp(bd(ES))) = fa(bd(ES))
          and server(fp(bd(ES))) = fb(bd(ES))
          and not (fa(bd(ES)) = intruder)
          and not (fb(bd(ES)) = intruder)
          implies
          sf(fb(bd(ES)), fb(bd(ES)), fa(bd(ES)), ES) \in nw(P)",
    ),
    (
        "lem-esfin2-origin",
        &["ES2"],
        r"ES2 \in cesfin2(nw(P))
          and ES2 = esfin2(key(fb(bd(ES2)), fp(bd(ES2)), fr1(bd(ES2)), fr2(bd(ES2))), bd(ES2))
          and client(fp(bd(ES2))) = fa(bd(ES2))
          and server(fp(bd(ES2))) = fb(bd(ES2))
          and not (fa(bd(ES2)) = intruder)
          and not (fb(bd(ES2)) = intruder)
          implies
          sf2(fb(bd(ES2)), fb(bd(ES2)), fa(bd(ES2)), ES2) \in nw(P)",
    ),
    (
        "lem-ecfin-origin",
        &["EC"],
        r"EC \in cecfin(nw(P))
          and EC = ecfin(key(fa(bd(EC)), fp(bd(EC)), fr1(bd(EC)), fr2(bd(EC))), bd(EC))
          and client(fp(bd(EC))) = fa(bd(EC))
          and server(fp(bd(EC))) = fb(bd(EC))
          and not (fa(bd(EC)) = intruder)
          and not (fb(bd(EC)) = intruder)
          implies
          cf(fa(bd(EC)), fa(bd(EC)), fb(bd(EC)), EC) \in nw(P)",
    ),
    (
        "lem-ecfin2-origin",
        &["EC2"],
        r"EC2 \in cecfin2(nw(P))
          and EC2 = ecfin2(key(fa(bd(EC2)), fp(bd(EC2)), fr1(bd(EC2)), fr2(bd(EC2))), bd(EC2))
          and client(fp(bd(EC2))) = fa(bd(EC2))
          and server(fp(bd(EC2))) = fb(bd(EC2))
          and not (fa(bd(EC2)) = intruder)
          and not (fb(bd(EC2)) = intruder)
          implies
          cf2(fa(bd(EC2)), fa(bd(EC2)), fb(bd(EC2)), EC2) \in nw(P)",
    ),
    (
        "lem-src-honest",
        &["M"],
        r"M \in nw(P) implies (crt(M) = intruder or crt(M) = src(M))",
    ),
    (
        "lem-sf-session",
        &["A", "B", "R1", "R2", "L", "C", "I", "S"],
        r"sf(B, B, A, esfin(key(B, pms(A, B, S), R1, R2),
                            sfin(A, B, I, L, C, R1, R2, pms(A, B, S)))) \in nw(P)
          and not (B = intruder)
          implies
          (sh(B, B, A, R2, I, C) \in nw(P)
           and ct(B, B, A, cert(B, k(B), sig(ca, B, k(B)))) \in nw(P))",
    ),
    (
        "lem-sf2-session",
        &["A", "B", "R1", "R2", "C", "I", "S"],
        r"sf2(B, B, A, esfin2(key(B, pms(A, B, S), R1, R2),
                              sfin2(A, B, I, C, R1, R2, pms(A, B, S)))) \in nw(P)
          and not (B = intruder)
          implies
          sh2(B, B, A, R2, I, C) \in nw(P)",
    ),
    (
        "lem-kx-shape",
        &["M"],
        r"M \in nw(P) and kx?(M) and not (crt(M) = intruder)
          implies
          (pk(epms(M)) = k(dst(M))
           and client(pl(epms(M))) = crt(M)
           and server(pl(epms(M))) = dst(M)
           and src(M) = crt(M))",
    ),
    (
        "lem-cf-shape",
        &["M"],
        r"M \in nw(P) and cf?(M) and not (crt(M) = intruder)
          implies
          (ecfin(M) = ecfin(key(fa(bd(ecfin(M))), fp(bd(ecfin(M))),
                                fr1(bd(ecfin(M))), fr2(bd(ecfin(M)))),
                            bd(ecfin(M)))
           and fa(bd(ecfin(M))) = crt(M)
           and fb(bd(ecfin(M))) = dst(M)
           and client(fp(bd(ecfin(M)))) = crt(M)
           and server(fp(bd(ecfin(M)))) = dst(M))",
    ),
    (
        "lem-sf-shape",
        &["M"],
        r"M \in nw(P) and sf?(M) and not (crt(M) = intruder)
          implies
          (esfin(M) = esfin(key(fb(bd(esfin(M))), fp(bd(esfin(M))),
                                fr1(bd(esfin(M))), fr2(bd(esfin(M)))),
                            bd(esfin(M)))
           and fb(bd(esfin(M))) = crt(M)
           and fa(bd(esfin(M))) = dst(M))",
    ),
    (
        "lem-secret-us",
        &["M"],
        r"M \in nw(P) and kx?(M) and not (crt(M) = intruder)
          implies
          secret(pl(epms(M))) \in us(P)",
    ),
    (
        "lem-rand-ur",
        &["M"],
        r"M \in nw(P) and not (crt(M) = intruder)
          and (ch?(M) or sh?(M) or ch2?(M) or sh2?(M))
          implies
          rand(M) \in ur(P)",
    ),
];

/// Build the eighteen properties against a fully installed specification.
///
/// # Errors
///
/// Parse or resolution failures in a property body.
pub fn install(spec: &mut Spec) -> Result<InvariantSet, CoreError> {
    let mut scope = ElabScope::new();
    let mut vars = std::collections::HashMap::new();
    for (name, sort) in PROPERTY_VARS {
        let sort_id = spec.sort_id(sort)?;
        let var = spec.store_mut().declare_var(name, sort_id)?;
        let occurrence = spec.store_mut().var(var);
        scope.bind(name, occurrence);
        vars.insert(name, var);
    }
    let state_var = vars["P"];
    let mut set = InvariantSet::new();
    for (name, params, body_src) in PROPERTIES {
        let ast = parse_term_ast(body_src).map_err(CoreError::Spec)?;
        let body = elaborate_term(spec, &scope, &ast).map_err(CoreError::Spec)?;
        let param_vars = params.iter().map(|p| vars[p]).collect();
        set.push(Invariant::new(spec, name, state_var, param_vars, body)?);
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::TlsModel;

    #[test]
    fn all_eighteen_properties_elaborate() {
        let model = TlsModel::standard().unwrap();
        assert_eq!(model.invariants.len(), 18);
        for (name, params, _) in PROPERTIES {
            let inv = model.invariants.get(name).unwrap_or_else(|| {
                panic!("property {name} missing");
            });
            assert_eq!(inv.params.len(), params.len(), "{name} params");
        }
    }

    #[test]
    fn property_count_matches_the_paper() {
        // §1/§7: 18 invariants verified in the case study.
        assert_eq!(PROPERTIES.len(), 18);
        let main: Vec<&str> = PROPERTIES
            .iter()
            .map(|(n, _, _)| *n)
            .filter(|n| n.starts_with("inv"))
            .collect();
        assert_eq!(main, vec!["inv1", "inv2", "inv3", "inv4", "inv5"]);
    }
}
