//! The network, the used-value sets, and the intruder's gleaning
//! collections (§4.3).
//!
//! The network is a bag of messages built from `void` and `_,_`; messages
//! are never removed (the intruder can replay anything). The intruder
//! gleans seven kinds of quantities; each collection `cX` is defined
//! equationally over the bag structure so that consing a concrete message
//! onto a symbolic network unfolds by exactly one step — the mechanism the
//! inductive proofs ride on.
//!
//! **Paper erratum noted in DESIGN.md**: §4.3 says pre-master secrets are
//! gleaned from *Certificate* messages; the equations make clear they come
//! from **ClientKeyExchange** (`kx`) messages, which is what we implement.

// Library code here must propagate `SpecError`, never panic (tests opt
// back in below); `scripts/check.sh` runs clippy with `-D warnings`.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use equitls_spec::prelude::*;

/// Declare network, used-value sets, and gleaning collections.
///
/// # Errors
///
/// Propagates builder errors.
pub fn install(spec: &mut Spec) -> Result<(), SpecError> {
    spec.load_module(
        r#"
        mod! NETWORK {
          pr(MESSAGE)
          [ Network URand USid USecret
            ColPms ColSig ColEncPms ColEncCFin ColEncSFin ColEncCFin2 ColEncSFin2 ]

          -- the network bag
          op void : -> Network {constr} .
          op _,_ : Msg Network -> Network {constr} .
          op _\in_ : Msg Network -> Bool .

          -- used random numbers / session ids / secrets (observers' data)
          op noRand : -> URand {constr} .
          op _,_ : Rand URand -> URand {constr} .
          op _\in_ : Rand URand -> Bool .
          op noSid : -> USid {constr} .
          op _,_ : Sid USid -> USid {constr} .
          op _\in_ : Sid USid -> Bool .
          op noSecret : -> USecret {constr} .
          op _,_ : Secret USecret -> USecret {constr} .
          op _\in_ : Secret USecret -> Bool .

          -- gleaning collections (the seven kinds of §4.3)
          op cpms : Network -> ColPms .
          op csig : Network -> ColSig .
          op cepms : Network -> ColEncPms .
          op cecfin : Network -> ColEncCFin .
          op cesfin : Network -> ColEncSFin .
          op cecfin2 : Network -> ColEncCFin2 .
          op cesfin2 : Network -> ColEncSFin2 .
          op _\in_ : Pms ColPms -> Bool .
          op _\in_ : Sig ColSig -> Bool .
          op _\in_ : EncPms ColEncPms -> Bool .
          op _\in_ : EncCFin ColEncCFin -> Bool .
          op _\in_ : EncSFin ColEncSFin -> Bool .
          op _\in_ : EncCFin2 ColEncCFin2 -> Bool .
          op _\in_ : EncSFin2 ColEncSFin2 -> Bool .

          vars M M2 : Msg . var NW : Network .
          vars R R2 : Rand . var UR : URand .
          vars I I2 : Sid . var UI : USid .
          vars S S2 : Secret . var US : USecret .
          var PM : Pms . var G : Sig . var EP : EncPms .
          var EC : EncCFin . var ES : EncSFin .
          var EC2 : EncCFin2 . var ES2 : EncSFin2 .

          -- bag membership
          eq M \in void = false .
          eq M \in (M2 , NW) = (M = M2) or (M \in NW) .
          eq R \in noRand = false .
          eq R \in (R2 , UR) = (R = R2) or (R \in UR) .
          eq I \in noSid = false .
          eq I \in (I2 , UI) = (I = I2) or (I \in UI) .
          eq S \in noSecret = false .
          eq S \in (S2 , US) = (S = S2) or (S \in US) .

          -- pre-master secrets: the intruder's own at the start; gleaned
          -- from ClientKeyExchange messages encrypted with k(intruder)
          eq PM \in cpms(void) = (client(PM) = intruder) .
          ceq PM \in cpms(M , NW) = true
            if kx?(M) and (epms(M) = epms(k(intruder), PM)) .
          ceq PM \in cpms(M , NW) = PM \in cpms(NW)
            if not (kx?(M) and (epms(M) = epms(k(intruder), PM))) .

          -- CA signatures: the intruder can sign with its own key; others
          -- are gleaned from Certificate messages
          eq G \in csig(void) = (signer(G) = intruder) .
          ceq G \in csig(M , NW) = true
            if ct?(M) and (G = csig(cert(M))) .
          ceq G \in csig(M , NW) = G \in csig(NW)
            if not (ct?(M) and (G = csig(cert(M)))) .

          -- encrypted pre-master secrets, from kx messages
          eq EP \in cepms(void) = false .
          ceq EP \in cepms(M , NW) = true
            if kx?(M) and (EP = epms(M)) .
          ceq EP \in cepms(M , NW) = EP \in cepms(NW)
            if not (kx?(M) and (EP = epms(M))) .

          -- encrypted Finished payloads, from cf / sf / cf2 / sf2
          eq EC \in cecfin(void) = false .
          ceq EC \in cecfin(M , NW) = true
            if cf?(M) and (EC = ecfin(M)) .
          ceq EC \in cecfin(M , NW) = EC \in cecfin(NW)
            if not (cf?(M) and (EC = ecfin(M))) .

          eq ES \in cesfin(void) = false .
          ceq ES \in cesfin(M , NW) = true
            if sf?(M) and (ES = esfin(M)) .
          ceq ES \in cesfin(M , NW) = ES \in cesfin(NW)
            if not (sf?(M) and (ES = esfin(M))) .

          eq EC2 \in cecfin2(void) = false .
          ceq EC2 \in cecfin2(M , NW) = true
            if cf2?(M) and (EC2 = ecfin2(M)) .
          ceq EC2 \in cecfin2(M , NW) = EC2 \in cecfin2(NW)
            if not (cf2?(M) and (EC2 = ecfin2(M))) .

          eq ES2 \in cesfin2(void) = false .
          ceq ES2 \in cesfin2(M , NW) = true
            if sf2?(M) and (ES2 = esfin2(M)) .
          ceq ES2 \in cesfin2(M , NW) = ES2 \in cesfin2(NW)
            if not (sf2?(M) and (ES2 = esfin2(M))) .
        }
        "#,
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::symbolic::{data, messages};

    fn network_spec() -> Spec {
        let mut spec = Spec::new().unwrap();
        data::install(&mut spec).unwrap();
        messages::install(&mut spec).unwrap();
        install(&mut spec).unwrap();
        spec
    }

    #[test]
    fn intruders_own_pms_is_always_gleanable() {
        let mut spec = network_spec();
        let alg = spec.alg().clone();
        let prin = spec.sort_id("Prin").unwrap();
        let secret = spec.sort_id("Secret").unwrap();
        let intruder = spec.const_term("intruder").unwrap();
        let b = spec.store_mut().fresh_constant("b", prin);
        let s = spec.store_mut().fresh_constant("s", secret);
        let own = spec.app("pms", &[intruder, b, s]).unwrap();
        let void = spec.const_term("void").unwrap();
        let cp = spec.app("cpms", &[void]).unwrap();
        let member = spec.app("_\\in_", &[own, cp]).unwrap();
        let n = spec.red(member).unwrap();
        assert_eq!(alg.as_constant(spec.store(), n), Some(true));
        // A trustable client's pms is not initially gleanable.
        let a = spec.store_mut().fresh_constant("a", prin);
        let honest = spec.app("pms", &[a, b, s]).unwrap();
        let member2 = spec.app("_\\in_", &[honest, cp]).unwrap();
        let n2 = spec.red(member2).unwrap();
        // reduces to (a = intruder), not a constant
        assert_eq!(alg.as_constant(spec.store(), n2), None);
    }

    #[test]
    fn kx_to_intruder_leaks_the_pms() {
        let mut spec = network_spec();
        let alg = spec.alg().clone();
        let prin = spec.sort_id("Prin").unwrap();
        let secret = spec.sort_id("Secret").unwrap();
        let intruder = spec.const_term("intruder").unwrap();
        let a = spec.store_mut().fresh_constant("a", prin);
        let s = spec.store_mut().fresh_constant("s", secret);
        let pm = spec.app("pms", &[a, intruder, s]).unwrap();
        let k_i = spec.app("k", &[intruder]).unwrap();
        let ep = spec.app("epms", &[k_i, pm]).unwrap();
        let m = spec.app("kx", &[a, a, intruder, ep]).unwrap();
        let void = spec.const_term("void").unwrap();
        let nw = spec.app("_,_", &[m, void]).unwrap();
        let cp = spec.app("cpms", &[nw]).unwrap();
        let member = spec.app("_\\in_", &[pm, cp]).unwrap();
        let n = spec.red(member).unwrap();
        assert_eq!(alg.as_constant(spec.store(), n), Some(true));
    }

    #[test]
    fn kx_to_honest_server_does_not_leak() {
        let mut spec = network_spec();
        let alg = spec.alg().clone();
        let prin = spec.sort_id("Prin").unwrap();
        let secret = spec.sort_id("Secret").unwrap();
        let a = spec.store_mut().fresh_constant("a", prin);
        let b = spec.store_mut().fresh_constant("b", prin);
        let s = spec.store_mut().fresh_constant("s", secret);
        let pm = spec.app("pms", &[a, b, s]).unwrap();
        let k_b = spec.app("k", &[b]).unwrap();
        let ep = spec.app("epms", &[k_b, pm]).unwrap();
        let m = spec.app("kx", &[a, a, b, ep]).unwrap();
        let void = spec.const_term("void").unwrap();
        let nw = spec.app("_,_", &[m, void]).unwrap();
        let cp = spec.app("cpms", &[nw]).unwrap();
        let member = spec.app("_\\in_", &[pm, cp]).unwrap();
        let n = spec.red(member).unwrap();
        // Not decidably gleanable: residual is `(b = intruder) …` or
        // `(a = intruder)` — never `true`.
        assert_ne!(alg.as_constant(spec.store(), n), Some(true));
    }

    #[test]
    fn bag_membership_unfolds_message_by_message() {
        let mut spec = network_spec();
        let alg = spec.alg().clone();
        let prin = spec.sort_id("Prin").unwrap();
        let cert_sort = spec.sort_id("Cert").unwrap();
        let a = spec.store_mut().fresh_constant("a", prin);
        let b = spec.store_mut().fresh_constant("b", prin);
        let ce = spec.store_mut().fresh_constant("ce", cert_sort);
        let m1 = spec.app("ct", &[b, b, a, ce]).unwrap();
        let void = spec.const_term("void").unwrap();
        let nw = spec.app("_,_", &[m1, void]).unwrap();
        let member = spec.app("_\\in_", &[m1, nw]).unwrap();
        let n = spec.red(member).unwrap();
        assert_eq!(alg.as_constant(spec.store(), n), Some(true));
        // A different message is not in the bag.
        let m2 = spec.app("ct", &[a, b, a, ce]).unwrap();
        let member2 = spec.app("_\\in_", &[m2, nw]).unwrap();
        let n2 = spec.red(member2).unwrap();
        // (a = b) remains — undecided for arbitrary constants.
        assert_eq!(alg.as_constant(spec.store(), n2), None);
    }

    #[test]
    fn ciphertexts_are_gleaned_from_matching_messages_only() {
        let mut spec = network_spec();
        let alg = spec.alg().clone();
        let prin = spec.sort_id("Prin").unwrap();
        let enc = spec.sort_id("EncSFin").unwrap();
        let a = spec.store_mut().fresh_constant("a", prin);
        let b = spec.store_mut().fresh_constant("b", prin);
        let es = spec.store_mut().fresh_constant("es", enc);
        let m = spec.app("sf", &[b, b, a, es]).unwrap();
        let void = spec.const_term("void").unwrap();
        let nw = spec.app("_,_", &[m, void]).unwrap();
        let col = spec.app("cesfin", &[nw]).unwrap();
        let member = spec.app("_\\in_", &[es, col]).unwrap();
        let n = spec.red(member).unwrap();
        assert_eq!(alg.as_constant(spec.store(), n), Some(true));
        // cecfin does not see sf messages.
        let enc_c = spec.sort_id("EncCFin").unwrap();
        let ec = spec.store_mut().fresh_constant("ec", enc_c);
        let colc = spec.app("cecfin", &[nw]).unwrap();
        let member2 = spec.app("_\\in_", &[ec, colc]).unwrap();
        let n2 = spec.red(member2).unwrap();
        assert_eq!(alg.as_constant(spec.store(), n2), Some(false));
    }

    #[test]
    fn signature_gleaning_from_certificates() {
        let mut spec = network_spec();
        let alg = spec.alg().clone();
        let prin = spec.sort_id("Prin").unwrap();
        let b = spec.store_mut().fresh_constant("b", prin);
        let a = spec.store_mut().fresh_constant("a", prin);
        let ca = spec.const_term("ca").unwrap();
        let kb = spec.app("k", &[b]).unwrap();
        let g = spec.app("sig", &[ca, b, kb]).unwrap();
        let cert = spec.app("cert", &[b, kb, g]).unwrap();
        let m = spec.app("ct", &[b, b, a, cert]).unwrap();
        let void = spec.const_term("void").unwrap();
        let nw = spec.app("_,_", &[m, void]).unwrap();
        let col = spec.app("csig", &[nw]).unwrap();
        let member = spec.app("_\\in_", &[g, col]).unwrap();
        let n = spec.red(member).unwrap();
        assert_eq!(alg.as_constant(spec.store(), n), Some(true));
    }
}
