//! The symbolic (algebraic) TLS model: §3.2's abstract handshake protocol
//! as an OTS written in equations.
//!
//! [`TlsModel::standard`] assembles the whole specification — data
//! algebra, messages, network and gleaning, trustable transitions,
//! intruder — plus the OTS structure and the eighteen properties.
//! [`TlsModel::variant`] builds the §5.3 variant in which ClientFinished2
//! precedes ServerFinished2.

pub mod data;
pub mod intruder;
pub mod messages;
pub mod network;
pub mod properties;
pub mod transitions;

pub use transitions::Variant;

use equitls_core::prelude::{InvariantSet, Ots};
use equitls_core::CoreError;
use equitls_spec::prelude::Spec;

/// A fully assembled symbolic TLS model.
#[derive(Debug, Clone)]
pub struct TlsModel {
    /// The specification (signature, equations, term store).
    pub spec: Spec,
    /// The OTS view: observers, 27 transitions, initial state.
    pub ots: Ots,
    /// The eighteen properties of [`properties::PROPERTIES`].
    pub invariants: InvariantSet,
    /// Which abbreviated-handshake ordering was built.
    pub variant: Variant,
}

impl TlsModel {
    /// Build the Figure 2 protocol (ServerFinished2 first).
    ///
    /// # Errors
    ///
    /// Propagates specification-building errors (none occur for the
    /// shipped model; the `Result` guards future edits).
    pub fn standard() -> Result<Self, CoreError> {
        TlsModel::build(Variant::ServerFinished2First)
    }

    /// Build the §5.3 variant (ClientFinished2 first).
    ///
    /// # Errors
    ///
    /// Same as [`TlsModel::standard`].
    pub fn variant() -> Result<Self, CoreError> {
        TlsModel::build(Variant::ClientFinished2First)
    }

    fn build(variant: Variant) -> Result<Self, CoreError> {
        let mut spec = Spec::new()?;
        data::install(&mut spec)?;
        messages::install(&mut spec)?;
        network::install(&mut spec)?;
        transitions::install(&mut spec, variant)?;
        intruder::install(&mut spec)?;
        let invariants = properties::install(&mut spec)?;
        let ots = Ots::from_spec(&mut spec, "Protocol", "init")?;
        Ok(TlsModel {
            spec,
            ots,
            invariants,
            variant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_model_has_27_transitions() {
        let model = TlsModel::standard().unwrap();
        // 12 trustable + 15 intruder transitions.
        assert_eq!(model.ots.actions.len(), 27);
        assert_eq!(model.ots.observers.len(), 5);
        for name in [
            "chello", "shello", "cert", "kexch", "cfin", "sfin", "compl", "chello2", "shello2",
            "sfin2", "cfin2", "compl2",
        ] {
            assert!(model.ots.action(name).is_some(), "missing action {name}");
        }
        for name in intruder::FAKE_ACTIONS {
            assert!(model.ots.action(name).is_some(), "missing fake {name}");
        }
    }

    #[test]
    fn variant_model_builds_with_swapped_finish2() {
        let model = TlsModel::variant().unwrap();
        assert_eq!(model.variant, Variant::ClientFinished2First);
        assert_eq!(model.ots.actions.len(), 27);
        // The variant's cfin2 takes (Prin, Secret, Msg, Msg): 4 params.
        let cfin2 = model.ots.action("cfin2").unwrap();
        assert_eq!(cfin2.params.len(), 4);
        // The standard cfin2 takes (Prin, Secret, Msg, Msg, Msg): 5.
        let std_model = TlsModel::standard().unwrap();
        assert_eq!(std_model.ots.action("cfin2").unwrap().params.len(), 5);
    }

    #[test]
    fn initial_state_is_empty() {
        let mut model = TlsModel::standard().unwrap();
        let spec = &mut model.spec;
        let init = spec.parse_term("init").unwrap();
        let nw = spec.app("nw", &[init]).unwrap();
        let void = spec.const_term("void").unwrap();
        assert_eq!(spec.red(nw).unwrap(), void);
    }

    #[test]
    fn a_full_symbolic_handshake_runs() {
        // Drive the six Figure 2 messages through the transitions and
        // check the network contains them all.
        let mut model = TlsModel::standard().unwrap();
        let spec = &mut model.spec;
        let alg = spec.alg().clone();
        // Concrete-ish values as arbitrary constants.
        let prin = spec.sort_id("Prin").unwrap();
        let rand = spec.sort_id("Rand").unwrap();
        let sid = spec.sort_id("Sid").unwrap();
        let choice = spec.sort_id("Choice").unwrap();
        let loc = spec.sort_id("ListOfChoices").unwrap();
        let secret = spec.sort_id("Secret").unwrap();
        let a = spec.store_mut().arbitrary_constant("aP", prin).unwrap();
        let b = spec.store_mut().arbitrary_constant("bP", prin).unwrap();
        let ra = spec.store_mut().arbitrary_constant("rA", rand).unwrap();
        let rb = spec.store_mut().arbitrary_constant("rB", rand).unwrap();
        let i = spec.store_mut().arbitrary_constant("i0", sid).unwrap();
        let c = spec.store_mut().arbitrary_constant("c0", choice).unwrap();
        let l = spec.store_mut().arbitrary_constant("l0", loc).unwrap();
        let s = spec.store_mut().arbitrary_constant("s0", secret).unwrap();
        let init = spec.parse_term("init").unwrap();

        // To make effective conditions decidable we assert the freshness
        // and distinctness facts as assumptions via a proof passage.
        let mut passage = equitls_spec::passage::ProofPassage::open(spec);
        // c0 \in l0 (the server picked from the client's list)
        let cin = passage.spec().app("_\\in_", &[c, l]).unwrap();
        passage.assume_true(cin).unwrap();

        // p1 = chello(init, a, b, ra, l)
        let p1 = passage.spec().app("chello", &[init, a, b, ra, l]).unwrap();
        let nw1 = passage.spec().app("nw", &[p1]).unwrap();
        let n1 = passage.red(nw1).unwrap();
        let ch = passage.spec().app("ch", &[a, a, b, ra, l]).unwrap();
        let member = passage.spec().app("_\\in_", &[ch, n1]).unwrap();
        let ok = passage.red(member).unwrap();
        assert_eq!(
            alg.as_constant(passage.spec().store(), ok),
            Some(true),
            "ClientHello must be in the network"
        );

        // p2 = shello(p1, b, rb, i, c, ch)
        let p2 = passage
            .spec()
            .app("shello", &[p1, b, rb, i, c, ch])
            .unwrap();
        let nw2 = passage.spec().app("nw", &[p2]).unwrap();
        let n2 = passage.red(nw2).unwrap();
        let sh = passage.spec().app("sh", &[b, b, a, rb, i, c]).unwrap();
        let member2 = passage.spec().app("_\\in_", &[sh, n2]).unwrap();
        let ok2 = passage.red(member2).unwrap();
        // `rb \in ur(p1)` reduces to `rb = ra`, which is undecided for
        // arbitrary constants; assume distinctness first.
        let rb_eq_ra = passage.spec().eq_term(rb, ra).unwrap();
        passage.assume_false(rb_eq_ra).unwrap();
        let ok2 = if alg.as_constant(passage.spec().store(), ok2) == Some(true) {
            ok2
        } else {
            passage.red(member2).unwrap()
        };
        assert_eq!(
            alg.as_constant(passage.spec().store(), ok2),
            Some(true),
            "ServerHello must be in the network"
        );

        // p3 = cert(p2, b, ch, sh) adds the certificate.
        let p3 = passage.spec().app("cert", &[p2, b, ch, sh]).unwrap();
        let nw3 = passage.spec().app("nw", &[p3]).unwrap();
        let n3 = passage.red(nw3).unwrap();
        let kb = passage.spec().app("k", &[b]).unwrap();
        let ca = passage.spec().const_term("ca").unwrap();
        let sg = passage.spec().app("sig", &[ca, b, kb]).unwrap();
        let cert = passage.spec().app("cert", &[b, kb, sg]).unwrap();
        let ct = passage.spec().app("ct", &[b, b, a, cert]).unwrap();
        let member3 = passage.spec().app("_\\in_", &[ct, n3]).unwrap();
        let ok3 = passage.red(member3).unwrap();
        assert_eq!(
            alg.as_constant(passage.spec().store(), ok3),
            Some(true),
            "Certificate must be in the network"
        );

        // p4 = kexch(p3, a, s, ch, sh, ct) adds the key exchange.
        let p4 = passage
            .spec()
            .app("kexch", &[p3, a, s, ch, sh, ct])
            .unwrap();
        let nw4 = passage.spec().app("nw", &[p4]).unwrap();
        let n4 = passage.red(nw4).unwrap();
        let pm = passage.spec().app("pms", &[a, b, s]).unwrap();
        let ep = passage.spec().app("epms", &[kb, pm]).unwrap();
        let kxm = passage.spec().app("kx", &[a, a, b, ep]).unwrap();
        let member4 = passage.spec().app("_\\in_", &[kxm, n4]).unwrap();
        let ok4 = passage.red(member4).unwrap();
        assert_eq!(
            alg.as_constant(passage.spec().store(), ok4),
            Some(true),
            "ClientKeyExchange must be in the network"
        );
    }
}
