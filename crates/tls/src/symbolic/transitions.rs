//! Observers and the 12 trustable-principal transitions (§4.4).
//!
//! Observable values: the network `nw`, session states `ss`, and the used
//! random numbers / session IDs / secrets (`ur`, `ui`, `us`). The twelve
//! transitions are the ten message sends of Figure 2 plus the two
//! receive-completions (`compl` for the client's receipt of ServerFinished
//! and `compl2` for the server's receipt of ClientFinished2).
//!
//! Modeling abstractions (documented in DESIGN.md):
//!
//! * Clients validate the server Certificate by requiring it to be exactly
//!   `cert(b, k(b), sig(ca, b, k(b)))` for the seeming server `b` — in the
//!   model the trusted CA signs only genuine key bindings, so any
//!   CA-signed certificate has this shape.
//! * The server's `sfin` effective condition includes its own Certificate
//!   message: in TLS the Finished hash covers the handshake transcript
//!   (which contains the Certificate), and this conjunct is the abstract
//!   residue of that binding. Property 4 relies on it.
//! * Servers recover the pre-master secret from a ClientKeyExchange via
//!   the decryption projection `pl(epms(m))`, guarded by
//!   `pk(epms(m)) = k(B)` (only the key owner can decrypt).

use equitls_spec::prelude::*;

/// The variant of the abbreviated handshake (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// Figure 2: ServerFinished2 precedes ClientFinished2.
    #[default]
    ServerFinished2First,
    /// The §5.3 variant: ClientFinished2 precedes ServerFinished2.
    ClientFinished2First,
}

/// Declare observers, `init`, and the trustable transitions.
///
/// # Errors
///
/// Propagates builder errors.
pub fn install(spec: &mut Spec, variant: Variant) -> Result<(), SpecError> {
    spec.load_module(
        r#"
        mod! PROTOCOL {
          pr(NETWORK)
          *[ Protocol ]*
          op init : -> Protocol .

          bop nw : Protocol -> Network .
          bop ur : Protocol -> URand .
          bop ui : Protocol -> USid .
          bop us : Protocol -> USecret .
          bop ss : Protocol Prin Prin Sid -> Session .

          bop chello : Protocol Prin Prin Rand ListOfChoices -> Protocol .
          bop shello : Protocol Prin Rand Sid Choice Msg -> Protocol .
          bop cert : Protocol Prin Msg Msg -> Protocol .
          bop kexch : Protocol Prin Secret Msg Msg Msg -> Protocol .
          bop cfin : Protocol Prin Secret Msg Msg Msg Msg -> Protocol .
          bop sfin : Protocol Prin Msg Msg Msg Msg Msg -> Protocol .
          bop compl : Protocol Prin Secret Msg Msg Msg Msg Msg Msg -> Protocol .
          bop chello2 : Protocol Prin Prin Secret Rand Sid -> Protocol .
          bop shello2 : Protocol Prin Choice Rand Msg -> Protocol .

          vars A B A2 B2 : Prin . vars R R1 R2 : Rand . vars I I2 : Sid .
          var L : ListOfChoices . var C : Choice . var S : Secret .
          vars M1 M2 M3 M4 M5 M6 : Msg . var P : Protocol .

          -- initial state: nothing sent, nothing used, no sessions
          eq nw(init) = void .
          eq ur(init) = noRand .
          eq ui(init) = noSid .
          eq us(init) = noSecret .
          eq ss(init, A2, B2, I2) = noSession .

          -- chello: client A opens a handshake with B using fresh R
          op c-chello : Protocol Prin Prin Rand ListOfChoices -> Bool .
          eq c-chello(P, A, B, R, L) = not (R \in ur(P)) .
          ceq nw(chello(P, A, B, R, L)) = (ch(A, A, B, R, L) , nw(P))
            if c-chello(P, A, B, R, L) .
          ceq ur(chello(P, A, B, R, L)) = (R , ur(P))
            if c-chello(P, A, B, R, L) .
          eq ui(chello(P, A, B, R, L)) = ui(P) .
          eq us(chello(P, A, B, R, L)) = us(P) .
          eq ss(chello(P, A, B, R, L), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq chello(P, A, B, R, L) = P if not c-chello(P, A, B, R, L) .

          -- shello: server B answers a ClientHello M1 with fresh R, I
          op c-shello : Protocol Prin Rand Sid Choice Msg -> Bool .
          eq c-shello(P, B, R, I, C, M1)
            = M1 \in nw(P) and ch?(M1) and dst(M1) = B
              and C \in list(M1)
              and not (R \in ur(P)) and not (I \in ui(P)) .
          ceq nw(shello(P, B, R, I, C, M1)) = (sh(B, B, src(M1), R, I, C) , nw(P))
            if c-shello(P, B, R, I, C, M1) .
          ceq ur(shello(P, B, R, I, C, M1)) = (R , ur(P))
            if c-shello(P, B, R, I, C, M1) .
          ceq ui(shello(P, B, R, I, C, M1)) = (I , ui(P))
            if c-shello(P, B, R, I, C, M1) .
          eq us(shello(P, B, R, I, C, M1)) = us(P) .
          eq ss(shello(P, B, R, I, C, M1), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq shello(P, B, R, I, C, M1) = P if not c-shello(P, B, R, I, C, M1) .

          -- cert: server B sends its certificate (doubles as
          -- ServerHelloDone per §3.2)
          op c-cert : Protocol Prin Msg Msg -> Bool .
          eq c-cert(P, B, M1, M2)
            = M1 \in nw(P) and M2 \in nw(P) and ch?(M1) and sh?(M2)
              and dst(M1) = B and crt(M2) = B and src(M2) = B
              and src(M1) = dst(M2) and choice(M2) \in list(M1) .
          ceq nw(cert(P, B, M1, M2))
            = (ct(B, B, dst(M2), cert(B, k(B), sig(ca, B, k(B)))) , nw(P))
            if c-cert(P, B, M1, M2) .
          eq ur(cert(P, B, M1, M2)) = ur(P) .
          eq ui(cert(P, B, M1, M2)) = ui(P) .
          eq us(cert(P, B, M1, M2)) = us(P) .
          eq ss(cert(P, B, M1, M2), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq cert(P, B, M1, M2) = P if not c-cert(P, B, M1, M2) .

          -- the client's conformant view of ServerHello + Certificate,
          -- shared by kexch / cfin / compl: M1 is A's own ClientHello, M2
          -- the ServerHello, M3 the validated Certificate
          op c-cview : Protocol Prin Msg Msg Msg -> Bool .
          eq c-cview(P, A, M1, M2, M3)
            = M1 \in nw(P) and ch?(M1) and crt(M1) = A and src(M1) = A
              and M2 \in nw(P) and sh?(M2) and dst(M2) = A
              and src(M2) = dst(M1) and choice(M2) \in list(M1)
              and M3 \in nw(P) and ct?(M3) and dst(M3) = A
              and src(M3) = src(M2)
              and cert(M3) = cert(src(M2), k(src(M2)), sig(ca, src(M2), k(src(M2)))) .

          -- kexch: client A sends the encrypted pre-master secret
          op c-kexch : Protocol Prin Secret Msg Msg Msg -> Bool .
          eq c-kexch(P, A, S, M1, M2, M3)
            = c-cview(P, A, M1, M2, M3) and not (S \in us(P)) .
          ceq nw(kexch(P, A, S, M1, M2, M3))
            = (kx(A, A, src(M2), epms(k(src(M2)), pms(A, src(M2), S))) , nw(P))
            if c-kexch(P, A, S, M1, M2, M3) .
          ceq us(kexch(P, A, S, M1, M2, M3)) = (S , us(P))
            if c-kexch(P, A, S, M1, M2, M3) .
          eq ur(kexch(P, A, S, M1, M2, M3)) = ur(P) .
          eq ui(kexch(P, A, S, M1, M2, M3)) = ui(P) .
          eq ss(kexch(P, A, S, M1, M2, M3), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq kexch(P, A, S, M1, M2, M3) = P if not c-kexch(P, A, S, M1, M2, M3) .

          -- cfin: client A sends its Finished message
          op c-cfin : Protocol Prin Secret Msg Msg Msg Msg -> Bool .
          eq c-cfin(P, A, S, M1, M2, M3, M4)
            = c-cview(P, A, M1, M2, M3)
              and M4 \in nw(P) and kx?(M4) and crt(M4) = A and src(M4) = A
              and dst(M4) = src(M2)
              and epms(M4) = epms(k(src(M2)), pms(A, src(M2), S)) .
          ceq nw(cfin(P, A, S, M1, M2, M3, M4))
            = (cf(A, A, src(M2),
                  ecfin(key(A, pms(A, src(M2), S), rand(M1), rand(M2)),
                        cfin(A, src(M2), sid(M2), list(M1), choice(M2),
                             rand(M1), rand(M2), pms(A, src(M2), S)))) , nw(P))
            if c-cfin(P, A, S, M1, M2, M3, M4) .
          eq ur(cfin(P, A, S, M1, M2, M3, M4)) = ur(P) .
          eq ui(cfin(P, A, S, M1, M2, M3, M4)) = ui(P) .
          eq us(cfin(P, A, S, M1, M2, M3, M4)) = us(P) .
          eq ss(cfin(P, A, S, M1, M2, M3, M4), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq cfin(P, A, S, M1, M2, M3, M4) = P
            if not c-cfin(P, A, S, M1, M2, M3, M4) .

          -- sfin: server B validates the client's Finished and replies;
          -- M1 = ch, M2 = own sh, M3 = own ct, M4 = kx, M5 = cf
          op c-sfin : Protocol Prin Msg Msg Msg Msg Msg -> Bool .
          eq c-sfin(P, B, M1, M2, M3, M4, M5)
            = M1 \in nw(P) and ch?(M1) and dst(M1) = B
              and M2 \in nw(P) and sh?(M2) and crt(M2) = B and src(M2) = B
              and dst(M2) = src(M1) and choice(M2) \in list(M1)
              and M3 \in nw(P) and ct?(M3) and crt(M3) = B and src(M3) = B
              and dst(M3) = src(M1)
              and cert(M3) = cert(B, k(B), sig(ca, B, k(B)))
              and M4 \in nw(P) and kx?(M4) and dst(M4) = B
              and src(M4) = src(M1) and pk(epms(M4)) = k(B)
              and M5 \in nw(P) and cf?(M5) and dst(M5) = B
              and src(M5) = src(M1)
              and ecfin(M5)
                  = ecfin(key(src(M1), pl(epms(M4)), rand(M1), rand(M2)),
                          cfin(src(M1), B, sid(M2), list(M1), choice(M2),
                               rand(M1), rand(M2), pl(epms(M4)))) .
          ceq nw(sfin(P, B, M1, M2, M3, M4, M5))
            = (sf(B, B, src(M1),
                  esfin(key(B, pl(epms(M4)), rand(M1), rand(M2)),
                        sfin(src(M1), B, sid(M2), list(M1), choice(M2),
                             rand(M1), rand(M2), pl(epms(M4))))) , nw(P))
            if c-sfin(P, B, M1, M2, M3, M4, M5) .
          eq ur(sfin(P, B, M1, M2, M3, M4, M5)) = ur(P) .
          eq ui(sfin(P, B, M1, M2, M3, M4, M5)) = ui(P) .
          eq us(sfin(P, B, M1, M2, M3, M4, M5)) = us(P) .
          eq ss(sfin(P, B, M1, M2, M3, M4, M5), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq sfin(P, B, M1, M2, M3, M4, M5) = P
            if not c-sfin(P, B, M1, M2, M3, M4, M5) .

          -- compl: client A validates the ServerFinished M6 and records
          -- the session
          op c-compl : Protocol Prin Secret Msg Msg Msg Msg Msg Msg -> Bool .
          eq c-compl(P, A, S, M1, M2, M3, M4, M5, M6)
            = c-cfin(P, A, S, M1, M2, M3, M4)
              and M5 \in nw(P) and cf?(M5) and crt(M5) = A and src(M5) = A
              and dst(M5) = src(M2)
              and M6 \in nw(P) and sf?(M6) and dst(M6) = A
              and src(M6) = src(M2)
              and esfin(M6)
                  = esfin(key(src(M2), pms(A, src(M2), S), rand(M1), rand(M2)),
                          sfin(A, src(M2), sid(M2), list(M1), choice(M2),
                               rand(M1), rand(M2), pms(A, src(M2), S))) .
          eq nw(compl(P, A, S, M1, M2, M3, M4, M5, M6)) = nw(P) .
          eq ur(compl(P, A, S, M1, M2, M3, M4, M5, M6)) = ur(P) .
          eq ui(compl(P, A, S, M1, M2, M3, M4, M5, M6)) = ui(P) .
          eq us(compl(P, A, S, M1, M2, M3, M4, M5, M6)) = us(P) .
          ceq ss(compl(P, A, S, M1, M2, M3, M4, M5, M6), A2, B2, I2)
            = st(choice(M2), rand(M1), rand(M2), pms(A, src(M2), S))
            if c-compl(P, A, S, M1, M2, M3, M4, M5, M6)
               and A2 = A and B2 = src(M2) and I2 = sid(M2) .
          ceq ss(compl(P, A, S, M1, M2, M3, M4, M5, M6), A2, B2, I2)
            = ss(P, A2, B2, I2)
            if not (c-compl(P, A, S, M1, M2, M3, M4, M5, M6)
                    and A2 = A and B2 = src(M2) and I2 = sid(M2)) .

          -- chello2: client A asks to resume session I with B
          op c-chello2 : Protocol Prin Prin Secret Rand Sid -> Bool .
          eq c-chello2(P, A, B, S, R, I)
            = not (R \in ur(P)) and not (ss(P, A, B, I) = noSession)
              and spms(ss(P, A, B, I)) = pms(A, B, S) .
          ceq nw(chello2(P, A, B, S, R, I)) = (ch2(A, A, B, R, I) , nw(P))
            if c-chello2(P, A, B, S, R, I) .
          ceq ur(chello2(P, A, B, S, R, I)) = (R , ur(P))
            if c-chello2(P, A, B, S, R, I) .
          eq ui(chello2(P, A, B, S, R, I)) = ui(P) .
          eq us(chello2(P, A, B, S, R, I)) = us(P) .
          eq ss(chello2(P, A, B, S, R, I), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq chello2(P, A, B, S, R, I) = P if not c-chello2(P, A, B, S, R, I) .

          -- shello2: server B agrees to resume
          op c-shello2 : Protocol Prin Choice Rand Msg -> Bool .
          eq c-shello2(P, B, C, R, M1)
            = M1 \in nw(P) and ch2?(M1) and dst(M1) = B and not (R \in ur(P))
              and not (ss(P, B, src(M1), sid(M1)) = noSession)
              and C = schoice(ss(P, B, src(M1), sid(M1))) .
          ceq nw(shello2(P, B, C, R, M1))
            = (sh2(B, B, src(M1), R, sid(M1), C) , nw(P))
            if c-shello2(P, B, C, R, M1) .
          ceq ur(shello2(P, B, C, R, M1)) = (R , ur(P))
            if c-shello2(P, B, C, R, M1) .
          eq ui(shello2(P, B, C, R, M1)) = ui(P) .
          eq us(shello2(P, B, C, R, M1)) = us(P) .
          eq ss(shello2(P, B, C, R, M1), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq shello2(P, B, C, R, M1) = P if not c-shello2(P, B, C, R, M1) .
        }
        "#,
    )?;
    match variant {
        Variant::ServerFinished2First => install_standard_finish2(spec),
        Variant::ClientFinished2First => install_swapped_finish2(spec),
    }
}

/// Figure 2's order: sfin2 (server sends first), then cfin2, then compl2
/// (server receives ClientFinished2).
fn install_standard_finish2(spec: &mut Spec) -> Result<(), SpecError> {
    spec.load_module(
        r#"
        mod! PROTOCOL-FIN2 {
          pr(PROTOCOL)
          bop sfin2 : Protocol Prin Msg Msg -> Protocol .
          bop cfin2 : Protocol Prin Secret Msg Msg Msg -> Protocol .
          bop compl2 : Protocol Prin Msg Msg Msg Msg -> Protocol .

          vars A B A2 B2 : Prin . vars I2 : Sid . var S : Secret .
          vars M1 M2 M3 M4 : Msg . var P : Protocol .

          -- sfin2: server B sends ServerFinished2 for the resumed session;
          -- M1 = ch2, M2 = own sh2
          op c-sfin2 : Protocol Prin Msg Msg -> Bool .
          eq c-sfin2(P, B, M1, M2)
            = M1 \in nw(P) and ch2?(M1) and dst(M1) = B
              and M2 \in nw(P) and sh2?(M2) and crt(M2) = B and src(M2) = B
              and dst(M2) = src(M1) and sid(M2) = sid(M1)
              and not (ss(P, B, src(M1), sid(M1)) = noSession)
              and choice(M2) = schoice(ss(P, B, src(M1), sid(M1))) .
          ceq nw(sfin2(P, B, M1, M2))
            = (sf2(B, B, src(M1),
                   esfin2(key(B, spms(ss(P, B, src(M1), sid(M1))),
                              rand(M1), rand(M2)),
                          sfin2(src(M1), B, sid(M1), choice(M2),
                                rand(M1), rand(M2),
                                spms(ss(P, B, src(M1), sid(M1)))))) , nw(P))
            if c-sfin2(P, B, M1, M2) .
          eq ur(sfin2(P, B, M1, M2)) = ur(P) .
          eq ui(sfin2(P, B, M1, M2)) = ui(P) .
          eq us(sfin2(P, B, M1, M2)) = us(P) .
          eq ss(sfin2(P, B, M1, M2), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq sfin2(P, B, M1, M2) = P if not c-sfin2(P, B, M1, M2) .

          -- cfin2: client A validates ServerFinished2 M3 and replies;
          -- M1 = own ch2, M2 = sh2, M3 = sf2
          op c-cfin2 : Protocol Prin Secret Msg Msg Msg -> Bool .
          eq c-cfin2(P, A, S, M1, M2, M3)
            = M1 \in nw(P) and ch2?(M1) and crt(M1) = A and src(M1) = A
              and M2 \in nw(P) and sh2?(M2) and dst(M2) = A
              and src(M2) = dst(M1) and sid(M2) = sid(M1)
              and M3 \in nw(P) and sf2?(M3) and dst(M3) = A
              and src(M3) = src(M2)
              and spms(ss(P, A, src(M2), sid(M1))) = pms(A, src(M2), S)
              and esfin2(M3)
                  = esfin2(key(src(M2), pms(A, src(M2), S), rand(M1), rand(M2)),
                           sfin2(A, src(M2), sid(M1), choice(M2),
                                 rand(M1), rand(M2), pms(A, src(M2), S))) .
          ceq nw(cfin2(P, A, S, M1, M2, M3))
            = (cf2(A, A, src(M2),
                   ecfin2(key(A, pms(A, src(M2), S), rand(M1), rand(M2)),
                          cfin2(A, src(M2), sid(M1), choice(M2),
                                rand(M1), rand(M2), pms(A, src(M2), S)))) , nw(P))
            if c-cfin2(P, A, S, M1, M2, M3) .
          ceq nw(cfin2(P, A, S, M1, M2, M3)) = nw(P)
            if not c-cfin2(P, A, S, M1, M2, M3) .
          eq ur(cfin2(P, A, S, M1, M2, M3)) = ur(P) .
          eq ui(cfin2(P, A, S, M1, M2, M3)) = ui(P) .
          eq us(cfin2(P, A, S, M1, M2, M3)) = us(P) .
          ceq ss(cfin2(P, A, S, M1, M2, M3), A2, B2, I2)
            = st(choice(M2), rand(M1), rand(M2), pms(A, src(M2), S))
            if c-cfin2(P, A, S, M1, M2, M3)
               and A2 = A and B2 = src(M2) and I2 = sid(M1) .
          ceq ss(cfin2(P, A, S, M1, M2, M3), A2, B2, I2) = ss(P, A2, B2, I2)
            if not (c-cfin2(P, A, S, M1, M2, M3)
                    and A2 = A and B2 = src(M2) and I2 = sid(M1)) .

          -- compl2: server B validates ClientFinished2 M4 and renews the
          -- session; M1 = ch2, M2 = own sh2, M3 = own sf2, M4 = cf2
          op c-compl2 : Protocol Prin Msg Msg Msg Msg -> Bool .
          eq c-compl2(P, B, M1, M2, M3, M4)
            = c-sfin2(P, B, M1, M2)
              and M3 \in nw(P) and sf2?(M3) and crt(M3) = B and src(M3) = B
              and dst(M3) = src(M1)
              and M4 \in nw(P) and cf2?(M4) and dst(M4) = B
              and src(M4) = src(M1)
              and ecfin2(M4)
                  = ecfin2(key(src(M1), spms(ss(P, B, src(M1), sid(M1))),
                               rand(M1), rand(M2)),
                           cfin2(src(M1), B, sid(M1), choice(M2),
                                 rand(M1), rand(M2),
                                 spms(ss(P, B, src(M1), sid(M1))))) .
          eq nw(compl2(P, B, M1, M2, M3, M4)) = nw(P) .
          eq ur(compl2(P, B, M1, M2, M3, M4)) = ur(P) .
          eq ui(compl2(P, B, M1, M2, M3, M4)) = ui(P) .
          eq us(compl2(P, B, M1, M2, M3, M4)) = us(P) .
          ceq ss(compl2(P, B, M1, M2, M3, M4), A2, B2, I2)
            = st(choice(M2), rand(M1), rand(M2),
                 spms(ss(P, B, src(M1), sid(M1))))
            if c-compl2(P, B, M1, M2, M3, M4)
               and A2 = B and B2 = src(M1) and I2 = sid(M1) .
          ceq ss(compl2(P, B, M1, M2, M3, M4), A2, B2, I2) = ss(P, A2, B2, I2)
            if not (c-compl2(P, B, M1, M2, M3, M4)
                    and A2 = B and B2 = src(M1) and I2 = sid(M1)) .
        }
        "#,
    )
}

/// §5.3's variant: the client sends ClientFinished2 directly after
/// ServerHello2; the server replies with ServerFinished2.
fn install_swapped_finish2(spec: &mut Spec) -> Result<(), SpecError> {
    spec.load_module(
        r#"
        mod! PROTOCOL-FIN2V {
          pr(PROTOCOL)
          bop cfin2 : Protocol Prin Secret Msg Msg -> Protocol .
          bop sfin2 : Protocol Prin Msg Msg Msg -> Protocol .
          bop compl2 : Protocol Prin Secret Msg Msg Msg Msg -> Protocol .

          vars A B A2 B2 : Prin . vars I2 : Sid . var S : Secret .
          vars M1 M2 M3 M4 : Msg . var P : Protocol .

          -- cfin2 (variant): client A sends ClientFinished2 right after
          -- ServerHello2; M1 = own ch2, M2 = sh2
          op c-cfin2 : Protocol Prin Secret Msg Msg -> Bool .
          eq c-cfin2(P, A, S, M1, M2)
            = M1 \in nw(P) and ch2?(M1) and crt(M1) = A and src(M1) = A
              and M2 \in nw(P) and sh2?(M2) and dst(M2) = A
              and src(M2) = dst(M1) and sid(M2) = sid(M1)
              and spms(ss(P, A, src(M2), sid(M1))) = pms(A, src(M2), S) .
          ceq nw(cfin2(P, A, S, M1, M2))
            = (cf2(A, A, src(M2),
                   ecfin2(key(A, pms(A, src(M2), S), rand(M1), rand(M2)),
                          cfin2(A, src(M2), sid(M1), choice(M2),
                                rand(M1), rand(M2), pms(A, src(M2), S)))) , nw(P))
            if c-cfin2(P, A, S, M1, M2) .
          eq ur(cfin2(P, A, S, M1, M2)) = ur(P) .
          eq ui(cfin2(P, A, S, M1, M2)) = ui(P) .
          eq us(cfin2(P, A, S, M1, M2)) = us(P) .
          eq ss(cfin2(P, A, S, M1, M2), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq cfin2(P, A, S, M1, M2) = P if not c-cfin2(P, A, S, M1, M2) .

          -- sfin2 (variant): server B validates ClientFinished2 M3 and
          -- replies; M1 = ch2, M2 = own sh2, M3 = cf2
          op c-sfin2 : Protocol Prin Msg Msg Msg -> Bool .
          eq c-sfin2(P, B, M1, M2, M3)
            = M1 \in nw(P) and ch2?(M1) and dst(M1) = B
              and M2 \in nw(P) and sh2?(M2) and crt(M2) = B and src(M2) = B
              and dst(M2) = src(M1) and sid(M2) = sid(M1)
              and not (ss(P, B, src(M1), sid(M1)) = noSession)
              and choice(M2) = schoice(ss(P, B, src(M1), sid(M1)))
              and M3 \in nw(P) and cf2?(M3) and dst(M3) = B
              and src(M3) = src(M1)
              and ecfin2(M3)
                  = ecfin2(key(src(M1), spms(ss(P, B, src(M1), sid(M1))),
                               rand(M1), rand(M2)),
                           cfin2(src(M1), B, sid(M1), choice(M2),
                                 rand(M1), rand(M2),
                                 spms(ss(P, B, src(M1), sid(M1))))) .
          ceq nw(sfin2(P, B, M1, M2, M3))
            = (sf2(B, B, src(M1),
                   esfin2(key(B, spms(ss(P, B, src(M1), sid(M1))),
                              rand(M1), rand(M2)),
                          sfin2(src(M1), B, sid(M1), choice(M2),
                                rand(M1), rand(M2),
                                spms(ss(P, B, src(M1), sid(M1)))))) , nw(P))
            if c-sfin2(P, B, M1, M2, M3) .
          ceq nw(sfin2(P, B, M1, M2, M3)) = nw(P)
            if not c-sfin2(P, B, M1, M2, M3) .
          eq ur(sfin2(P, B, M1, M2, M3)) = ur(P) .
          eq ui(sfin2(P, B, M1, M2, M3)) = ui(P) .
          eq us(sfin2(P, B, M1, M2, M3)) = us(P) .
          ceq ss(sfin2(P, B, M1, M2, M3), A2, B2, I2)
            = st(choice(M2), rand(M1), rand(M2),
                 spms(ss(P, B, src(M1), sid(M1))))
            if c-sfin2(P, B, M1, M2, M3)
               and A2 = B and B2 = src(M1) and I2 = sid(M1) .
          ceq ss(sfin2(P, B, M1, M2, M3), A2, B2, I2) = ss(P, A2, B2, I2)
            if not (c-sfin2(P, B, M1, M2, M3)
                    and A2 = B and B2 = src(M1) and I2 = sid(M1)) .

          -- compl2 (variant): client A validates ServerFinished2 M4
          op c-compl2 : Protocol Prin Secret Msg Msg Msg Msg -> Bool .
          eq c-compl2(P, A, S, M1, M2, M3, M4)
            = c-cfin2(P, A, S, M1, M2)
              and M3 \in nw(P) and cf2?(M3) and crt(M3) = A and src(M3) = A
              and dst(M3) = src(M2)
              and M4 \in nw(P) and sf2?(M4) and dst(M4) = A
              and src(M4) = src(M2)
              and esfin2(M4)
                  = esfin2(key(src(M2), pms(A, src(M2), S), rand(M1), rand(M2)),
                           sfin2(A, src(M2), sid(M1), choice(M2),
                                 rand(M1), rand(M2), pms(A, src(M2), S))) .
          eq nw(compl2(P, A, S, M1, M2, M3, M4)) = nw(P) .
          eq ur(compl2(P, A, S, M1, M2, M3, M4)) = ur(P) .
          eq ui(compl2(P, A, S, M1, M2, M3, M4)) = ui(P) .
          eq us(compl2(P, A, S, M1, M2, M3, M4)) = us(P) .
          ceq ss(compl2(P, A, S, M1, M2, M3, M4), A2, B2, I2)
            = st(choice(M2), rand(M1), rand(M2), pms(A, src(M2), S))
            if c-compl2(P, A, S, M1, M2, M3, M4)
               and A2 = A and B2 = src(M2) and I2 = sid(M1) .
          ceq ss(compl2(P, A, S, M1, M2, M3, M4), A2, B2, I2) = ss(P, A2, B2, I2)
            if not (c-compl2(P, A, S, M1, M2, M3, M4)
                    and A2 = A and B2 = src(M2) and I2 = sid(M1)) .
        }
        "#,
    )
}
