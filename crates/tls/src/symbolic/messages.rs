//! The ten message kinds of §4.2 and their predicates/projections.
//!
//! Every message constructor takes three leading principals: the
//! **creator** (meta-information the intruder cannot forge), the
//! **seeming sender**, and the **receiver**, followed by the payload. The
//! kind predicates (`ch?`, `sf?`, …) and the projections (`crt`, `src`,
//! `dst`, `rand`, …) are generated programmatically — 10 predicates × 10
//! constructors plus per-kind payload projections.

use equitls_spec::prelude::*;

/// `(name, payload sorts)` for the ten message constructors, in Figure 2
/// order.
pub const MESSAGE_KINDS: [(&str, &[&str]); 10] = [
    ("ch", &["Rand", "ListOfChoices"]),
    ("sh", &["Rand", "Sid", "Choice"]),
    ("ct", &["Cert"]),
    ("kx", &["EncPms"]),
    ("cf", &["EncCFin"]),
    ("sf", &["EncSFin"]),
    ("ch2", &["Rand", "Sid"]),
    ("sh2", &["Rand", "Sid", "Choice"]),
    ("cf2", &["EncCFin2"]),
    ("sf2", &["EncSFin2"]),
];

/// Payload projections: `(projection name, message kind, payload position,
/// result sort)`. Positions are relative to the payload (after the three
/// principals).
const PROJECTIONS: [(&str, &str, usize, &str); 16] = [
    ("rand", "ch", 0, "Rand"),
    ("list", "ch", 1, "ListOfChoices"),
    ("rand", "sh", 0, "Rand"),
    ("sid", "sh", 1, "Sid"),
    ("choice", "sh", 2, "Choice"),
    ("cert", "ct", 0, "Cert"),
    ("epms", "kx", 0, "EncPms"),
    ("ecfin", "cf", 0, "EncCFin"),
    ("esfin", "sf", 0, "EncSFin"),
    ("rand", "ch2", 0, "Rand"),
    ("sid", "ch2", 1, "Sid"),
    ("rand", "sh2", 0, "Rand"),
    ("sid", "sh2", 1, "Sid"),
    ("choice", "sh2", 2, "Choice"),
    ("ecfin2", "cf2", 0, "EncCFin2"),
    ("esfin2", "sf2", 0, "EncSFin2"),
];

/// Declare the `Msg` sort, the ten constructors, the kind predicates, and
/// the projections, with their defining equations.
///
/// # Errors
///
/// Propagates builder errors.
pub fn install(spec: &mut Spec) -> Result<(), SpecError> {
    spec.begin_module("MESSAGE");
    spec.import("DATA");
    spec.visible_sort("Msg")?;

    // Constructors: crt × src × dst × payload…
    for (name, payload) in MESSAGE_KINDS {
        let mut args = vec!["Prin", "Prin", "Prin"];
        args.extend_from_slice(payload);
        spec.constructor(name, &args, "Msg")?;
    }

    // Kind predicates.
    for (name, _) in MESSAGE_KINDS {
        spec.defined_op(&format!("{name}?"), &["Msg"], "Bool")?;
    }

    // Principal projections.
    for proj in ["crt", "src", "dst"] {
        spec.defined_op(proj, &["Msg"], "Prin")?;
    }
    // Payload projections (declared once per (name, result) pair).
    let mut declared: Vec<(&str, &str)> = Vec::new();
    for (proj, _, _, result) in PROJECTIONS {
        if !declared.contains(&(proj, result)) {
            // `cert`/`epms`/… overload the DATA constructors by arg sort.
            spec.op(
                proj,
                &["Msg"],
                result,
                equitls_kernel::op::OpAttrs::defined(),
            )?;
            declared.push((proj, result));
        }
    }

    // A canonical pattern term per constructor: ctor(X1:Prin, …, Xi:Sorti).
    let alg = spec.alg().clone();
    let mut patterns: Vec<(
        &str,
        equitls_kernel::term::TermId,
        Vec<equitls_kernel::term::TermId>,
    )> = Vec::new();
    for (name, payload) in MESSAGE_KINDS {
        let mut sorts = vec!["Prin", "Prin", "Prin"];
        sorts.extend_from_slice(payload);
        let mut vars = Vec::with_capacity(sorts.len());
        for (i, sort) in sorts.iter().enumerate() {
            // Variable names are namespaced per constructor to keep sorts
            // consistent (e.g. chV0, chV1, …).
            let var_name = format!("{}V{}", name, i);
            vars.push(spec.var(&var_name, sort)?);
        }
        let pattern = spec.app(name, &vars)?;
        patterns.push((name, pattern, vars));
    }

    // Kind predicate equations: name?(pattern) = true/false.
    for (pred, _) in MESSAGE_KINDS {
        for (ctor, pattern, _) in &patterns {
            let lhs = spec.app(&format!("{pred}?"), &[*pattern])?;
            let rhs = alg.constant(spec.store_mut(), pred == *ctor);
            spec.eq(&format!("{pred}?-{ctor}"), lhs, rhs)?;
        }
    }

    // Principal projection equations on every constructor.
    for (i, proj) in ["crt", "src", "dst"].iter().enumerate() {
        for (ctor, pattern, vars) in &patterns {
            let lhs = spec.app(proj, &[*pattern])?;
            spec.eq(&format!("{proj}-{ctor}"), lhs, vars[i])?;
        }
    }

    // Payload projection equations on the applicable constructor only.
    for (proj, ctor, pos, _) in PROJECTIONS {
        let (_, pattern, vars) = patterns
            .iter()
            .find(|(name, _, _)| *name == ctor)
            .expect("constructor exists");
        let lhs = spec.app(proj, &[*pattern])?;
        spec.eq(&format!("{proj}-{ctor}"), lhs, vars[3 + pos])?;
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::data;

    fn spec_with_messages() -> Spec {
        let mut spec = Spec::new().unwrap();
        data::install(&mut spec).unwrap();
        install(&mut spec).unwrap();
        spec
    }

    #[test]
    fn kind_predicates_classify_all_ten_kinds() {
        let mut spec = spec_with_messages();
        let alg = spec.alg().clone();
        let prin = spec.sort_id("Prin").unwrap();
        let rand = spec.sort_id("Rand").unwrap();
        let sid = spec.sort_id("Sid").unwrap();
        let a = spec.store_mut().fresh_constant("a", prin);
        let b = spec.store_mut().fresh_constant("b", prin);
        let r = spec.store_mut().fresh_constant("r", rand);
        let i = spec.store_mut().fresh_constant("i", sid);
        let m = spec.app("ch2", &[a, a, b, r, i]).unwrap();
        let yes = spec.app("ch2?", &[m]).unwrap();
        let no = spec.app("kx?", &[m]).unwrap();
        let yes = spec.red(yes).unwrap();
        let no = spec.red(no).unwrap();
        assert_eq!(alg.as_constant(spec.store(), yes), Some(true));
        assert_eq!(alg.as_constant(spec.store(), no), Some(false));
    }

    #[test]
    fn principal_projections_extract_crt_src_dst() {
        let mut spec = spec_with_messages();
        let prin = spec.sort_id("Prin").unwrap();
        let rand = spec.sort_id("Rand").unwrap();
        let loc = spec.sort_id("ListOfChoices").unwrap();
        let intruder = spec.const_term("intruder").unwrap();
        let a = spec.store_mut().fresh_constant("a", prin);
        let b = spec.store_mut().fresh_constant("b", prin);
        let r = spec.store_mut().fresh_constant("r", rand);
        let l = spec.store_mut().fresh_constant("l", loc);
        // A faked ClientHello: created by the intruder, seemingly from a.
        let m = spec.app("ch", &[intruder, a, b, r, l]).unwrap();
        let crt = spec.app("crt", &[m]).unwrap();
        let src = spec.app("src", &[m]).unwrap();
        let dst = spec.app("dst", &[m]).unwrap();
        assert_eq!(spec.red(crt).unwrap(), intruder);
        assert_eq!(spec.red(src).unwrap(), a);
        assert_eq!(spec.red(dst).unwrap(), b);
    }

    #[test]
    fn payload_projections_extract_fields() {
        let mut spec = spec_with_messages();
        let prin = spec.sort_id("Prin").unwrap();
        let rand = spec.sort_id("Rand").unwrap();
        let sid = spec.sort_id("Sid").unwrap();
        let choice = spec.sort_id("Choice").unwrap();
        let b = spec.store_mut().fresh_constant("b", prin);
        let a = spec.store_mut().fresh_constant("a", prin);
        let r = spec.store_mut().fresh_constant("r", rand);
        let i = spec.store_mut().fresh_constant("i", sid);
        let c = spec.store_mut().fresh_constant("c", choice);
        let m = spec.app("sh", &[b, b, a, r, i, c]).unwrap();
        let rr = spec.app("rand", &[m]).unwrap();
        let ii = spec.app("sid", &[m]).unwrap();
        let cc = spec.app("choice", &[m]).unwrap();
        assert_eq!(spec.red(rr).unwrap(), r);
        assert_eq!(spec.red(ii).unwrap(), i);
        assert_eq!(spec.red(cc).unwrap(), c);
    }

    #[test]
    fn projections_do_not_fire_on_wrong_kinds() {
        let mut spec = spec_with_messages();
        let prin = spec.sort_id("Prin").unwrap();
        let cert_sort = spec.sort_id("Cert").unwrap();
        let b = spec.store_mut().fresh_constant("b", prin);
        let a = spec.store_mut().fresh_constant("a", prin);
        let ce = spec.store_mut().fresh_constant("ce", cert_sort);
        let m = spec.app("ct", &[b, b, a, ce]).unwrap();
        // `rand` of a Certificate message is undefined: stays stuck.
        let r = spec.app("rand", &[m]).unwrap();
        assert_eq!(spec.red(r).unwrap(), r);
    }

    #[test]
    fn message_equality_is_free() {
        let mut spec = spec_with_messages();
        let alg = spec.alg().clone();
        let prin = spec.sort_id("Prin").unwrap();
        let rand = spec.sort_id("Rand").unwrap();
        let loc = spec.sort_id("ListOfChoices").unwrap();
        let intruder = spec.const_term("intruder").unwrap();
        let a = spec.store_mut().fresh_constant("a", prin);
        let b = spec.store_mut().fresh_constant("b", prin);
        let r = spec.store_mut().fresh_constant("r", rand);
        let l = spec.store_mut().fresh_constant("l", loc);
        let faked = spec.app("ch", &[intruder, a, b, r, l]).unwrap();
        let genuine = spec.app("ch", &[a, a, b, r, l]).unwrap();
        let eq = spec.eq_term(faked, genuine).unwrap();
        let n = spec.red(eq).unwrap();
        // Decided iff `a = intruder` — exactly the creator distinction.
        let expected = spec.eq_term(a, intruder).unwrap();
        let expected = spec.red(expected).unwrap();
        assert_eq!(n, expected);
        let _ = alg;
    }
}
