//! The most general intruder's 15 faking transitions (§4.5).
//!
//! The intruder (Dolev–Yao) eavesdrops everything — that part is the
//! gleaning collections of [`crate::symbolic::network`] — and fakes
//! messages from what it gleaned. Clear-text quantities (randoms, session
//! IDs, cipher suites, lists, public keys) are guessable, so the five
//! clear-payload fakes (`fakeCh`, `fakeSh`, `fakeCt`, `fakeCh2`,
//! `fakeSh2`) need at most a gleaned CA signature. The five encrypted
//! payloads each get **two** fakes: replay a gleaned ciphertext, or build
//! a fresh one from a known pre-master secret (symmetric keys are hashes
//! of public data and the PMS, so knowing the PMS is knowing the key —
//! §4.3's argument for why the intruder need not glean keys).
//!
//! Every fake sets the creator field to `intruder`; that field is
//! meta-information the intruder cannot forge (§4.2).

use equitls_spec::prelude::*;

/// Names of the intruder transitions, in declaration order.
pub const FAKE_ACTIONS: [&str; 15] = [
    "fakeCh",
    "fakeSh",
    "fakeCt",
    "fakeKx1",
    "fakeKx2",
    "fakeCfin1",
    "fakeCfin2",
    "fakeSfin1",
    "fakeSfin2",
    "fakeCh2",
    "fakeSh2",
    "fakeCfin21",
    "fakeCfin22",
    "fakeSfin21",
    "fakeSfin22",
];

/// Declare the intruder transitions.
///
/// # Errors
///
/// Propagates builder errors.
pub fn install(spec: &mut Spec) -> Result<(), SpecError> {
    spec.load_module(
        r#"
        mod! INTRUDER {
          pr(PROTOCOL)
          bop fakeCh : Protocol Prin Prin Rand ListOfChoices -> Protocol .
          bop fakeSh : Protocol Prin Prin Rand Sid Choice -> Protocol .
          bop fakeCt : Protocol Prin Prin Prin PubKey Sig -> Protocol .
          bop fakeKx1 : Protocol Prin Prin EncPms -> Protocol .
          bop fakeKx2 : Protocol Prin Prin Prin Pms -> Protocol .
          bop fakeCfin1 : Protocol Prin Prin EncCFin -> Protocol .
          bop fakeCfin2 : Protocol Prin Prin Sid ListOfChoices Choice Rand Rand Pms -> Protocol .
          bop fakeSfin1 : Protocol Prin Prin EncSFin -> Protocol .
          bop fakeSfin2 : Protocol Prin Prin Sid ListOfChoices Choice Rand Rand Pms -> Protocol .
          bop fakeCh2 : Protocol Prin Prin Rand Sid -> Protocol .
          bop fakeSh2 : Protocol Prin Prin Rand Sid Choice -> Protocol .
          bop fakeCfin21 : Protocol Prin Prin EncCFin2 -> Protocol .
          bop fakeCfin22 : Protocol Prin Prin Sid Choice Rand Rand Pms -> Protocol .
          bop fakeSfin21 : Protocol Prin Prin EncSFin2 -> Protocol .
          bop fakeSfin22 : Protocol Prin Prin Sid Choice Rand Rand Pms -> Protocol .

          vars A B X A2 B2 : Prin . vars R R1 R2 : Rand . vars I I2 : Sid .
          var L : ListOfChoices . var C : Choice . var PM : Pms .
          var PK : PubKey . var G : Sig .
          var EP : EncPms . var EC : EncCFin . var ES : EncSFin .
          var EC2 : EncCFin2 . var ES2 : EncSFin2 .
          var P : Protocol .

          -- clear-text fakes: everything guessable, no condition
          eq nw(fakeCh(P, A, B, R, L)) = (ch(intruder, A, B, R, L) , nw(P)) .
          eq ur(fakeCh(P, A, B, R, L)) = ur(P) .
          eq ui(fakeCh(P, A, B, R, L)) = ui(P) .
          eq us(fakeCh(P, A, B, R, L)) = us(P) .
          eq ss(fakeCh(P, A, B, R, L), A2, B2, I2) = ss(P, A2, B2, I2) .

          eq nw(fakeSh(P, B, A, R, I, C)) = (sh(intruder, B, A, R, I, C) , nw(P)) .
          eq ur(fakeSh(P, B, A, R, I, C)) = ur(P) .
          eq ui(fakeSh(P, B, A, R, I, C)) = ui(P) .
          eq us(fakeSh(P, B, A, R, I, C)) = us(P) .
          eq ss(fakeSh(P, B, A, R, I, C), A2, B2, I2) = ss(P, A2, B2, I2) .

          -- certificate fake: any principal/key, but the signature must be
          -- gleaned (or the intruder's own, via csig's base case)
          op c-fakeCt : Protocol Prin Prin Prin PubKey Sig -> Bool .
          eq c-fakeCt(P, B, A, X, PK, G) = G \in csig(nw(P)) .
          ceq nw(fakeCt(P, B, A, X, PK, G))
            = (ct(intruder, B, A, cert(X, PK, G)) , nw(P))
            if c-fakeCt(P, B, A, X, PK, G) .
          eq ur(fakeCt(P, B, A, X, PK, G)) = ur(P) .
          eq ui(fakeCt(P, B, A, X, PK, G)) = ui(P) .
          eq us(fakeCt(P, B, A, X, PK, G)) = us(P) .
          eq ss(fakeCt(P, B, A, X, PK, G), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeCt(P, B, A, X, PK, G) = P if not c-fakeCt(P, B, A, X, PK, G) .

          -- key exchange: replay a gleaned ciphertext…
          op c-fakeKx1 : Protocol Prin Prin EncPms -> Bool .
          eq c-fakeKx1(P, A, B, EP) = EP \in cepms(nw(P)) .
          ceq nw(fakeKx1(P, A, B, EP)) = (kx(intruder, A, B, EP) , nw(P))
            if c-fakeKx1(P, A, B, EP) .
          eq ur(fakeKx1(P, A, B, EP)) = ur(P) .
          eq ui(fakeKx1(P, A, B, EP)) = ui(P) .
          eq us(fakeKx1(P, A, B, EP)) = us(P) .
          eq ss(fakeKx1(P, A, B, EP), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeKx1(P, A, B, EP) = P if not c-fakeKx1(P, A, B, EP) .

          -- …or encrypt a known pre-master secret under any public key
          op c-fakeKx2 : Protocol Prin Prin Prin Pms -> Bool .
          eq c-fakeKx2(P, A, B, X, PM) = PM \in cpms(nw(P)) .
          ceq nw(fakeKx2(P, A, B, X, PM))
            = (kx(intruder, A, B, epms(k(X), PM)) , nw(P))
            if c-fakeKx2(P, A, B, X, PM) .
          eq ur(fakeKx2(P, A, B, X, PM)) = ur(P) .
          eq ui(fakeKx2(P, A, B, X, PM)) = ui(P) .
          eq us(fakeKx2(P, A, B, X, PM)) = us(P) .
          eq ss(fakeKx2(P, A, B, X, PM), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeKx2(P, A, B, X, PM) = P if not c-fakeKx2(P, A, B, X, PM) .

          -- client Finished: replay…
          op c-fakeCfin1 : Protocol Prin Prin EncCFin -> Bool .
          eq c-fakeCfin1(P, A, B, EC) = EC \in cecfin(nw(P)) .
          ceq nw(fakeCfin1(P, A, B, EC)) = (cf(intruder, A, B, EC) , nw(P))
            if c-fakeCfin1(P, A, B, EC) .
          eq ur(fakeCfin1(P, A, B, EC)) = ur(P) .
          eq ui(fakeCfin1(P, A, B, EC)) = ui(P) .
          eq us(fakeCfin1(P, A, B, EC)) = us(P) .
          eq ss(fakeCfin1(P, A, B, EC), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeCfin1(P, A, B, EC) = P if not c-fakeCfin1(P, A, B, EC) .

          -- …or construct from a known pre-master secret
          op c-fakeCfin2 : Protocol Prin Prin Sid ListOfChoices Choice Rand Rand Pms -> Bool .
          eq c-fakeCfin2(P, A, B, I, L, C, R1, R2, PM) = PM \in cpms(nw(P)) .
          ceq nw(fakeCfin2(P, A, B, I, L, C, R1, R2, PM))
            = (cf(intruder, A, B,
                  ecfin(key(A, PM, R1, R2),
                        cfin(A, B, I, L, C, R1, R2, PM))) , nw(P))
            if c-fakeCfin2(P, A, B, I, L, C, R1, R2, PM) .
          eq ur(fakeCfin2(P, A, B, I, L, C, R1, R2, PM)) = ur(P) .
          eq ui(fakeCfin2(P, A, B, I, L, C, R1, R2, PM)) = ui(P) .
          eq us(fakeCfin2(P, A, B, I, L, C, R1, R2, PM)) = us(P) .
          eq ss(fakeCfin2(P, A, B, I, L, C, R1, R2, PM), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeCfin2(P, A, B, I, L, C, R1, R2, PM) = P
            if not c-fakeCfin2(P, A, B, I, L, C, R1, R2, PM) .

          -- server Finished: replay… (the paper's fakeSfin1)
          op c-fakeSfin1 : Protocol Prin Prin EncSFin -> Bool .
          eq c-fakeSfin1(P, B, A, ES) = ES \in cesfin(nw(P)) .
          ceq nw(fakeSfin1(P, B, A, ES)) = (sf(intruder, B, A, ES) , nw(P))
            if c-fakeSfin1(P, B, A, ES) .
          eq ur(fakeSfin1(P, B, A, ES)) = ur(P) .
          eq ui(fakeSfin1(P, B, A, ES)) = ui(P) .
          eq us(fakeSfin1(P, B, A, ES)) = us(P) .
          eq ss(fakeSfin1(P, B, A, ES), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeSfin1(P, B, A, ES) = P if not c-fakeSfin1(P, B, A, ES) .

          -- …or construct (the paper's fakeSfin2, §4.5)
          op c-fakeSfin2 : Protocol Prin Prin Sid ListOfChoices Choice Rand Rand Pms -> Bool .
          eq c-fakeSfin2(P, B, A, I, L, C, R1, R2, PM) = PM \in cpms(nw(P)) .
          ceq nw(fakeSfin2(P, B, A, I, L, C, R1, R2, PM))
            = (sf(intruder, B, A,
                  esfin(key(B, PM, R1, R2),
                        sfin(A, B, I, L, C, R1, R2, PM))) , nw(P))
            if c-fakeSfin2(P, B, A, I, L, C, R1, R2, PM) .
          eq ur(fakeSfin2(P, B, A, I, L, C, R1, R2, PM)) = ur(P) .
          eq ui(fakeSfin2(P, B, A, I, L, C, R1, R2, PM)) = ui(P) .
          eq us(fakeSfin2(P, B, A, I, L, C, R1, R2, PM)) = us(P) .
          eq ss(fakeSfin2(P, B, A, I, L, C, R1, R2, PM), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeSfin2(P, B, A, I, L, C, R1, R2, PM) = P
            if not c-fakeSfin2(P, B, A, I, L, C, R1, R2, PM) .

          -- abbreviated-handshake clear-text fakes
          eq nw(fakeCh2(P, A, B, R, I)) = (ch2(intruder, A, B, R, I) , nw(P)) .
          eq ur(fakeCh2(P, A, B, R, I)) = ur(P) .
          eq ui(fakeCh2(P, A, B, R, I)) = ui(P) .
          eq us(fakeCh2(P, A, B, R, I)) = us(P) .
          eq ss(fakeCh2(P, A, B, R, I), A2, B2, I2) = ss(P, A2, B2, I2) .

          eq nw(fakeSh2(P, B, A, R, I, C)) = (sh2(intruder, B, A, R, I, C) , nw(P)) .
          eq ur(fakeSh2(P, B, A, R, I, C)) = ur(P) .
          eq ui(fakeSh2(P, B, A, R, I, C)) = ui(P) .
          eq us(fakeSh2(P, B, A, R, I, C)) = us(P) .
          eq ss(fakeSh2(P, B, A, R, I, C), A2, B2, I2) = ss(P, A2, B2, I2) .

          -- abbreviated-handshake Finished fakes (replay / construct)
          op c-fakeCfin21 : Protocol Prin Prin EncCFin2 -> Bool .
          eq c-fakeCfin21(P, A, B, EC2) = EC2 \in cecfin2(nw(P)) .
          ceq nw(fakeCfin21(P, A, B, EC2)) = (cf2(intruder, A, B, EC2) , nw(P))
            if c-fakeCfin21(P, A, B, EC2) .
          eq ur(fakeCfin21(P, A, B, EC2)) = ur(P) .
          eq ui(fakeCfin21(P, A, B, EC2)) = ui(P) .
          eq us(fakeCfin21(P, A, B, EC2)) = us(P) .
          eq ss(fakeCfin21(P, A, B, EC2), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeCfin21(P, A, B, EC2) = P if not c-fakeCfin21(P, A, B, EC2) .

          op c-fakeCfin22 : Protocol Prin Prin Sid Choice Rand Rand Pms -> Bool .
          eq c-fakeCfin22(P, A, B, I, C, R1, R2, PM) = PM \in cpms(nw(P)) .
          ceq nw(fakeCfin22(P, A, B, I, C, R1, R2, PM))
            = (cf2(intruder, A, B,
                   ecfin2(key(A, PM, R1, R2),
                          cfin2(A, B, I, C, R1, R2, PM))) , nw(P))
            if c-fakeCfin22(P, A, B, I, C, R1, R2, PM) .
          eq ur(fakeCfin22(P, A, B, I, C, R1, R2, PM)) = ur(P) .
          eq ui(fakeCfin22(P, A, B, I, C, R1, R2, PM)) = ui(P) .
          eq us(fakeCfin22(P, A, B, I, C, R1, R2, PM)) = us(P) .
          eq ss(fakeCfin22(P, A, B, I, C, R1, R2, PM), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeCfin22(P, A, B, I, C, R1, R2, PM) = P
            if not c-fakeCfin22(P, A, B, I, C, R1, R2, PM) .

          op c-fakeSfin21 : Protocol Prin Prin EncSFin2 -> Bool .
          eq c-fakeSfin21(P, B, A, ES2) = ES2 \in cesfin2(nw(P)) .
          ceq nw(fakeSfin21(P, B, A, ES2)) = (sf2(intruder, B, A, ES2) , nw(P))
            if c-fakeSfin21(P, B, A, ES2) .
          eq ur(fakeSfin21(P, B, A, ES2)) = ur(P) .
          eq ui(fakeSfin21(P, B, A, ES2)) = ui(P) .
          eq us(fakeSfin21(P, B, A, ES2)) = us(P) .
          eq ss(fakeSfin21(P, B, A, ES2), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeSfin21(P, B, A, ES2) = P if not c-fakeSfin21(P, B, A, ES2) .

          op c-fakeSfin22 : Protocol Prin Prin Sid Choice Rand Rand Pms -> Bool .
          eq c-fakeSfin22(P, B, A, I, C, R1, R2, PM) = PM \in cpms(nw(P)) .
          ceq nw(fakeSfin22(P, B, A, I, C, R1, R2, PM))
            = (sf2(intruder, B, A,
                   esfin2(key(B, PM, R1, R2),
                          sfin2(A, B, I, C, R1, R2, PM))) , nw(P))
            if c-fakeSfin22(P, B, A, I, C, R1, R2, PM) .
          eq ur(fakeSfin22(P, B, A, I, C, R1, R2, PM)) = ur(P) .
          eq ui(fakeSfin22(P, B, A, I, C, R1, R2, PM)) = ui(P) .
          eq us(fakeSfin22(P, B, A, I, C, R1, R2, PM)) = us(P) .
          eq ss(fakeSfin22(P, B, A, I, C, R1, R2, PM), A2, B2, I2) = ss(P, A2, B2, I2) .
          ceq fakeSfin22(P, B, A, I, C, R1, R2, PM) = P
            if not c-fakeSfin22(P, B, A, I, C, R1, R2, PM) .
        }
        "#,
    )
}
