//! The verification campaign: proving the eighteen properties.
//!
//! This module packages the prover configuration that makes the paper's
//! proofs go through mechanically:
//!
//! * the **witness map** (kind predicate → message constructor) enabling
//!   constructor-completeness reasoning on arbitrary `Msg` constants;
//! * the **lemma hints** per property, mirroring the paper's
//!   "strengthen the induction hypothesis with inv1" choices (§5.2);
//! * which properties are proved **inductively** and which by **case
//!   analysis** from others (§5.1 says the fourth and fifth, among
//!   others, are case-analysis consequences).

use crate::symbolic::TlsModel;
use equitls_core::prelude::*;
use equitls_core::CoreError;
use equitls_obs::sink::Obs;
use equitls_rewrite::budget::{Budget, FaultPlan};
use equitls_rewrite::shared::SharedNfCache;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Robustness and execution options for a verification run.
///
/// The [`Budget`] is shared by every obligation the campaign spawns:
/// when the deadline passes, the heap-estimate ceiling trips, or the
/// cancel token fires, in-flight obligations stop at the next rewrite
/// stride and unstarted ones are skipped — all reported as *open* with a
/// `(budget: …)` residual, never as a dead process.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Shared deadline / memory / cancellation budget.
    pub budget: Budget,
    /// Rewriting fuel per reduction (`None` = prover default).
    pub fuel: Option<u64>,
    /// Deterministic fault injection for robustness tests.
    pub fault_plan: Option<FaultPlan>,
    /// Emit per-rule match/fire/time profiles through the obs handle.
    pub profile_rules: bool,
    /// Worker threads per property (`0` = available parallelism).
    pub jobs: usize,
    /// Obligation-ledger snapshot path (`None` = no checkpointing). One
    /// file serves the whole campaign: entries are keyed by
    /// `(invariant, obligation)`.
    pub checkpoint_path: Option<PathBuf>,
    /// Minimum seconds between ledger writes (`0` = every obligation).
    pub checkpoint_every_secs: u64,
    /// Resume from the ledger: recorded `Proved` obligations are spliced
    /// into the report without re-running. Requires a valid snapshot at
    /// `checkpoint_path` (typed `CoreError::Persist` otherwise).
    pub resume: bool,
    /// Share normal forms across this property's obligations through a
    /// fingerprint-keyed concurrent cache. Off by default: hits replay
    /// cached rewrite sequences, so `rewrites` metrics (never verdicts,
    /// counts, or scores) may differ from the cold run.
    pub shared_nf_cache: bool,
    /// Resident cache handle for `shared_nf_cache` (see
    /// [`ProverConfig::shared_nf_handle`]): a warm daemon passes the
    /// cache it keeps alive across requests; one-shot CLI runs leave
    /// this `None` and get a fresh per-property cache. Must be paired
    /// with the spec it was warmed on (standard and variant models each
    /// own one).
    pub shared_nf_handle: Option<Arc<SharedNfCache>>,
    /// Bypass the discrimination-tree rule index and match candidate
    /// rules by scanning `rules_for_op` lists, as the engine did before
    /// indexing landed. Diagnostic knob: results are bit-identical
    /// either way.
    pub linear_scan: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            budget: Budget::unlimited(),
            fuel: None,
            fault_plan: None,
            profile_rules: false,
            jobs: 1,
            checkpoint_path: None,
            checkpoint_every_secs: 0,
            resume: false,
            shared_nf_cache: false,
            shared_nf_handle: None,
            linear_scan: false,
        }
    }
}

/// How a property is established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofMethod {
    /// Simultaneous induction over all 27 transitions.
    Induction,
    /// Propositional/equational consequence of other properties.
    CaseAnalysis,
}

/// The proof plan for one property.
#[derive(Debug, Clone)]
pub struct ProofPlan {
    /// Property name (from [`crate::symbolic::properties::PROPERTIES`]).
    pub name: &'static str,
    /// Induction or case analysis.
    pub method: ProofMethod,
    /// Lemmas used to strengthen hypotheses.
    pub lemmas: &'static [&'static str],
}

/// The campaign order: lemmas first, then the five main properties.
///
/// Order matters only for readability — simultaneous induction justifies
/// using any property as a lemma for any other.
pub const PLANS: [ProofPlan; 18] = [
    ProofPlan {
        name: "lem-src-honest",
        method: ProofMethod::Induction,
        lemmas: &[],
    },
    ProofPlan {
        name: "lem-cepms-cpms",
        method: ProofMethod::Induction,
        lemmas: &[],
    },
    ProofPlan {
        name: "lem-kx-shape",
        method: ProofMethod::Induction,
        lemmas: &[],
    },
    ProofPlan {
        name: "lem-cf-shape",
        method: ProofMethod::Induction,
        lemmas: &[],
    },
    ProofPlan {
        name: "lem-sf-shape",
        method: ProofMethod::Induction,
        lemmas: &[],
    },
    ProofPlan {
        name: "lem-secret-us",
        method: ProofMethod::Induction,
        lemmas: &[],
    },
    ProofPlan {
        name: "lem-rand-ur",
        method: ProofMethod::Induction,
        lemmas: &[],
    },
    ProofPlan {
        name: "inv1",
        method: ProofMethod::Induction,
        lemmas: &["lem-cepms-cpms"],
    },
    ProofPlan {
        name: "lem-esfin-origin",
        method: ProofMethod::Induction,
        lemmas: &["inv1"],
    },
    ProofPlan {
        name: "lem-esfin2-origin",
        method: ProofMethod::Induction,
        lemmas: &["inv1"],
    },
    ProofPlan {
        name: "lem-ecfin-origin",
        method: ProofMethod::Induction,
        lemmas: &["inv1"],
    },
    ProofPlan {
        name: "lem-ecfin2-origin",
        method: ProofMethod::Induction,
        lemmas: &["inv1"],
    },
    ProofPlan {
        name: "lem-sf-session",
        method: ProofMethod::Induction,
        lemmas: &[],
    },
    ProofPlan {
        name: "lem-sf2-session",
        method: ProofMethod::Induction,
        lemmas: &[],
    },
    ProofPlan {
        name: "inv2",
        method: ProofMethod::Induction,
        // §5.2: the fifth fakeSfin2 sub-case needs inv1 to strengthen the
        // induction hypothesis; replays need the origination lemma.
        lemmas: &["lem-esfin-origin", "inv1"],
    },
    ProofPlan {
        name: "inv3",
        method: ProofMethod::Induction,
        lemmas: &["lem-esfin2-origin", "inv1"],
    },
    ProofPlan {
        name: "inv4",
        method: ProofMethod::CaseAnalysis,
        lemmas: &["inv2", "lem-sf-session", "lem-src-honest"],
    },
    ProofPlan {
        name: "inv5",
        method: ProofMethod::CaseAnalysis,
        lemmas: &["inv3", "lem-sf2-session", "lem-src-honest"],
    },
];

/// Build the witness map (kind predicate → constructor) for the model.
pub fn witness_map(
    model: &TlsModel,
) -> HashMap<equitls_kernel::op::OpId, equitls_kernel::op::OpId> {
    let sig = model.spec.store().signature();
    let msg_sort = sig.sort_by_name("Msg").expect("Msg sort");
    let mut map = HashMap::new();
    for (name, _) in crate::symbolic::messages::MESSAGE_KINDS {
        let pred = sig
            .resolve_op(&format!("{name}?"), &[msg_sort])
            .expect("kind predicate");
        let ctor = sig
            .ops_by_name(name)
            .iter()
            .copied()
            .find(|&id| sig.op(id).result == msg_sort)
            .expect("message constructor");
        map.insert(pred, ctor);
    }
    map
}

/// The prover configuration used by the campaign.
pub fn prover_config(model: &TlsModel) -> ProverConfig {
    ProverConfig {
        witnesses: witness_map(model),
        ..ProverConfig::default()
    }
}

/// Find the plan for `name`.
pub fn plan(name: &str) -> Option<&'static ProofPlan> {
    PLANS.iter().find(|p| p.name == name)
}

/// Prove one property on the given model.
///
/// # Errors
///
/// Unknown property, or an engine failure.
pub fn verify_property(model: &mut TlsModel, name: &str) -> Result<ProofReport, CoreError> {
    verify_property_with_jobs(model, name, &Obs::noop(), false, 1)
}

/// [`verify_property`] on `jobs` worker threads (`0` = available
/// parallelism). The report is identical for every `jobs` value: each
/// proof obligation runs on its own clone of the model's spec, so term
/// arenas never cross threads (see `equitls_core::prover::ProverConfig`).
///
/// # Errors
///
/// Unknown property, or an engine failure.
pub fn verify_property_jobs(
    model: &mut TlsModel,
    name: &str,
    jobs: usize,
) -> Result<ProofReport, CoreError> {
    verify_property_with_jobs(model, name, &Obs::noop(), false, jobs)
}

/// [`verify_property`] with an observability handle: a span per proof
/// obligation, rewrite/cache counters, and (when `profile_rules` is on)
/// per-rule match/fire/time profiles emitted through `obs`.
///
/// # Errors
///
/// Unknown property, or an engine failure.
pub fn verify_property_with(
    model: &mut TlsModel,
    name: &str,
    obs: &Obs,
    profile_rules: bool,
) -> Result<ProofReport, CoreError> {
    verify_property_with_jobs(model, name, obs, profile_rules, 1)
}

/// [`verify_property_with`] on `jobs` worker threads. Worker obligations
/// share the one `obs` handle (sinks are internally synchronized), so a
/// trace interleaves obligation spans when `jobs > 1`.
///
/// # Errors
///
/// Unknown property, or an engine failure.
pub fn verify_property_with_jobs(
    model: &mut TlsModel,
    name: &str,
    obs: &Obs,
    profile_rules: bool,
    jobs: usize,
) -> Result<ProofReport, CoreError> {
    let opts = VerifyOptions {
        profile_rules,
        jobs,
        ..VerifyOptions::default()
    };
    verify_property_opts(model, name, &opts, obs)
}

/// Prove one property under a [`VerifyOptions`] budget — the funnel every
/// other `verify_property*` entry point goes through.
///
/// # Errors
///
/// Unknown property, or an engine failure. Budget trips are *not*
/// errors: the affected obligations come back open in the report.
pub fn verify_property_opts(
    model: &mut TlsModel,
    name: &str,
    opts: &VerifyOptions,
    obs: &Obs,
) -> Result<ProofReport, CoreError> {
    let plan = plan(name).ok_or_else(|| CoreError::UnknownInvariant(name.to_string()))?;
    let defaults = prover_config(model);
    let config = ProverConfig {
        profile_rules: opts.profile_rules,
        jobs: opts.jobs,
        fuel: opts.fuel.unwrap_or(defaults.fuel),
        budget: opts.budget.clone(),
        fault_plan: opts.fault_plan.clone(),
        checkpoint_path: opts.checkpoint_path.clone(),
        checkpoint_every_secs: opts.checkpoint_every_secs,
        resume: opts.resume,
        shared_nf_cache: opts.shared_nf_cache,
        shared_nf_handle: opts.shared_nf_handle.clone(),
        linear_scan: opts.linear_scan,
        ..defaults
    };
    let mut prover = Prover::new(&mut model.spec, &model.ots, &model.invariants)
        .with_config(config)
        .with_obs(obs.clone());
    match plan.method {
        ProofMethod::Induction => {
            let mut hints = Hints::new();
            for lemma in plan.lemmas {
                hints = hints.lemma(plan.name, lemma);
            }
            prover.prove_inductive(plan.name, &hints)
        }
        ProofMethod::CaseAnalysis => prover.prove_by_cases(plan.name, plan.lemmas),
    }
}

/// Prove every property, in campaign order.
///
/// # Errors
///
/// First engine failure, if any (open cases are *not* errors — they are
/// reported in the returned reports).
pub fn verify_all(model: &mut TlsModel) -> Result<Vec<ProofReport>, CoreError> {
    verify_all_with_jobs(model, &Obs::noop(), false, 1)
}

/// [`verify_all`] on `jobs` worker threads (`0` = available parallelism).
/// Parallelism applies within each property (its obligations fan out);
/// properties still complete in campaign order.
///
/// # Errors
///
/// First engine failure, if any.
pub fn verify_all_jobs(model: &mut TlsModel, jobs: usize) -> Result<Vec<ProofReport>, CoreError> {
    verify_all_with_jobs(model, &Obs::noop(), false, jobs)
}

/// [`verify_all`] with an observability handle (see
/// [`verify_property_with`]).
///
/// # Errors
///
/// First engine failure, if any.
pub fn verify_all_with(
    model: &mut TlsModel,
    obs: &Obs,
    profile_rules: bool,
) -> Result<Vec<ProofReport>, CoreError> {
    verify_all_with_jobs(model, obs, profile_rules, 1)
}

/// [`verify_all_with`] on `jobs` worker threads.
///
/// # Errors
///
/// First engine failure, if any.
pub fn verify_all_with_jobs(
    model: &mut TlsModel,
    obs: &Obs,
    profile_rules: bool,
    jobs: usize,
) -> Result<Vec<ProofReport>, CoreError> {
    let opts = VerifyOptions {
        profile_rules,
        jobs,
        ..VerifyOptions::default()
    };
    verify_all_opts(model, &opts, obs)
}

/// [`verify_all`] under a [`VerifyOptions`] budget. The budget spans the
/// *whole campaign*: once it trips, every remaining obligation of every
/// remaining property is skipped (reported open with a `(budget: …)`
/// residual), so a deadline bounds the full run, not each property.
///
/// # Errors
///
/// First engine failure, if any.
pub fn verify_all_opts(
    model: &mut TlsModel,
    opts: &VerifyOptions,
    obs: &Obs,
) -> Result<Vec<ProofReport>, CoreError> {
    PLANS
        .iter()
        .map(|plan| verify_property_opts(model, plan.name, opts, obs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_cover_all_eighteen_properties() {
        let names: Vec<&str> = PLANS.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 18);
        for (name, _, _) in crate::symbolic::properties::PROPERTIES {
            assert!(names.contains(&name), "no plan for {name}");
        }
    }

    #[test]
    fn witness_map_covers_all_ten_kinds() {
        let model = TlsModel::standard().unwrap();
        let map = witness_map(&model);
        assert_eq!(map.len(), 10);
    }

    #[test]
    fn lemma_references_resolve() {
        let model = TlsModel::standard().unwrap();
        for plan in &PLANS {
            for lemma in plan.lemmas {
                assert!(
                    model.invariants.get(lemma).is_some(),
                    "plan {} references unknown lemma {lemma}",
                    plan.name
                );
            }
        }
    }
}
