//! Concrete protocol state: the observable values of §4.4 as Rust data.

use crate::concrete::data::*;
use crate::concrete::msg::Msg;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A protocol state: the network plus each principal's bookkeeping.
///
/// Messages are never removed (§4.3: the intruder can replay anything), so
/// the network is a grow-only set; set semantics suffices because replays
/// are represented by the message's continued presence.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State {
    /// The network bag.
    pub network: BTreeSet<Msg>,
    /// Established sessions: `(owner, peer, sid) → session`.
    pub sessions: BTreeMap<(Prin, Prin, Sid), Session>,
    /// Used random numbers (`ur`).
    pub used_rands: BTreeSet<Rand>,
    /// Used session ids (`ui`).
    pub used_sids: BTreeSet<Sid>,
    /// Used secrets (`us`).
    pub used_secrets: BTreeSet<Secret>,
}

impl State {
    /// The initial state: nothing sent, nothing used, no sessions.
    pub fn new() -> Self {
        State::default()
    }

    /// Send a message (grow-only).
    pub fn send(&self, msg: Msg) -> State {
        let mut next = self.clone();
        next.network.insert(msg);
        next
    }

    /// The session `owner` has recorded with `peer` under `sid`.
    pub fn session(&self, owner: Prin, peer: Prin, sid: Sid) -> Option<Session> {
        self.sessions.get(&(owner, peer, sid)).copied()
    }

    /// Messages of the network in insertion-independent (ordered) form.
    pub fn messages(&self) -> impl Iterator<Item = &Msg> {
        self.network.iter()
    }

    /// Number of messages in the network.
    pub fn message_count(&self) -> usize {
        self.network.len()
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "network ({} messages):", self.network.len())?;
        for m in &self.network {
            writeln!(f, "  {m}")?;
        }
        if !self.sessions.is_empty() {
            writeln!(f, "sessions:")?;
            for ((owner, peer, sid), s) in &self.sessions {
                writeln!(
                    f,
                    "  {owner} with {peer} [{sid}]: choice={} r1={} r2={} pms={}",
                    s.choice, s.r1, s.r2, s.pms
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::msg::Body;

    #[test]
    fn initial_state_is_empty() {
        let s = State::new();
        assert_eq!(s.message_count(), 0);
        assert!(s.sessions.is_empty());
    }

    #[test]
    fn send_is_grow_only_and_idempotent() {
        let s = State::new();
        let m = Msg::honest(
            Prin(2),
            Prin(3),
            Body::Ch {
                rand: Rand(0),
                list: ChoiceList::of(&[Choice(0)]),
            },
        );
        let s1 = s.send(m);
        let s2 = s1.send(m);
        assert_eq!(s1, s2);
        assert_eq!(s1.message_count(), 1);
        assert_eq!(s.message_count(), 0, "send is persistent");
    }

    #[test]
    fn sessions_are_per_owner_peer_sid() {
        let mut s = State::new();
        let sess = Session {
            choice: Choice(0),
            r1: Rand(0),
            r2: Rand(1),
            pms: Pms {
                client: Prin(2),
                server: Prin(3),
                secret: Secret(0),
            },
        };
        s.sessions.insert((Prin(2), Prin(3), Sid(0)), sess);
        assert_eq!(s.session(Prin(2), Prin(3), Sid(0)), Some(sess));
        assert_eq!(s.session(Prin(3), Prin(2), Sid(0)), None);
    }

    #[test]
    fn display_lists_messages() {
        let s = State::new().send(Msg::honest(
            Prin(2),
            Prin(3),
            Body::Ch2 {
                rand: Rand(0),
                sid: Sid(1),
            },
        ));
        let text = s.to_string();
        assert!(text.contains("ch2(p2,p2,p3,r0,sid1)"));
    }
}

// ---------------------------------------------------------------------------
// Symmetry reduction (Murφ-style scalarsets)
// ---------------------------------------------------------------------------

use crate::concrete::msg::Body;
use std::collections::BTreeMap as SymMap;

impl State {
    /// A symmetry-reduced representative of this state.
    ///
    /// Random numbers, session ids, and secrets are *scalarsets* (Murφ's
    /// term): the protocol never computes on their values, only compares
    /// them, so states differing by a value permutation are behaviorally
    /// identical. This relabels each scalarset in first-occurrence order
    /// (secrets per ownership parity: trustable principals draw even
    /// secrets, the intruder odd ones — see
    /// [`crate::concrete::step::Scope`]), which is itself a permutation,
    /// so two states are merged only if genuinely symmetric.
    pub fn canonicalize(&self) -> State {
        let mut rands: SymMap<Rand, Rand> = SymMap::new();
        let mut sids: SymMap<Sid, Sid> = SymMap::new();
        let mut secrets: SymMap<Secret, Secret> = SymMap::new();
        let mut next_rand = 0u8;
        let mut next_sid = 0u8;
        let mut next_even = 0u8;
        let mut next_odd = 0u8;
        let rand = |r: Rand, rands: &mut SymMap<Rand, Rand>, next: &mut u8| -> Rand {
            *rands.entry(r).or_insert_with(|| {
                let v = Rand(*next);
                *next += 1;
                v
            })
        };
        let sid = |i: Sid, sids: &mut SymMap<Sid, Sid>, next: &mut u8| -> Sid {
            *sids.entry(i).or_insert_with(|| {
                let v = Sid(*next);
                *next += 1;
                v
            })
        };
        let secret = |s: Secret,
                      secrets: &mut SymMap<Secret, Secret>,
                      next_even: &mut u8,
                      next_odd: &mut u8|
         -> Secret {
            *secrets.entry(s).or_insert_with(|| {
                if s.0.is_multiple_of(2) {
                    let v = Secret(2 * *next_even);
                    *next_even += 1;
                    v
                } else {
                    let v = Secret(2 * *next_odd + 1);
                    *next_odd += 1;
                    v
                }
            })
        };
        let map_pms =
            |p: Pms, secrets: &mut SymMap<Secret, Secret>, ne: &mut u8, no: &mut u8| Pms {
                client: p.client,
                server: p.server,
                secret: secret(p.secret, secrets, ne, no),
            };
        let mut out = State::new();
        for m in &self.network {
            let body = match m.body {
                Body::Ch { rand: r, list } => Body::Ch {
                    rand: rand(r, &mut rands, &mut next_rand),
                    list,
                },
                Body::Sh {
                    rand: r,
                    sid: i,
                    choice,
                } => Body::Sh {
                    rand: rand(r, &mut rands, &mut next_rand),
                    sid: sid(i, &mut sids, &mut next_sid),
                    choice,
                },
                Body::Ct { cert } => Body::Ct { cert },
                Body::Kx { key_of, pms } => Body::Kx {
                    key_of,
                    pms: map_pms(pms, &mut secrets, &mut next_even, &mut next_odd),
                },
                Body::Cf { key, hash } | Body::Sf { key, hash } => {
                    let key = SymKey {
                        prin: key.prin,
                        pms: map_pms(key.pms, &mut secrets, &mut next_even, &mut next_odd),
                        r1: rand(key.r1, &mut rands, &mut next_rand),
                        r2: rand(key.r2, &mut rands, &mut next_rand),
                    };
                    let hash = FinHash {
                        sid: sid(hash.sid, &mut sids, &mut next_sid),
                        r1: rand(hash.r1, &mut rands, &mut next_rand),
                        r2: rand(hash.r2, &mut rands, &mut next_rand),
                        pms: map_pms(hash.pms, &mut secrets, &mut next_even, &mut next_odd),
                        ..hash
                    };
                    if matches!(m.body, Body::Cf { .. }) {
                        Body::Cf { key, hash }
                    } else {
                        Body::Sf { key, hash }
                    }
                }
                Body::Ch2 { rand: r, sid: i } => Body::Ch2 {
                    rand: rand(r, &mut rands, &mut next_rand),
                    sid: sid(i, &mut sids, &mut next_sid),
                },
                Body::Sh2 {
                    rand: r,
                    sid: i,
                    choice,
                } => Body::Sh2 {
                    rand: rand(r, &mut rands, &mut next_rand),
                    sid: sid(i, &mut sids, &mut next_sid),
                    choice,
                },
                Body::Cf2 { key, hash } | Body::Sf2 { key, hash } => {
                    let key = SymKey {
                        prin: key.prin,
                        pms: map_pms(key.pms, &mut secrets, &mut next_even, &mut next_odd),
                        r1: rand(key.r1, &mut rands, &mut next_rand),
                        r2: rand(key.r2, &mut rands, &mut next_rand),
                    };
                    let hash = FinHash {
                        sid: sid(hash.sid, &mut sids, &mut next_sid),
                        r1: rand(hash.r1, &mut rands, &mut next_rand),
                        r2: rand(hash.r2, &mut rands, &mut next_rand),
                        pms: map_pms(hash.pms, &mut secrets, &mut next_even, &mut next_odd),
                        ..hash
                    };
                    if matches!(m.body, Body::Cf2 { .. }) {
                        Body::Cf2 { key, hash }
                    } else {
                        Body::Sf2 { key, hash }
                    }
                }
            };
            out.network.insert(Msg {
                crt: m.crt,
                src: m.src,
                dst: m.dst,
                body,
            });
        }
        for (&(owner, peer, i), s) in &self.sessions {
            out.sessions.insert(
                (owner, peer, sid(i, &mut sids, &mut next_sid)),
                Session {
                    choice: s.choice,
                    r1: rand(s.r1, &mut rands, &mut next_rand),
                    r2: rand(s.r2, &mut rands, &mut next_rand),
                    pms: map_pms(s.pms, &mut secrets, &mut next_even, &mut next_odd),
                },
            );
        }
        for &r in &self.used_rands {
            out.used_rands.insert(rand(r, &mut rands, &mut next_rand));
        }
        for &i in &self.used_sids {
            out.used_sids.insert(sid(i, &mut sids, &mut next_sid));
        }
        for &s in &self.used_secrets {
            out.used_secrets
                .insert(secret(s, &mut secrets, &mut next_even, &mut next_odd));
        }
        out
    }
}

#[cfg(test)]
mod symmetry_tests {
    use super::*;
    use crate::concrete::msg::{Body, Msg};

    fn ch(r: Rand) -> Msg {
        Msg::honest(
            Prin(2),
            Prin(3),
            Body::Ch {
                rand: r,
                list: ChoiceList::of(&[Choice(0)]),
            },
        )
    }

    #[test]
    fn rand_permutations_canonicalize_together() {
        let mut s1 = State::new().send(ch(Rand(0)));
        s1.used_rands.insert(Rand(0));
        let mut s2 = State::new().send(ch(Rand(3)));
        s2.used_rands.insert(Rand(3));
        assert_ne!(s1, s2);
        assert_eq!(s1.canonicalize(), s2.canonicalize());
    }

    #[test]
    fn canonicalization_preserves_structure() {
        let mut s = State::new().send(ch(Rand(2)));
        s.used_rands.insert(Rand(2));
        let c = s.canonicalize();
        assert_eq!(c.message_count(), 1);
        assert_eq!(c.used_rands.len(), 1);
        // Distinct values stay distinct.
        let mut s2 = s.send(ch(Rand(5)));
        s2.used_rands.insert(Rand(5));
        let c2 = s2.canonicalize();
        assert_eq!(c2.used_rands.len(), 2);
    }

    #[test]
    fn secret_parity_classes_never_mix() {
        // An intruder secret (odd) must not relabel onto an honest (even)
        // one: ownership is semantic, not symmetric.
        let pms_honest = Pms {
            client: Prin(2),
            server: Prin(3),
            secret: Secret(2),
        };
        let pms_intruder = Pms {
            client: Prin::INTRUDER,
            server: Prin(3),
            secret: Secret(3),
        };
        let s = State::new()
            .send(Msg::honest(
                Prin(2),
                Prin(3),
                Body::Kx {
                    key_of: Prin(3),
                    pms: pms_honest,
                },
            ))
            .send(Msg::faked(
                Prin(2),
                Prin(3),
                Body::Kx {
                    key_of: Prin(3),
                    pms: pms_intruder,
                },
            ));
        let c = s.canonicalize();
        let secrets: Vec<u8> = c
            .messages()
            .filter_map(|m| match m.body {
                Body::Kx { pms, .. } => Some(pms.secret.0),
                _ => None,
            })
            .collect();
        assert!(secrets.contains(&0), "even class relabels to 0");
        assert!(secrets.contains(&1), "odd class relabels to 1");
    }
}
