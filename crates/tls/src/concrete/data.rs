//! Concrete data domains: finite, copyable values mirroring §4.2's
//! quantities.
//!
//! The symbolic model quantifies over arbitrary values; the concrete model
//! instantiates each sort with a small finite domain (newtyped `u8`s) so
//! the model checker can enumerate states. `Prin(0)` is the intruder and
//! `Prin(1)` the certificate authority, mirroring the two special
//! principals of the paper.

use std::fmt;

macro_rules! small_domain {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u8);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

small_domain!(
    /// A random number (`Rand_X` in Figure 2).
    Rand,
    "r"
);
small_domain!(
    /// A session identifier.
    Sid,
    "sid"
);
small_domain!(
    /// A cipher suite (`Choice`).
    Choice,
    "c"
);
small_domain!(
    /// A secret value making pre-master secrets unique.
    Secret,
    "s"
);

/// A principal. `Prin(0)` is the intruder, `Prin(1)` the CA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prin(pub u8);

impl Prin {
    /// The Dolev–Yao intruder.
    pub const INTRUDER: Prin = Prin(0);
    /// The single trusted certificate authority.
    pub const CA: Prin = Prin(1);

    /// `true` for the intruder.
    pub fn is_intruder(self) -> bool {
        self == Prin::INTRUDER
    }

    /// `true` for trustable (non-intruder) principals.
    pub fn is_trustable(self) -> bool {
        !self.is_intruder()
    }
}

impl fmt::Display for Prin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Prin::INTRUDER => write!(f, "intruder"),
            Prin::CA => write!(f, "ca"),
            Prin(n) => write!(f, "p{n}"),
        }
    }
}

/// A list of cipher suites, as a bitmask over `Choice` values 0–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChoiceList(pub u8);

impl ChoiceList {
    /// The list containing exactly the given choices.
    pub fn of(choices: &[Choice]) -> Self {
        ChoiceList(choices.iter().fold(0, |m, c| m | (1 << c.0)))
    }

    /// Membership test (`_\in_` of §4.2).
    pub fn contains(self, c: Choice) -> bool {
        self.0 & (1 << c.0) != 0
    }

    /// Iterate over the contained choices.
    pub fn iter(self) -> impl Iterator<Item = Choice> {
        (0..8).filter(move |i| self.0 & (1 << i) != 0).map(Choice)
    }
}

impl fmt::Display for ChoiceList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// A pre-master secret `pms(client, server, secret)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pms {
    /// The generating client.
    pub client: Prin,
    /// The intended server.
    pub server: Prin,
    /// The uniquifying secret.
    pub secret: Secret,
}

impl fmt::Display for Pms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pms({},{},{})", self.client, self.server, self.secret)
    }
}

/// A digital signature `sig(signer, subject, key-owner)` binding `subject`
/// to the public key `k(key_of)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sig {
    /// Who signed.
    pub signer: Prin,
    /// Whose identity is bound.
    pub subject: Prin,
    /// Whose public key is bound (`k(key_of)`).
    pub key_of: Prin,
}

/// A certificate `cert(prin, k(key_of), sig)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cert {
    /// The claimed identity.
    pub prin: Prin,
    /// The claimed public key's owner.
    pub key_of: Prin,
    /// The binding signature.
    pub sig: Sig,
}

impl Cert {
    /// The genuine certificate of `p`: `cert(p, k(p), sig(ca, p, k(p)))`.
    pub fn genuine(p: Prin) -> Self {
        Cert {
            prin: p,
            key_of: p,
            sig: Sig {
                signer: Prin::CA,
                subject: p,
                key_of: p,
            },
        }
    }

    /// The validity check clients perform (§3.2 abstraction): the CA
    /// signature binds exactly the claimed identity and key.
    pub fn is_valid_for(self, claimed: Prin) -> bool {
        self.prin == claimed
            && self.sig.signer == Prin::CA
            && self.sig.subject == claimed
            && self.sig.key_of == self.key_of
            && self.key_of == claimed
    }
}

/// The symmetric key `key(x, pms, r1, r2)` — `H(X, PMS, Rand_A, Rand_B)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymKey {
    /// ClientKey when this is the client, ServerKey when the server.
    pub prin: Prin,
    /// The pre-master secret.
    pub pms: Pms,
    /// The client random.
    pub r1: Rand,
    /// The server random.
    pub r2: Rand,
}

/// Which Finished hash a payload carries (distinct hash constructors in
/// the symbolic model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FinKind {
    /// `cfin(…)` — full-handshake ClientFinish.
    Client,
    /// `sfin(…)` — full-handshake ServerFinish.
    Server,
    /// `cfin2(…)` — abbreviated ClientFinish2.
    Client2,
    /// `sfin2(…)` — abbreviated ServerFinish2.
    Server2,
}

/// A Finished hash: the §3.2 contents (role, A, B, SID, [list,] choice,
/// randoms, PMS). `list` is `None` for the abbreviated-handshake hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FinHash {
    /// Which of the four hash constructors.
    pub kind: FinKind,
    /// The client name in the hash.
    pub a: Prin,
    /// The server name in the hash.
    pub b: Prin,
    /// Session ID.
    pub sid: Sid,
    /// Cipher-suite list (full handshake only).
    pub list: Option<ChoiceList>,
    /// Negotiated cipher suite.
    pub choice: Choice,
    /// Client random.
    pub r1: Rand,
    /// Server random.
    pub r2: Rand,
    /// Pre-master secret.
    pub pms: Pms,
}

/// An established session `st(choice, r1, r2, pms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Session {
    /// Negotiated cipher suite.
    pub choice: Choice,
    /// Client random.
    pub r1: Rand,
    /// Server random.
    pub r2: Rand,
    /// Pre-master secret.
    pub pms: Pms,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_principals() {
        assert!(Prin::INTRUDER.is_intruder());
        assert!(!Prin::INTRUDER.is_trustable());
        assert!(Prin::CA.is_trustable());
        assert_eq!(Prin::INTRUDER.to_string(), "intruder");
        assert_eq!(Prin(3).to_string(), "p3");
    }

    #[test]
    fn choice_lists_are_bitmasks() {
        let l = ChoiceList::of(&[Choice(0), Choice(2)]);
        assert!(l.contains(Choice(0)));
        assert!(!l.contains(Choice(1)));
        assert!(l.contains(Choice(2)));
        assert_eq!(l.iter().count(), 2);
        assert_eq!(l.to_string(), "[c0 c2]");
    }

    #[test]
    fn genuine_certificates_validate() {
        let b = Prin(2);
        let cert = Cert::genuine(b);
        assert!(cert.is_valid_for(b));
        assert!(!cert.is_valid_for(Prin(3)));
        // A forged cert binding b's name to the intruder's key fails.
        let forged = Cert {
            prin: b,
            key_of: Prin::INTRUDER,
            sig: Sig {
                signer: Prin::INTRUDER,
                subject: b,
                key_of: Prin::INTRUDER,
            },
        };
        assert!(!forged.is_valid_for(b));
    }

    #[test]
    fn display_is_nonempty_for_all_values() {
        assert_eq!(Rand(1).to_string(), "r1");
        assert_eq!(Sid(0).to_string(), "sid0");
        assert_eq!(Choice(1).to_string(), "c1");
        assert_eq!(Secret(2).to_string(), "s2");
        let pms = Pms {
            client: Prin(2),
            server: Prin(3),
            secret: Secret(0),
        };
        assert_eq!(pms.to_string(), "pms(p2,p3,s0)");
    }
}
