//! Concrete messages: the ten kinds of Figure 2 with creator / seeming
//! sender / receiver metadata.

use crate::concrete::data::*;
use std::fmt;

/// A message payload, one variant per message kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Body {
    /// ClientHello: random + cipher-suite list.
    Ch {
        /// Client random.
        rand: Rand,
        /// Offered cipher suites.
        list: ChoiceList,
    },
    /// ServerHello: random + session id + chosen suite.
    Sh {
        /// Server random.
        rand: Rand,
        /// Session id.
        sid: Sid,
        /// Chosen suite.
        choice: Choice,
    },
    /// Certificate.
    Ct {
        /// The certificate.
        cert: Cert,
    },
    /// ClientKeyExchange: `epms(k(key_of), pms)`.
    Kx {
        /// Owner of the encrypting public key.
        key_of: Prin,
        /// The encrypted pre-master secret.
        pms: Pms,
    },
    /// Client Finished: `ecfin(key, hash)`.
    Cf {
        /// Encrypting symmetric key.
        key: SymKey,
        /// The ClientFinish hash.
        hash: FinHash,
    },
    /// Server Finished: `esfin(key, hash)`.
    Sf {
        /// Encrypting symmetric key.
        key: SymKey,
        /// The ServerFinish hash.
        hash: FinHash,
    },
    /// ClientHello2 (resumption).
    Ch2 {
        /// Client random.
        rand: Rand,
        /// Session to resume.
        sid: Sid,
    },
    /// ServerHello2.
    Sh2 {
        /// Server random.
        rand: Rand,
        /// Session id.
        sid: Sid,
        /// The (unchanged) suite.
        choice: Choice,
    },
    /// ClientFinished2.
    Cf2 {
        /// Encrypting symmetric key.
        key: SymKey,
        /// The ClientFinish2 hash.
        hash: FinHash,
    },
    /// ServerFinished2.
    Sf2 {
        /// Encrypting symmetric key.
        key: SymKey,
        /// The ServerFinish2 hash.
        hash: FinHash,
    },
}

/// A message: creator (unforgeable), seeming sender, receiver, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Msg {
    /// Actual creator — meta-information the intruder cannot forge.
    pub crt: Prin,
    /// Seeming sender.
    pub src: Prin,
    /// Receiver.
    pub dst: Prin,
    /// Payload.
    pub body: Body,
}

impl Msg {
    /// A message honestly sent by `p` to `dst` (creator = seeming sender).
    pub fn honest(p: Prin, dst: Prin, body: Body) -> Self {
        Msg {
            crt: p,
            src: p,
            dst,
            body,
        }
    }

    /// A message faked by the intruder, seemingly from `src`.
    pub fn faked(src: Prin, dst: Prin, body: Body) -> Self {
        Msg {
            crt: Prin::INTRUDER,
            src,
            dst,
            body,
        }
    }

    /// Short kind tag for displays and traces.
    pub fn kind(&self) -> &'static str {
        match self.body {
            Body::Ch { .. } => "ch",
            Body::Sh { .. } => "sh",
            Body::Ct { .. } => "ct",
            Body::Kx { .. } => "kx",
            Body::Cf { .. } => "cf",
            Body::Sf { .. } => "sf",
            Body::Ch2 { .. } => "ch2",
            Body::Sh2 { .. } => "sh2",
            Body::Cf2 { .. } => "cf2",
            Body::Sf2 { .. } => "sf2",
        }
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({},{},{}", self.kind(), self.crt, self.src, self.dst)?;
        match &self.body {
            Body::Ch { rand, list } => write!(f, ",{rand},{list})"),
            Body::Sh { rand, sid, choice } => write!(f, ",{rand},{sid},{choice})"),
            Body::Ct { cert } => write!(
                f,
                ",cert({},k({}),sig({},{},k({}))))",
                cert.prin, cert.key_of, cert.sig.signer, cert.sig.subject, cert.sig.key_of
            ),
            Body::Kx { key_of, pms } => write!(f, ",epms(k({key_of}),{pms}))"),
            Body::Cf { key, hash } | Body::Sf { key, hash } => write!(
                f,
                ",enc(key({},{},{},{}),hash({},{},{},{},{},{})))",
                key.prin,
                key.pms,
                key.r1,
                key.r2,
                hash.a,
                hash.b,
                hash.sid,
                hash.choice,
                hash.r1,
                hash.pms
            ),
            Body::Ch2 { rand, sid } => write!(f, ",{rand},{sid})"),
            Body::Sh2 { rand, sid, choice } => write!(f, ",{rand},{sid},{choice})"),
            Body::Cf2 { key, hash } | Body::Sf2 { key, hash } => write!(
                f,
                ",enc(key({},{},{},{}),hash2({},{},{},{},{},{})))",
                key.prin,
                key.pms,
                key.r1,
                key.r2,
                hash.a,
                hash.b,
                hash.sid,
                hash.choice,
                hash.r1,
                hash.pms
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_messages_have_matching_creator_and_sender() {
        let m = Msg::honest(
            Prin(2),
            Prin(3),
            Body::Ch {
                rand: Rand(0),
                list: ChoiceList::of(&[Choice(0)]),
            },
        );
        assert_eq!(m.crt, m.src);
        assert_eq!(m.kind(), "ch");
    }

    #[test]
    fn faked_messages_carry_the_intruder_as_creator() {
        let m = Msg::faked(
            Prin(2),
            Prin(3),
            Body::Ch2 {
                rand: Rand(0),
                sid: Sid(0),
            },
        );
        assert_eq!(m.crt, Prin::INTRUDER);
        assert_eq!(m.src, Prin(2));
        assert_eq!(m.kind(), "ch2");
    }

    #[test]
    fn displays_are_readable() {
        let m = Msg::honest(
            Prin(3),
            Prin(2),
            Body::Sh {
                rand: Rand(1),
                sid: Sid(0),
                choice: Choice(0),
            },
        );
        assert_eq!(m.to_string(), "sh(p3,p3,p2,r1,sid0,c0)");
    }
}
