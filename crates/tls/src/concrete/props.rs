//! Concrete property monitors: the paper's properties 1–5 and the
//! *refuted* properties 2′/3′ as state predicates for the model checker.

use crate::concrete::data::*;
use crate::concrete::knowledge::Knowledge;
use crate::concrete::msg::{Body, Msg};
use crate::concrete::state::State;
use crate::concrete::step::Scope;

/// Property 1 (PMS secrecy): every pre-master secret the intruder knows
/// involves the intruder.
pub fn prop1_pms_secrecy(state: &State, scope: &Scope) -> bool {
    let k = Knowledge::glean(state, &scope.intruder_secrets(), &scope.trustables());
    k.pms
        .iter()
        .all(|p| p.client.is_intruder() || p.server.is_intruder())
}

/// The well-formed ServerFinished a client would accept: key and hash
/// agree and the pre-master secret names exactly (a, b).
fn conformant_sf(m: &Msg) -> Option<(Prin, Prin)> {
    let (a, b) = (m.dst, m.src);
    match m.body {
        Body::Sf { key, hash }
            if key.prin == b
                && key.pms == hash.pms
                && key.r1 == hash.r1
                && key.r2 == hash.r2
                && hash.a == a
                && hash.b == b
                && hash.pms.client == a
                && hash.pms.server == b =>
        {
            Some((a, b))
        }
        _ => None,
    }
}

/// Property 2 (ServerFinished authenticity): a conformant `sf` seemingly
/// from `b` to trustable `a` implies the genuine one is in the network.
pub fn prop2_sf_authentic(state: &State, _scope: &Scope) -> bool {
    state.messages().all(|m| {
        let Some((a, b)) = conformant_sf(m) else {
            return true;
        };
        if a.is_intruder() {
            return true;
        }
        state
            .messages()
            .any(|g| g.crt == b && g.src == b && g.dst == a && g.body == m.body)
    })
}

/// Property 3: same for ServerFinished2.
pub fn prop3_sf2_authentic(state: &State, _scope: &Scope) -> bool {
    state.messages().all(|m| {
        let (a, b) = (m.dst, m.src);
        let ok = matches!(m.body, Body::Sf2 { key, hash }
            if key.prin == b && key.pms == hash.pms && key.r1 == hash.r1
                && key.r2 == hash.r2 && hash.a == a && hash.b == b
                && hash.pms.client == a && hash.pms.server == b);
        if !ok || a.is_intruder() {
            return true;
        }
        state
            .messages()
            .any(|g| g.crt == b && g.src == b && g.dst == a && g.body == m.body)
    })
}

/// Property 4: with a conformant ServerHello + Certificate + Finished, the
/// hello and certificate are genuine too.
pub fn prop4_sh_ct_authentic(state: &State, scope: &Scope) -> bool {
    let _ = scope;
    state.messages().all(|m| {
        let Some((a, b)) = conformant_sf(m) else {
            return true;
        };
        if a.is_intruder() {
            return true;
        }
        let (r2, sid, choice) = match m.body {
            Body::Sf { hash, .. } => (hash.r2, hash.sid, hash.choice),
            _ => unreachable!("conformant_sf filtered"),
        };
        let sh_seen = state.messages().any(|s| {
            s.src == b
                && s.dst == a
                && s.body
                    == Body::Sh {
                        rand: r2,
                        sid,
                        choice,
                    }
        });
        let ct_seen = state.messages().any(|c| s_matches_ct(c, b, a));
        if !(sh_seen && ct_seen) {
            return true; // premise not satisfied
        }
        let sh_genuine = state.messages().any(|s| {
            s.crt == b
                && s.src == b
                && s.dst == a
                && s.body
                    == Body::Sh {
                        rand: r2,
                        sid,
                        choice,
                    }
        });
        let ct_genuine = state
            .messages()
            .any(|c| c.crt == b && s_matches_ct(c, b, a));
        sh_genuine && ct_genuine
    })
}

fn s_matches_ct(c: &Msg, b: Prin, a: Prin) -> bool {
    c.src == b && c.dst == a && matches!(c.body, Body::Ct { cert } if cert == Cert::genuine(b))
}

/// Property 5: with a conformant ServerHello2 + Finished2, the hello is
/// genuine.
pub fn prop5_sh2_authentic(state: &State, _scope: &Scope) -> bool {
    state.messages().all(|m| {
        let (a, b) = (m.dst, m.src);
        let hash = match m.body {
            Body::Sf2 { key, hash }
                if key.prin == b
                    && key.pms == hash.pms
                    && key.r1 == hash.r1
                    && key.r2 == hash.r2
                    && hash.a == a
                    && hash.b == b
                    && hash.pms.client == a
                    && hash.pms.server == b =>
            {
                hash
            }
            _ => return true,
        };
        if a.is_intruder() {
            return true;
        }
        let sh2_body = Body::Sh2 {
            rand: hash.r2,
            sid: hash.sid,
            choice: hash.choice,
        };
        let sh2_seen = state
            .messages()
            .any(|s| s.src == b && s.dst == a && s.body == sh2_body);
        if !sh2_seen {
            return true;
        }
        state
            .messages()
            .any(|s| s.crt == b && s.src == b && s.dst == a && s.body == sh2_body)
    })
}

/// Property 2′ (refuted in §5.3): a ClientFinished a server would accept,
/// seemingly from trustable `a`, implies the genuine one exists.
///
/// The server cannot check `pms.client == a` (it only decrypts the value),
/// so conformance here omits that conjunct — and the property FAILS.
pub fn prop2p_cf_authentic(state: &State, _scope: &Scope) -> bool {
    state.messages().all(|m| {
        let (a, b) = (m.src, m.dst);
        let ok = matches!(m.body, Body::Cf { key, hash }
            if key.prin == a && key.pms == hash.pms && key.r1 == hash.r1
                && key.r2 == hash.r2 && hash.a == a && hash.b == b);
        if !ok || a.is_intruder() {
            return true;
        }
        state
            .messages()
            .any(|g| g.crt == a && g.src == a && g.dst == b && g.body == m.body)
    })
}

/// Property 3′ (refuted): same for ClientFinished2.
pub fn prop3p_cf2_authentic(state: &State, _scope: &Scope) -> bool {
    state.messages().all(|m| {
        let (a, b) = (m.src, m.dst);
        let ok = matches!(m.body, Body::Cf2 { key, hash }
            if key.prin == a && key.pms == hash.pms && key.r1 == hash.r1
                && key.r2 == hash.r2 && hash.a == a && hash.b == b);
        if !ok || a.is_intruder() {
            return true;
        }
        state
            .messages()
            .any(|g| g.crt == a && g.src == a && g.dst == b && g.body == m.body)
    })
}

/// A state predicate checked in every reachable state.
pub type MonitorFn = fn(&State, &Scope) -> bool;

/// All monitors by name (positive expected-to-hold and refuted ones).
pub fn monitors() -> Vec<(&'static str, MonitorFn, bool)> {
    vec![
        ("prop1-pms-secrecy", prop1_pms_secrecy, true),
        ("prop2-sf-authentic", prop2_sf_authentic, true),
        ("prop3-sf2-authentic", prop3_sf2_authentic, true),
        ("prop4-sh-ct-authentic", prop4_sh_ct_authentic, true),
        ("prop5-sh2-authentic", prop5_sh2_authentic, true),
        ("prop2p-cf-authentic", prop2p_cf_authentic, false),
        ("prop3p-cf2-authentic", prop3p_cf2_authentic, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state_satisfies_everything() {
        let scope = Scope::counterexample();
        let state = State::new();
        for (name, monitor, _) in monitors() {
            assert!(monitor(&state, &scope), "{name} fails on the empty state");
        }
    }

    #[test]
    fn leaked_pms_violates_prop1() {
        let scope = Scope::counterexample();
        let leaked = Pms {
            client: Prin(2),
            server: Prin(3),
            secret: Secret(0),
        };
        // A kx encrypted to the intruder leaks a trustable pms.
        let state = State::new().send(Msg::faked(
            Prin(2),
            Prin::INTRUDER,
            Body::Kx {
                key_of: Prin::INTRUDER,
                pms: leaked,
            },
        ));
        assert!(!prop1_pms_secrecy(&state, &scope));
    }

    #[test]
    fn faked_conformant_cf_violates_prop2p() {
        let scope = Scope::counterexample();
        let (a, b) = (Prin(2), Prin(3));
        // The intruder's own pms, but the hash names (a, b): exactly the
        // §5.3 counterexample message (6).
        let pms = Pms {
            client: Prin::INTRUDER,
            server: b,
            secret: Secret(1),
        };
        let key = SymKey {
            prin: a,
            pms,
            r1: Rand(0),
            r2: Rand(1),
        };
        let hash = FinHash {
            kind: FinKind::Client,
            a,
            b,
            sid: Sid(0),
            list: Some(scope.full_list()),
            choice: Choice(0),
            r1: Rand(0),
            r2: Rand(1),
            pms,
        };
        let state = State::new().send(Msg::faked(a, b, Body::Cf { key, hash }));
        assert!(!prop2p_cf_authentic(&state, &scope));
        // …while prop2 (server-side authenticity) is unaffected.
        assert!(prop2_sf_authentic(&state, &scope));
    }

    #[test]
    fn genuine_sf_satisfies_prop2() {
        let scope = Scope::counterexample();
        let (a, b) = (Prin(2), Prin(3));
        let pms = Pms {
            client: a,
            server: b,
            secret: Secret(0),
        };
        let key = SymKey {
            prin: b,
            pms,
            r1: Rand(0),
            r2: Rand(1),
        };
        let hash = FinHash {
            kind: FinKind::Server,
            a,
            b,
            sid: Sid(0),
            list: Some(scope.full_list()),
            choice: Choice(0),
            r1: Rand(0),
            r2: Rand(1),
            pms,
        };
        let state = State::new().send(Msg::honest(b, a, Body::Sf { key, hash }));
        assert!(prop2_sf_authentic(&state, &scope));
        // A replay of the same payload by the intruder stays authentic:
        // the genuine original is still present.
        let replayed = state.send(Msg::faked(b, a, Body::Sf { key, hash }));
        assert!(prop2_sf_authentic(&replayed, &scope));
    }
}
