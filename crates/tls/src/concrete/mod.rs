//! The concrete executable protocol semantics.
//!
//! Finite-domain Rust data mirroring the symbolic model, used for
//! simulation (the quickstart example) and for model checking (the
//! `equitls-mc` crate): states, messages, the Dolev–Yao knowledge closure,
//! transition enumeration, and the property monitors of §5.
//!
//! The split between symbolic and concrete models is deliberate: the
//! symbolic model supports *unbounded* proofs by induction; the concrete
//! model supports *bounded* exhaustive search that finds the §5.3
//! counterexamples and cross-validates the proofs in finite scopes.

pub mod codec;
pub mod data;
pub mod knowledge;
pub mod msg;
pub mod props;
pub mod state;
pub mod step;

pub use data::{
    Cert, Choice, ChoiceList, FinHash, FinKind, Pms, Prin, Rand, Secret, Session, Sid, Sig, SymKey,
};
pub use knowledge::Knowledge;
pub use msg::{Body, Msg};
pub use state::State;
pub use step::{successors, Scope, Step};
