//! The intruder's knowledge: concrete gleaning (§4.3) and synthesis
//! capability checks (§4.5).
//!
//! Mirrors the seven gleaning collections of the symbolic model. Under
//! perfect cryptography the closure is flat (no recursion is needed):
//! ciphertexts only yield payloads when the decryption key is known, keys
//! are hashes of public data plus a pre-master secret, and hashes are not
//! invertible.

use crate::concrete::data::*;
use crate::concrete::msg::Body;
use crate::concrete::state::State;
use std::collections::BTreeSet;

/// Everything the intruder can currently derive from the network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Knowledge {
    /// Known pre-master secrets (`cpms`): own secrets plus any sent under
    /// `k(intruder)`.
    pub pms: BTreeSet<Pms>,
    /// Gleaned CA-or-intruder signatures (`csig`).
    pub sigs: BTreeSet<Sig>,
    /// Replayable encrypted pre-master secrets (`cepms`).
    pub epms: BTreeSet<(Prin, Pms)>,
    /// Replayable encrypted client Finished payloads (`cecfin`).
    pub ecfin: BTreeSet<(SymKey, FinHash)>,
    /// Replayable encrypted server Finished payloads (`cesfin`).
    pub esfin: BTreeSet<(SymKey, FinHash)>,
    /// Replayable encrypted ClientFinished2 payloads (`cecfin2`).
    pub ecfin2: BTreeSet<(SymKey, FinHash)>,
    /// Replayable encrypted ServerFinished2 payloads (`cesfin2`).
    pub esfin2: BTreeSet<(SymKey, FinHash)>,
}

impl Knowledge {
    /// Glean from a state's network, given the scope's secret pool (the
    /// intruder owns every pre-master secret it generated itself).
    pub fn glean(state: &State, intruder_secrets: &[Secret], peers: &[Prin]) -> Knowledge {
        let mut k = Knowledge::default();
        // The intruder's own pre-master secrets (cpms base case).
        for &s in intruder_secrets {
            for &b in peers {
                k.pms.insert(Pms {
                    client: Prin::INTRUDER,
                    server: b,
                    secret: s,
                });
            }
        }
        // The intruder can always sign with its own key (csig base case).
        for &subject in peers {
            for &key_of in peers {
                k.sigs.insert(Sig {
                    signer: Prin::INTRUDER,
                    subject,
                    key_of,
                });
            }
        }
        for m in state.messages() {
            match m.body {
                Body::Kx { key_of, pms } => {
                    if key_of == Prin::INTRUDER {
                        k.pms.insert(pms);
                    }
                    k.epms.insert((key_of, pms));
                }
                Body::Ct { cert } => {
                    k.sigs.insert(cert.sig);
                }
                Body::Cf { key, hash } => {
                    k.ecfin.insert((key, hash));
                }
                Body::Sf { key, hash } => {
                    k.esfin.insert((key, hash));
                }
                Body::Cf2 { key, hash } => {
                    k.ecfin2.insert((key, hash));
                }
                Body::Sf2 { key, hash } => {
                    k.esfin2.insert((key, hash));
                }
                _ => {}
            }
        }
        k
    }

    /// Can the intruder produce this symmetric key? (It can compute
    /// `key(x, pms, r1, r2)` for public `x, r1, r2` whenever it knows the
    /// pre-master secret — §4.3.)
    pub fn knows_key(&self, key: &SymKey) -> bool {
        self.pms.contains(&key.pms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::msg::Msg;

    fn peers() -> Vec<Prin> {
        vec![Prin(2), Prin(3)]
    }

    #[test]
    fn own_pms_is_always_known() {
        let k = Knowledge::glean(&State::new(), &[Secret(7)], &peers());
        assert!(k.pms.contains(&Pms {
            client: Prin::INTRUDER,
            server: Prin(2),
            secret: Secret(7),
        }));
        assert!(k.epms.is_empty());
    }

    #[test]
    fn kx_to_intruder_leaks_its_pms() {
        let honest = Pms {
            client: Prin(2),
            server: Prin::INTRUDER,
            secret: Secret(0),
        };
        let state = State::new().send(Msg::honest(
            Prin(2),
            Prin::INTRUDER,
            Body::Kx {
                key_of: Prin::INTRUDER,
                pms: honest,
            },
        ));
        let k = Knowledge::glean(&state, &[], &peers());
        assert!(k.pms.contains(&honest));
    }

    #[test]
    fn kx_to_honest_server_does_not_leak_but_is_replayable() {
        let honest = Pms {
            client: Prin(2),
            server: Prin(3),
            secret: Secret(0),
        };
        let state = State::new().send(Msg::honest(
            Prin(2),
            Prin(3),
            Body::Kx {
                key_of: Prin(3),
                pms: honest,
            },
        ));
        let k = Knowledge::glean(&state, &[], &peers());
        assert!(!k.pms.contains(&honest));
        assert!(k.epms.contains(&(Prin(3), honest)));
    }

    #[test]
    fn knows_key_iff_knows_pms() {
        let mine = Pms {
            client: Prin::INTRUDER,
            server: Prin(3),
            secret: Secret(1),
        };
        let k = Knowledge::glean(&State::new(), &[Secret(1)], &peers());
        let key = SymKey {
            prin: Prin(2),
            pms: mine,
            r1: Rand(0),
            r2: Rand(1),
        };
        assert!(k.knows_key(&key));
        let other = SymKey {
            prin: Prin(2),
            pms: Pms {
                client: Prin(2),
                server: Prin(3),
                secret: Secret(0),
            },
            r1: Rand(0),
            r2: Rand(1),
        };
        assert!(!k.knows_key(&other));
    }

    #[test]
    fn gleaning_is_monotone_in_the_network() {
        let m = Msg::honest(
            Prin(2),
            Prin(3),
            Body::Cf {
                key: SymKey {
                    prin: Prin(2),
                    pms: Pms {
                        client: Prin(2),
                        server: Prin(3),
                        secret: Secret(0),
                    },
                    r1: Rand(0),
                    r2: Rand(1),
                },
                hash: FinHash {
                    kind: FinKind::Client,
                    a: Prin(2),
                    b: Prin(3),
                    sid: Sid(0),
                    list: Some(ChoiceList::of(&[Choice(0)])),
                    choice: Choice(0),
                    r1: Rand(0),
                    r2: Rand(1),
                    pms: Pms {
                        client: Prin(2),
                        server: Prin(3),
                        secret: Secret(0),
                    },
                },
            },
        );
        let s0 = State::new();
        let s1 = s0.send(m);
        let k0 = Knowledge::glean(&s0, &[], &peers());
        let k1 = Knowledge::glean(&s1, &[], &peers());
        assert!(k0.ecfin.is_subset(&k1.ecfin));
        assert_eq!(k1.ecfin.len(), 1);
    }
}
