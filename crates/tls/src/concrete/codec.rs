//! Binary encoding of concrete [`State`]s for checkpoint snapshots.
//!
//! The concrete domains are all small `u8` newtypes, so a state flattens
//! to a short, deterministic byte string: ordered containers (`BTreeSet`
//! / `BTreeMap`) iterate in a canonical order, which means equal states
//! always encode to equal bytes. Decoding is total and typed — any byte
//! string that does not denote a state yields `None`, never a panic —
//! because checkpoint payloads, although CRC-guarded, are still external
//! input.

use super::data::{
    Cert, Choice, ChoiceList, FinHash, FinKind, Pms, Prin, Rand, Secret, Session, Sid, Sig, SymKey,
};
use super::msg::{Body, Msg};
use super::state::State;
use equitls_persist::codec::{Reader, Writer};
use equitls_persist::PersistError;

fn put_pms(w: &mut Writer, p: &Pms) {
    w.u8(p.client.0);
    w.u8(p.server.0);
    w.u8(p.secret.0);
}

fn get_pms(r: &mut Reader) -> Result<Pms, PersistError> {
    Ok(Pms {
        client: Prin(r.u8()?),
        server: Prin(r.u8()?),
        secret: Secret(r.u8()?),
    })
}

fn put_key(w: &mut Writer, k: &SymKey) {
    w.u8(k.prin.0);
    put_pms(w, &k.pms);
    w.u8(k.r1.0);
    w.u8(k.r2.0);
}

fn get_key(r: &mut Reader) -> Result<SymKey, PersistError> {
    Ok(SymKey {
        prin: Prin(r.u8()?),
        pms: get_pms(r)?,
        r1: Rand(r.u8()?),
        r2: Rand(r.u8()?),
    })
}

fn put_hash(w: &mut Writer, h: &FinHash) {
    w.u8(match h.kind {
        FinKind::Client => 0,
        FinKind::Server => 1,
        FinKind::Client2 => 2,
        FinKind::Server2 => 3,
    });
    w.u8(h.a.0);
    w.u8(h.b.0);
    w.u8(h.sid.0);
    match h.list {
        Some(list) => {
            w.u8(1);
            w.u8(list.0);
        }
        None => w.u8(0),
    }
    w.u8(h.choice.0);
    w.u8(h.r1.0);
    w.u8(h.r2.0);
    put_pms(w, &h.pms);
}

fn get_hash(r: &mut Reader) -> Result<FinHash, PersistError> {
    let kind = match r.u8()? {
        0 => FinKind::Client,
        1 => FinKind::Server,
        2 => FinKind::Client2,
        3 => FinKind::Server2,
        t => return Err(PersistError::Malformed(format!("finhash kind tag {t}"))),
    };
    let a = Prin(r.u8()?);
    let b = Prin(r.u8()?);
    let sid = Sid(r.u8()?);
    let list = match r.u8()? {
        0 => None,
        1 => Some(ChoiceList(r.u8()?)),
        t => return Err(PersistError::Malformed(format!("option tag {t}"))),
    };
    Ok(FinHash {
        kind,
        a,
        b,
        sid,
        list,
        choice: Choice(r.u8()?),
        r1: Rand(r.u8()?),
        r2: Rand(r.u8()?),
        pms: get_pms(r)?,
    })
}

fn put_body(w: &mut Writer, body: &Body) {
    match body {
        Body::Ch { rand, list } => {
            w.u8(0);
            w.u8(rand.0);
            w.u8(list.0);
        }
        Body::Sh { rand, sid, choice } => {
            w.u8(1);
            w.u8(rand.0);
            w.u8(sid.0);
            w.u8(choice.0);
        }
        Body::Ct { cert } => {
            w.u8(2);
            w.u8(cert.prin.0);
            w.u8(cert.key_of.0);
            w.u8(cert.sig.signer.0);
            w.u8(cert.sig.subject.0);
            w.u8(cert.sig.key_of.0);
        }
        Body::Kx { key_of, pms } => {
            w.u8(3);
            w.u8(key_of.0);
            put_pms(w, pms);
        }
        Body::Cf { key, hash } => {
            w.u8(4);
            put_key(w, key);
            put_hash(w, hash);
        }
        Body::Sf { key, hash } => {
            w.u8(5);
            put_key(w, key);
            put_hash(w, hash);
        }
        Body::Ch2 { rand, sid } => {
            w.u8(6);
            w.u8(rand.0);
            w.u8(sid.0);
        }
        Body::Sh2 { rand, sid, choice } => {
            w.u8(7);
            w.u8(rand.0);
            w.u8(sid.0);
            w.u8(choice.0);
        }
        Body::Cf2 { key, hash } => {
            w.u8(8);
            put_key(w, key);
            put_hash(w, hash);
        }
        Body::Sf2 { key, hash } => {
            w.u8(9);
            put_key(w, key);
            put_hash(w, hash);
        }
    }
}

fn get_body(r: &mut Reader) -> Result<Body, PersistError> {
    Ok(match r.u8()? {
        0 => Body::Ch {
            rand: Rand(r.u8()?),
            list: ChoiceList(r.u8()?),
        },
        1 => Body::Sh {
            rand: Rand(r.u8()?),
            sid: Sid(r.u8()?),
            choice: Choice(r.u8()?),
        },
        2 => Body::Ct {
            cert: Cert {
                prin: Prin(r.u8()?),
                key_of: Prin(r.u8()?),
                sig: Sig {
                    signer: Prin(r.u8()?),
                    subject: Prin(r.u8()?),
                    key_of: Prin(r.u8()?),
                },
            },
        },
        3 => Body::Kx {
            key_of: Prin(r.u8()?),
            pms: get_pms(r)?,
        },
        4 => Body::Cf {
            key: get_key(r)?,
            hash: get_hash(r)?,
        },
        5 => Body::Sf {
            key: get_key(r)?,
            hash: get_hash(r)?,
        },
        6 => Body::Ch2 {
            rand: Rand(r.u8()?),
            sid: Sid(r.u8()?),
        },
        7 => Body::Sh2 {
            rand: Rand(r.u8()?),
            sid: Sid(r.u8()?),
            choice: Choice(r.u8()?),
        },
        8 => Body::Cf2 {
            key: get_key(r)?,
            hash: get_hash(r)?,
        },
        9 => Body::Sf2 {
            key: get_key(r)?,
            hash: get_hash(r)?,
        },
        t => return Err(PersistError::Malformed(format!("body tag {t}"))),
    })
}

/// Encode a concrete state into a deterministic byte string.
pub fn encode_state(state: &State) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(state.network.len());
    for msg in &state.network {
        w.u8(msg.crt.0);
        w.u8(msg.src.0);
        w.u8(msg.dst.0);
        put_body(&mut w, &msg.body);
    }
    w.usize(state.sessions.len());
    for ((owner, peer, sid), session) in &state.sessions {
        w.u8(owner.0);
        w.u8(peer.0);
        w.u8(sid.0);
        w.u8(session.choice.0);
        w.u8(session.r1.0);
        w.u8(session.r2.0);
        put_pms(&mut w, &session.pms);
    }
    w.usize(state.used_rands.len());
    for r in &state.used_rands {
        w.u8(r.0);
    }
    w.usize(state.used_sids.len());
    for s in &state.used_sids {
        w.u8(s.0);
    }
    w.usize(state.used_secrets.len());
    for s in &state.used_secrets {
        w.u8(s.0);
    }
    w.into_bytes()
}

/// Decode a state previously produced by [`encode_state`]. Trailing bytes
/// are rejected, so the encoding is a bijection on valid states.
pub fn decode_state(bytes: &[u8]) -> Result<State, PersistError> {
    let mut r = Reader::new(bytes);
    let mut state = State::new();
    for _ in 0..r.seq_len(4)? {
        let crt = Prin(r.u8()?);
        let src = Prin(r.u8()?);
        let dst = Prin(r.u8()?);
        let body = get_body(&mut r)?;
        state.network.insert(Msg {
            crt,
            src,
            dst,
            body,
        });
    }
    for _ in 0..r.seq_len(9)? {
        let key = (Prin(r.u8()?), Prin(r.u8()?), Sid(r.u8()?));
        let session = Session {
            choice: Choice(r.u8()?),
            r1: Rand(r.u8()?),
            r2: Rand(r.u8()?),
            pms: get_pms(&mut r)?,
        };
        state.sessions.insert(key, session);
    }
    for _ in 0..r.seq_len(1)? {
        state.used_rands.insert(Rand(r.u8()?));
    }
    for _ in 0..r.seq_len(1)? {
        state.used_sids.insert(Sid(r.u8()?));
    }
    for _ in 0..r.seq_len(1)? {
        state.used_secrets.insert(Secret(r.u8()?));
    }
    if !r.is_empty() {
        return Err(PersistError::Malformed(format!(
            "{} trailing bytes after state",
            r.remaining()
        )));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::step::{successors, Scope};

    #[test]
    fn every_reachable_shallow_state_roundtrips() {
        // Walk two levels of the counterexample scope and round-trip every
        // state seen — this covers hello, certificate, key-exchange, and
        // intruder fake messages.
        let scope = Scope::counterexample();
        let mut frontier = vec![State::new()];
        let mut seen = 0usize;
        for _ in 0..2 {
            let mut next = Vec::new();
            for state in &frontier {
                let bytes = encode_state(state);
                let back = decode_state(&bytes).expect("valid state decodes");
                assert_eq!(&back, state);
                assert_eq!(encode_state(&back), bytes, "encoding is canonical");
                seen += 1;
                for step in successors(state, &scope) {
                    next.push(step.state);
                }
            }
            frontier = next;
        }
        assert!(seen > 1, "walk visited more than the initial state");
    }

    #[test]
    fn garbage_and_truncation_decode_to_typed_errors() {
        assert!(decode_state(&[0xFF; 3]).is_err());
        let full = encode_state(&State::new());
        assert!(decode_state(&full[..full.len() - 1]).is_err());
        // Trailing garbage is rejected too.
        let mut padded = full.clone();
        padded.push(0);
        assert!(decode_state(&padded).is_err());
    }
}
