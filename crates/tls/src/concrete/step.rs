//! Concrete transition enumeration: the 12 trustable transitions and the
//! intruder's faking moves, bounded by a finite [`Scope`].
//!
//! This is the executable twin of the symbolic transitions; the model
//! checker (`equitls-mc`) explores exactly these successors. The scope
//! mirrors Mitchell et al.'s Murφ configuration from the paper's related
//! work (§6): a couple of clients, one server, bounded fresh values.

use crate::concrete::data::*;
use crate::concrete::knowledge::Knowledge;
use crate::concrete::msg::{Body, Msg};
use crate::concrete::state::State;

/// Finite domains for exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// Trustable clients.
    pub clients: Vec<Prin>,
    /// Trustable servers.
    pub servers: Vec<Prin>,
    /// Random-number pool size.
    pub rands: u8,
    /// Session-id pool size.
    pub sids: u8,
    /// Per-principal secret pool size (secrets are globally partitioned:
    /// trustable principals use even secrets, the intruder odd ones).
    pub secrets: u8,
    /// Cipher-suite pool size.
    pub choices: u8,
    /// Network size bound (exploration cutoff).
    pub max_messages: usize,
    /// Whether the ClientFinished2-first variant is explored.
    pub swapped_finish2: bool,
}

impl Scope {
    /// The Mitchell-et-al.-style default: two clients, one server, small
    /// pools.
    pub fn mitchell() -> Self {
        Scope {
            clients: vec![Prin(2), Prin(3)],
            servers: vec![Prin(4)],
            rands: 2,
            sids: 1,
            secrets: 2,
            choices: 1,
            max_messages: 12,
            swapped_finish2: false,
        }
    }

    /// A minimal scope for the §5.3 counterexamples: one client, one
    /// server, plus the intruder acting as a second client.
    pub fn counterexample() -> Self {
        Scope {
            clients: vec![Prin(2)],
            servers: vec![Prin(3)],
            rands: 2,
            sids: 1,
            secrets: 1,
            choices: 1,
            max_messages: 10,
            swapped_finish2: false,
        }
    }

    /// All trustable principals.
    pub fn trustables(&self) -> Vec<Prin> {
        let mut all = self.clients.clone();
        for &s in &self.servers {
            if !all.contains(&s) {
                all.push(s);
            }
        }
        all
    }

    /// All principals including the intruder.
    pub fn principals(&self) -> Vec<Prin> {
        let mut all = vec![Prin::INTRUDER];
        all.extend(self.trustables());
        all
    }

    fn rand_pool(&self) -> Vec<Rand> {
        (0..self.rands).map(Rand).collect()
    }

    fn sid_pool(&self) -> Vec<Sid> {
        (0..self.sids).map(Sid).collect()
    }

    fn choice_pool(&self) -> Vec<Choice> {
        (0..self.choices).map(Choice).collect()
    }

    /// Secrets trustable clients may draw (even-numbered).
    pub fn honest_secrets(&self) -> Vec<Secret> {
        (0..self.secrets).map(|i| Secret(2 * i)).collect()
    }

    /// Secrets the intruder owns (odd-numbered).
    pub fn intruder_secrets(&self) -> Vec<Secret> {
        (0..self.secrets).map(|i| Secret(2 * i + 1)).collect()
    }

    /// The single full cipher-suite list used by clients in scope.
    pub fn full_list(&self) -> ChoiceList {
        ChoiceList::of(&self.choice_pool())
    }
}

/// A labeled transition for traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Transition name (matching the symbolic action names).
    pub label: String,
    /// The resulting state.
    pub state: State,
}

fn push(steps: &mut Vec<Step>, label: impl Into<String>, state: State) {
    steps.push(Step {
        label: label.into(),
        state,
    });
}

/// Enumerate every enabled transition from `state`.
pub fn successors(state: &State, scope: &Scope) -> Vec<Step> {
    let mut steps = Vec::new();
    if state.message_count() >= scope.max_messages {
        return steps;
    }
    honest_steps(state, scope, &mut steps);
    intruder_steps(state, scope, &mut steps);
    steps
}

#[allow(clippy::too_many_lines)]
fn honest_steps(state: &State, scope: &Scope, steps: &mut Vec<Step>) {
    let list = scope.full_list();
    // chello: client A opens a handshake with any server.
    for &a in &scope.clients {
        for &b in scope.principals().iter().filter(|&&b| b != a) {
            for r in scope.rand_pool() {
                if state.used_rands.contains(&r) {
                    continue;
                }
                let mut next = state.send(Msg::honest(a, b, Body::Ch { rand: r, list }));
                next.used_rands.insert(r);
                push(steps, format!("chello({a},{b},{r})"), next);
            }
        }
    }
    // shello: server B answers a ClientHello.
    for &b in &scope.servers {
        for m1 in state.messages() {
            let (rand1, list1) = match m1.body {
                Body::Ch { rand, list } if m1.dst == b => (rand, list),
                _ => continue,
            };
            let _ = rand1;
            for r in scope.rand_pool() {
                if state.used_rands.contains(&r) {
                    continue;
                }
                for i in scope.sid_pool() {
                    if state.used_sids.contains(&i) {
                        continue;
                    }
                    for c in scope.choice_pool() {
                        if !list1.contains(c) {
                            continue;
                        }
                        let mut next = state.send(Msg::honest(
                            b,
                            m1.src,
                            Body::Sh {
                                rand: r,
                                sid: i,
                                choice: c,
                            },
                        ));
                        next.used_rands.insert(r);
                        next.used_sids.insert(i);
                        push(steps, format!("shello({b},{},{r},{i},{c})", m1.src), next);
                    }
                }
            }
        }
    }
    // cert: server B sends its certificate after its ServerHello.
    for &b in &scope.servers {
        for m1 in state.messages() {
            if !matches!(m1.body, Body::Ch { .. }) || m1.dst != b {
                continue;
            }
            for m2 in state.messages() {
                let ok = matches!(m2.body, Body::Sh { choice, .. }
                    if m2.crt == b && m2.src == b && m2.dst == m1.src
                        && matches!(m1.body, Body::Ch { list, .. } if list.contains(choice)));
                if !ok {
                    continue;
                }
                let ct = Msg::honest(
                    b,
                    m2.dst,
                    Body::Ct {
                        cert: Cert::genuine(b),
                    },
                );
                if state.network.contains(&ct) {
                    continue; // idempotent
                }
                push(steps, format!("cert({b},{})", m2.dst), state.send(ct));
            }
        }
    }
    // Client-side view shared by kexch / cfin / compl.
    let client_views = client_views(state, scope);
    // kexch: client sends the encrypted pre-master secret.
    for v in &client_views {
        for s in scope.honest_secrets() {
            if state.used_secrets.contains(&s) {
                continue;
            }
            let pms = Pms {
                client: v.a,
                server: v.b,
                secret: s,
            };
            let mut next = state.send(Msg::honest(v.a, v.b, Body::Kx { key_of: v.b, pms }));
            next.used_secrets.insert(s);
            push(steps, format!("kexch({},{},{s})", v.a, v.b), next);
        }
    }
    // cfin: client sends its Finished after its kx.
    for v in &client_views {
        for m4 in state.messages() {
            let pms = match m4.body {
                Body::Kx { key_of, pms }
                    if m4.crt == v.a
                        && m4.src == v.a
                        && m4.dst == v.b
                        && key_of == v.b
                        && pms.client == v.a
                        && pms.server == v.b =>
                {
                    pms
                }
                _ => continue,
            };
            let key = SymKey {
                prin: v.a,
                pms,
                r1: v.r1,
                r2: v.r2,
            };
            let hash = FinHash {
                kind: FinKind::Client,
                a: v.a,
                b: v.b,
                sid: v.sid,
                list: Some(v.list),
                choice: v.choice,
                r1: v.r1,
                r2: v.r2,
                pms,
            };
            let cf = Msg::honest(v.a, v.b, Body::Cf { key, hash });
            if state.network.contains(&cf) {
                continue;
            }
            push(steps, format!("cfin({},{})", v.a, v.b), state.send(cf));
        }
    }
    // sfin: server validates the client Finished and replies.
    for &b in &scope.servers {
        for sv in server_views(state, scope, b) {
            let key = SymKey {
                prin: b,
                pms: sv.pms,
                r1: sv.r1,
                r2: sv.r2,
            };
            let hash = FinHash {
                kind: FinKind::Server,
                a: sv.a,
                b,
                sid: sv.sid,
                list: Some(sv.list),
                choice: sv.choice,
                r1: sv.r1,
                r2: sv.r2,
                pms: sv.pms,
            };
            let sf = Msg::honest(b, sv.a, Body::Sf { key, hash });
            if state.network.contains(&sf) {
                continue;
            }
            push(steps, format!("sfin({b},{})", sv.a), state.send(sf));
        }
    }
    // compl: client validates the ServerFinished and records the session.
    for v in &client_views {
        for m4 in state.messages() {
            let pms = match m4.body {
                Body::Kx { key_of, pms }
                    if m4.crt == v.a && m4.dst == v.b && key_of == v.b && pms.client == v.a =>
                {
                    pms
                }
                _ => continue,
            };
            for m6 in state.messages() {
                let ok = matches!(m6.body, Body::Sf { key, hash }
                if m6.dst == v.a && m6.src == v.b
                    && key == SymKey { prin: v.b, pms, r1: v.r1, r2: v.r2 }
                    && hash == FinHash {
                        kind: FinKind::Server,
                        a: v.a, b: v.b, sid: v.sid, list: Some(v.list),
                        choice: v.choice, r1: v.r1, r2: v.r2, pms,
                    });
                if !ok {
                    continue;
                }
                let session = Session {
                    choice: v.choice,
                    r1: v.r1,
                    r2: v.r2,
                    pms,
                };
                if state.session(v.a, v.b, v.sid) == Some(session) {
                    continue;
                }
                let mut next = state.clone();
                next.sessions.insert((v.a, v.b, v.sid), session);
                push(steps, format!("compl({},{})", v.a, v.b), next);
            }
        }
    }
    abbreviated_steps(state, scope, steps);
}

/// The abbreviated handshake (both orders, per scope flag).
fn abbreviated_steps(state: &State, scope: &Scope, steps: &mut Vec<Step>) {
    // chello2: a client resumes a recorded session.
    for &(owner, peer, sid) in state.sessions.keys() {
        if !scope.clients.contains(&owner) {
            continue;
        }
        for r in scope.rand_pool() {
            if state.used_rands.contains(&r) {
                continue;
            }
            let mut next = state.send(Msg::honest(owner, peer, Body::Ch2 { rand: r, sid }));
            next.used_rands.insert(r);
            push(steps, format!("chello2({owner},{peer},{r})"), next);
        }
    }
    // shello2: the server agrees to resume.
    for &b in &scope.servers {
        for m1 in state.messages() {
            let (r1, sid) = match m1.body {
                Body::Ch2 { rand, sid } if m1.dst == b => (rand, sid),
                _ => continue,
            };
            let _ = r1;
            let Some(session) = state.session(b, m1.src, sid) else {
                continue;
            };
            for r in scope.rand_pool() {
                if state.used_rands.contains(&r) {
                    continue;
                }
                let mut next = state.send(Msg::honest(
                    b,
                    m1.src,
                    Body::Sh2 {
                        rand: r,
                        sid,
                        choice: session.choice,
                    },
                ));
                next.used_rands.insert(r);
                push(steps, format!("shello2({b},{},{r})", m1.src), next);
            }
        }
    }
    // The Finished2 exchange (standard: sf2 then cf2; variant: swapped).
    for &b in &scope.servers {
        for view in resume_views(state, b) {
            let key = SymKey {
                prin: b,
                pms: view.pms,
                r1: view.r1,
                r2: view.r2,
            };
            let hash = FinHash {
                kind: FinKind::Server2,
                a: view.a,
                b,
                sid: view.sid,
                list: None,
                choice: view.choice,
                r1: view.r1,
                r2: view.r2,
                pms: view.pms,
            };
            let sf2 = Msg::honest(b, view.a, Body::Sf2 { key, hash });
            let cf2_expected = Body::Cf2 {
                key: SymKey {
                    prin: view.a,
                    pms: view.pms,
                    r1: view.r1,
                    r2: view.r2,
                },
                hash: FinHash {
                    kind: FinKind::Client2,
                    ..hash
                },
            };
            let has_cf2 = state
                .messages()
                .any(|m| m.dst == b && m.src == view.a && m.body == cf2_expected);
            if scope.swapped_finish2 {
                // Variant: the server replies only after ClientFinished2.
                if has_cf2 && !state.network.contains(&sf2) {
                    push(steps, format!("sfin2({b},{})", view.a), state.send(sf2));
                }
            } else if !state.network.contains(&sf2) {
                push(steps, format!("sfin2({b},{})", view.a), state.send(sf2));
            }
            // compl2: the server renews its session on a valid cf2.
            if has_cf2 {
                let renewed = Session {
                    choice: view.choice,
                    r1: view.r1,
                    r2: view.r2,
                    pms: view.pms,
                };
                if state.session(b, view.a, view.sid) != Some(renewed) {
                    let mut next = state.clone();
                    next.sessions.insert((b, view.a, view.sid), renewed);
                    push(steps, format!("compl2({b},{})", view.a), next);
                }
            }
        }
    }
    // cfin2: the client's side of the Finished2 exchange.
    for &a in &scope.clients {
        for view in client_resume_views(state, a) {
            let sf2_expected = Body::Sf2 {
                key: SymKey {
                    prin: view.b,
                    pms: view.pms,
                    r1: view.r1,
                    r2: view.r2,
                },
                hash: FinHash {
                    kind: FinKind::Server2,
                    a,
                    b: view.b,
                    sid: view.sid,
                    list: None,
                    choice: view.choice,
                    r1: view.r1,
                    r2: view.r2,
                    pms: view.pms,
                },
            };
            let has_sf2 = state
                .messages()
                .any(|m| m.dst == a && m.src == view.b && m.body == sf2_expected);
            let ready = if scope.swapped_finish2 {
                true // variant: client sends cf2 right after sh2
            } else {
                has_sf2 // standard: client waits for sf2
            };
            if !ready {
                continue;
            }
            let cf2 = Msg::honest(
                a,
                view.b,
                Body::Cf2 {
                    key: SymKey {
                        prin: a,
                        pms: view.pms,
                        r1: view.r1,
                        r2: view.r2,
                    },
                    hash: FinHash {
                        kind: FinKind::Client2,
                        a,
                        b: view.b,
                        sid: view.sid,
                        list: None,
                        choice: view.choice,
                        r1: view.r1,
                        r2: view.r2,
                        pms: view.pms,
                    },
                },
            );
            if !state.network.contains(&cf2) {
                push(steps, format!("cfin2({a},{})", view.b), state.send(cf2));
            }
        }
    }
}

/// A client's conformant full-handshake view (ch/sh/ct received).
struct ClientView {
    a: Prin,
    b: Prin,
    r1: Rand,
    r2: Rand,
    sid: Sid,
    choice: Choice,
    list: ChoiceList,
}

fn client_views(state: &State, scope: &Scope) -> Vec<ClientView> {
    let mut views = Vec::new();
    for &a in &scope.clients {
        for m1 in state.messages() {
            let (r1, list) = match m1.body {
                Body::Ch { rand, list } if m1.crt == a && m1.src == a => (rand, list),
                _ => continue,
            };
            let b = m1.dst;
            for m2 in state.messages() {
                let (r2, sid, choice) = match m2.body {
                    Body::Sh { rand, sid, choice }
                        if m2.dst == a && m2.src == b && list.contains(choice) =>
                    {
                        (rand, sid, choice)
                    }
                    _ => continue,
                };
                let has_cert = state.messages().any(|m3| {
                    matches!(m3.body, Body::Ct { cert }
                        if m3.dst == a && m3.src == b && cert.is_valid_for(b))
                });
                if !has_cert {
                    continue;
                }
                views.push(ClientView {
                    a,
                    b,
                    r1,
                    r2,
                    sid,
                    choice,
                    list,
                });
            }
        }
    }
    views
}

/// A server's conformant view before sending ServerFinished.
struct ServerView {
    a: Prin,
    r1: Rand,
    r2: Rand,
    sid: Sid,
    choice: Choice,
    list: ChoiceList,
    pms: Pms,
}

fn server_views(state: &State, scope: &Scope, b: Prin) -> Vec<ServerView> {
    let _ = scope;
    let mut views = Vec::new();
    for m1 in state.messages() {
        let (r1, list) = match m1.body {
            Body::Ch { rand, list } if m1.dst == b => (rand, list),
            _ => continue,
        };
        let a = m1.src;
        for m2 in state.messages() {
            let (r2, sid, choice) = match m2.body {
                Body::Sh { rand, sid, choice }
                    if m2.crt == b && m2.src == b && m2.dst == a && list.contains(choice) =>
                {
                    (rand, sid, choice)
                }
                _ => continue,
            };
            // The server must have sent its certificate in this session
            // (the sfin effective-condition conjunct of the symbolic
            // model).
            let has_own_cert = state.messages().any(|m3| {
                matches!(m3.body, Body::Ct { cert }
                    if m3.crt == b && m3.src == b && m3.dst == a && cert == Cert::genuine(b))
            });
            if !has_own_cert {
                continue;
            }
            for m4 in state.messages() {
                let pms = match m4.body {
                    Body::Kx { key_of, pms } if m4.dst == b && m4.src == a && key_of == b => pms,
                    _ => continue,
                };
                let expected_key = SymKey {
                    prin: a,
                    pms,
                    r1,
                    r2,
                };
                let expected_hash = FinHash {
                    kind: FinKind::Client,
                    a,
                    b,
                    sid,
                    list: Some(list),
                    choice,
                    r1,
                    r2,
                    pms,
                };
                let has_cf = state.messages().any(|m5| {
                    matches!(m5.body, Body::Cf { key, hash }
                        if m5.dst == b && m5.src == a
                            && key == expected_key && hash == expected_hash)
                });
                if !has_cf {
                    continue;
                }
                views.push(ServerView {
                    a,
                    r1,
                    r2,
                    sid,
                    choice,
                    list,
                    pms,
                });
            }
        }
    }
    views
}

/// A server's view of a resumption in progress (ch2 received + own sh2).
struct ResumeView {
    a: Prin,
    sid: Sid,
    r1: Rand,
    r2: Rand,
    choice: Choice,
    pms: Pms,
}

fn resume_views(state: &State, b: Prin) -> Vec<ResumeView> {
    let mut views = Vec::new();
    for m1 in state.messages() {
        let (r1, sid) = match m1.body {
            Body::Ch2 { rand, sid } if m1.dst == b => (rand, sid),
            _ => continue,
        };
        let a = m1.src;
        let Some(session) = state.session(b, a, sid) else {
            continue;
        };
        for m2 in state.messages() {
            let r2 = match m2.body {
                Body::Sh2 {
                    rand,
                    sid: s2,
                    choice,
                } if m2.crt == b
                    && m2.src == b
                    && m2.dst == a
                    && s2 == sid
                    && choice == session.choice =>
                {
                    rand
                }
                _ => continue,
            };
            views.push(ResumeView {
                a,
                sid,
                r1,
                r2,
                choice: session.choice,
                pms: session.pms,
            });
        }
    }
    views
}

/// A client's view of a resumption (own ch2 + sh2 received).
struct ClientResumeView {
    b: Prin,
    sid: Sid,
    r1: Rand,
    r2: Rand,
    choice: Choice,
    pms: Pms,
}

fn client_resume_views(state: &State, a: Prin) -> Vec<ClientResumeView> {
    let mut views = Vec::new();
    for m1 in state.messages() {
        let (r1, sid) = match m1.body {
            Body::Ch2 { rand, sid } if m1.crt == a && m1.src == a => (rand, sid),
            _ => continue,
        };
        let b = m1.dst;
        let Some(session) = state.session(a, b, sid) else {
            continue;
        };
        for m2 in state.messages() {
            let r2 = match m2.body {
                Body::Sh2 {
                    rand,
                    sid: s2,
                    choice,
                } if m2.dst == a && m2.src == b && s2 == sid && choice == session.choice => rand,
                _ => continue,
            };
            views.push(ClientResumeView {
                b,
                sid,
                r1,
                r2,
                choice: session.choice,
                pms: session.pms,
            });
        }
    }
    views
}

/// The intruder's moves: replay gleaned ciphertexts under any addressing,
/// construct fresh payloads from known pre-master secrets, and fake
/// clear-text messages (bounded to scope values).
fn intruder_steps(state: &State, scope: &Scope, steps: &mut Vec<Step>) {
    let knowledge = Knowledge::glean(state, &scope.intruder_secrets(), &scope.trustables());
    let principals = scope.trustables();
    let list = scope.full_list();
    // Clear-text fakes.
    for &src in &principals {
        for &dst in &principals {
            if src == dst {
                continue;
            }
            for r in scope.rand_pool() {
                let m = Msg::faked(src, dst, Body::Ch { rand: r, list });
                if !state.network.contains(&m) {
                    push(steps, format!("fakeCh({src},{dst})"), state.send(m));
                }
                for i in scope.sid_pool() {
                    let m2 = Msg::faked(src, dst, Body::Ch2 { rand: r, sid: i });
                    if !state.network.contains(&m2) {
                        push(steps, format!("fakeCh2({src},{dst})"), state.send(m2));
                    }
                    for c in scope.choice_pool() {
                        let sh = Msg::faked(
                            src,
                            dst,
                            Body::Sh {
                                rand: r,
                                sid: i,
                                choice: c,
                            },
                        );
                        if !state.network.contains(&sh) {
                            push(steps, format!("fakeSh({src},{dst})"), state.send(sh));
                        }
                        let sh2 = Msg::faked(
                            src,
                            dst,
                            Body::Sh2 {
                                rand: r,
                                sid: i,
                                choice: c,
                            },
                        );
                        if !state.network.contains(&sh2) {
                            push(steps, format!("fakeSh2({src},{dst})"), state.send(sh2));
                        }
                    }
                }
            }
        }
    }
    // Certificate fakes from gleaned signatures.
    for &src in &principals {
        for &dst in &principals {
            if src == dst {
                continue;
            }
            for &sig in &knowledge.sigs {
                let cert = Cert {
                    prin: sig.subject,
                    key_of: sig.key_of,
                    sig,
                };
                let m = Msg::faked(src, dst, Body::Ct { cert });
                if !state.network.contains(&m) {
                    push(steps, format!("fakeCt({src},{dst})"), state.send(m));
                }
            }
        }
    }
    // Key-exchange fakes: replay or construct.
    for &src in &principals {
        for &dst in &principals {
            if src == dst {
                continue;
            }
            for &(key_of, pms) in &knowledge.epms {
                let m = Msg::faked(src, dst, Body::Kx { key_of, pms });
                if !state.network.contains(&m) {
                    push(steps, format!("fakeKx1({src},{dst})"), state.send(m));
                }
            }
            for &pms in &knowledge.pms {
                let m = Msg::faked(src, dst, Body::Kx { key_of: dst, pms });
                if !state.network.contains(&m) {
                    push(steps, format!("fakeKx2({src},{dst})"), state.send(m));
                }
            }
        }
    }
    // Finished fakes: replay gleaned ciphertexts, or construct from known
    // pre-master secrets.
    for &src in &principals {
        for &dst in &principals {
            if src == dst {
                continue;
            }
            for &(key, hash) in knowledge.ecfin.iter().chain(&knowledge.esfin) {
                let body = if hash.kind == FinKind::Client {
                    Body::Cf { key, hash }
                } else {
                    Body::Sf { key, hash }
                };
                let m = Msg::faked(src, dst, body);
                if !state.network.contains(&m) {
                    push(steps, format!("fakeFin1({src},{dst})"), state.send(m));
                }
            }
            for &(key, hash) in knowledge.ecfin2.iter().chain(&knowledge.esfin2) {
                let body = if hash.kind == FinKind::Client2 {
                    Body::Cf2 { key, hash }
                } else {
                    Body::Sf2 { key, hash }
                };
                let m = Msg::faked(src, dst, body);
                if !state.network.contains(&m) {
                    push(steps, format!("fakeFin21({src},{dst})"), state.send(m));
                }
            }
            // Construct: the useful shapes name src/dst in the hash (the
            // paper's fakeCfin2/fakeSfin2 patterns).
            for &pms in &knowledge.pms {
                for r1 in scope.rand_pool() {
                    for r2 in scope.rand_pool() {
                        for i in scope.sid_pool() {
                            for c in scope.choice_pool() {
                                let cf = Msg::faked(
                                    src,
                                    dst,
                                    Body::Cf {
                                        key: SymKey {
                                            prin: src,
                                            pms,
                                            r1,
                                            r2,
                                        },
                                        hash: FinHash {
                                            kind: FinKind::Client,
                                            a: src,
                                            b: dst,
                                            sid: i,
                                            list: Some(list),
                                            choice: c,
                                            r1,
                                            r2,
                                            pms,
                                        },
                                    },
                                );
                                if !state.network.contains(&cf) {
                                    push(steps, format!("fakeCfin2({src},{dst})"), state.send(cf));
                                }
                                let cf2 = Msg::faked(
                                    src,
                                    dst,
                                    Body::Cf2 {
                                        key: SymKey {
                                            prin: src,
                                            pms,
                                            r1,
                                            r2,
                                        },
                                        hash: FinHash {
                                            kind: FinKind::Client2,
                                            a: src,
                                            b: dst,
                                            sid: i,
                                            list: None,
                                            choice: c,
                                            r1,
                                            r2,
                                            pms,
                                        },
                                    },
                                );
                                if !state.network.contains(&cf2) {
                                    push(
                                        steps,
                                        format!("fakeCfin22({src},{dst})"),
                                        state.send(cf2),
                                    );
                                }
                                let sf = Msg::faked(
                                    dst,
                                    src,
                                    Body::Sf {
                                        key: SymKey {
                                            prin: dst,
                                            pms,
                                            r1,
                                            r2,
                                        },
                                        hash: FinHash {
                                            kind: FinKind::Server,
                                            a: src,
                                            b: dst,
                                            sid: i,
                                            list: Some(list),
                                            choice: c,
                                            r1,
                                            r2,
                                            pms,
                                        },
                                    },
                                );
                                if !state.network.contains(&sf) {
                                    push(steps, format!("fakeSfin2({dst},{src})"), state.send(sf));
                                }
                                let sf2 = Msg::faked(
                                    dst,
                                    src,
                                    Body::Sf2 {
                                        key: SymKey {
                                            prin: dst,
                                            pms,
                                            r1,
                                            r2,
                                        },
                                        hash: FinHash {
                                            kind: FinKind::Server2,
                                            a: src,
                                            b: dst,
                                            sid: i,
                                            list: None,
                                            choice: c,
                                            r1,
                                            r2,
                                            pms,
                                        },
                                    },
                                );
                                if !state.network.contains(&sf2) {
                                    push(
                                        steps,
                                        format!("fakeSfin22({dst},{src})"),
                                        state.send(sf2),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_offers_hellos_and_fakes() {
        let scope = Scope::counterexample();
        let steps = successors(&State::new(), &scope);
        assert!(steps.iter().any(|s| s.label.starts_with("chello(")));
        assert!(steps.iter().any(|s| s.label.starts_with("fakeCh(")));
        // No server moves yet: nothing to answer.
        assert!(!steps.iter().any(|s| s.label.starts_with("shello(")));
    }

    #[test]
    fn a_full_honest_handshake_is_replayable() {
        let scope = Scope::counterexample();
        let (a, b) = (Prin(2), Prin(3));
        let mut state = State::new();
        for expected in [
            "chello(", "shello(", "cert(", "kexch(", "cfin(", "sfin(", "compl(",
        ] {
            let steps = successors(&state, &scope);
            let step = steps
                .iter()
                .find(|s| {
                    s.label.starts_with(expected)
                        && s.label.contains(&a.to_string())
                        && s.label.contains(&b.to_string())
                })
                .unwrap_or_else(|| panic!("no {expected} step from\n{state}"));
            state = step.state.clone();
        }
        assert!(state.session(a, b, Sid(0)).is_some(), "session established");
    }

    #[test]
    fn message_bound_cuts_exploration() {
        let mut scope = Scope::counterexample();
        scope.max_messages = 0;
        assert!(successors(&State::new(), &scope).is_empty());
    }

    #[test]
    fn intruder_constructs_finished_only_with_known_pms() {
        let scope = Scope::counterexample();
        let steps = successors(&State::new(), &scope);
        // With its own secrets, the intruder can always construct some
        // Finished fakes at the initial state.
        assert!(steps.iter().any(|s| s.label.starts_with("fakeCfin2(")));
    }

    #[test]
    fn resumption_follows_an_established_session() {
        let scope = Scope::counterexample();
        let (a, b) = (Prin(2), Prin(3));
        let mut state = State::new();
        state.sessions.insert(
            (a, b, Sid(0)),
            Session {
                choice: Choice(0),
                r1: Rand(0),
                r2: Rand(1),
                pms: Pms {
                    client: a,
                    server: b,
                    secret: Secret(0),
                },
            },
        );
        state.sessions.insert(
            (b, a, Sid(0)),
            Session {
                choice: Choice(0),
                r1: Rand(0),
                r2: Rand(1),
                pms: Pms {
                    client: a,
                    server: b,
                    secret: Secret(0),
                },
            },
        );
        let steps = successors(&state, &scope);
        assert!(steps.iter().any(|s| s.label.starts_with("chello2(")));
    }
}
