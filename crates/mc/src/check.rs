//! Packaged TLS checks: bounded exhaustive verification à la Mitchell et
//! al. (experiment E10).

use crate::explorer::{
    explore_resume_with_config_jobs, explore_with_config_jobs, Exploration, ExploreConfig, Limits,
    Monitor,
};
use crate::model::TlsMachine;
use equitls_obs::sink::Obs;
use equitls_persist::PersistError;
use equitls_tls::concrete::{props, Scope, State};

/// An owned monitor predicate over concrete states.
type BoxedPredicate = Box<dyn Fn(&State) -> bool>;

/// Run every §5 monitor over the scope, breadth-first.
///
/// The expected outcome (within any scope that lets the intruder act):
/// properties 1–5 hold everywhere, 2′ and 3′ are violated.
pub fn check_scope(scope: &Scope, limits: &Limits) -> Exploration<State> {
    check_scope_jobs(scope, limits, 1)
}

/// [`check_scope`] on `jobs` worker threads (`0` = available parallelism).
///
/// The verdicts, state counts, and violation traces are identical for
/// every `jobs` value — see [`crate::explorer::explore_jobs`].
pub fn check_scope_jobs(scope: &Scope, limits: &Limits, jobs: usize) -> Exploration<State> {
    check_scope_config(scope, limits, jobs, &ExploreConfig::default())
}

/// [`check_scope_jobs`] under an [`ExploreConfig`] budget: a tripped
/// deadline, memory ceiling, or cancellation yields a *partial* but
/// internally consistent exploration with a typed
/// [`Exploration::stop_reason`] instead of an unbounded run.
pub fn check_scope_config(
    scope: &Scope,
    limits: &Limits,
    jobs: usize,
    config: &ExploreConfig,
) -> Exploration<State> {
    check_scope_config_obs(scope, limits, jobs, config, &Obs::noop())
}

/// [`check_scope_config`] with an observability handle: per-level timing
/// counters and heartbeats flow to `obs`'s sink. Purely additive — the
/// exploration result is identical whatever the sink.
pub fn check_scope_config_obs(
    scope: &Scope,
    limits: &Limits,
    jobs: usize,
    config: &ExploreConfig,
    obs: &Obs,
) -> Exploration<State> {
    check_scope_config_obs_sym(scope, limits, jobs, config, obs, true)
}

/// [`check_scope_config_obs`] with an explicit symmetry switch: `true`
/// (the default everywhere else) canonicalizes states under scalarset
/// symmetry, `false` explores the raw space — the `--no-symmetry`
/// escape hatch. Verdicts are identical either way; only the state
/// count changes.
pub fn check_scope_config_obs_sym(
    scope: &Scope,
    limits: &Limits,
    jobs: usize,
    config: &ExploreConfig,
    obs: &Obs,
    symmetry: bool,
) -> Exploration<State> {
    with_scope_monitors(scope, symmetry, |machine, refs| {
        explore_with_config_jobs(machine, refs, limits, config, jobs, obs)
    })
}

/// Resume a scope check from the snapshot at `config.checkpoint_path`
/// (see [`crate::explorer::explore_resume_with_config_jobs`]): the search
/// picks up at the checkpointed level barrier and the final result is
/// bit-identical to an uninterrupted [`check_scope_config`] run.
pub fn check_scope_resume(
    scope: &Scope,
    limits: &Limits,
    jobs: usize,
    config: &ExploreConfig,
) -> Result<Exploration<State>, PersistError> {
    check_scope_resume_obs(scope, limits, jobs, config, &Obs::noop())
}

/// [`check_scope_resume`] with an observability handle (see
/// [`check_scope_config_obs`]).
pub fn check_scope_resume_obs(
    scope: &Scope,
    limits: &Limits,
    jobs: usize,
    config: &ExploreConfig,
    obs: &Obs,
) -> Result<Exploration<State>, PersistError> {
    check_scope_resume_obs_sym(scope, limits, jobs, config, obs, true)
}

/// [`check_scope_resume_obs`] with an explicit symmetry switch (see
/// [`check_scope_config_obs_sym`]). A checkpoint must be resumed under
/// the same symmetry setting it was written with — the snapshot stores
/// canonicalized states.
pub fn check_scope_resume_obs_sym(
    scope: &Scope,
    limits: &Limits,
    jobs: usize,
    config: &ExploreConfig,
    obs: &Obs,
    symmetry: bool,
) -> Result<Exploration<State>, PersistError> {
    with_scope_monitors(scope, symmetry, |machine, refs| {
        explore_resume_with_config_jobs(machine, refs, limits, config, jobs, obs)
    })
}

/// Build the TLS machine and the boxed §5 monitors for `scope`, then hand
/// them to `run` (shared by the fresh-start and resume entry points).
fn with_scope_monitors<R>(
    scope: &Scope,
    symmetry: bool,
    run: impl FnOnce(&TlsMachine, &[Monitor<'_, State>]) -> R,
) -> R {
    let machine = if symmetry {
        TlsMachine::new(scope.clone())
    } else {
        TlsMachine::new(scope.clone()).without_symmetry()
    };
    let scope2 = scope.clone();
    let monitors = props::monitors();
    let boxed: Vec<(&str, BoxedPredicate)> = monitors
        .into_iter()
        .map(|(name, f, _expected)| {
            let scope = scope2.clone();
            (
                name,
                Box::new(move |s: &State| f(s, &scope)) as BoxedPredicate,
            )
        })
        .collect();
    let refs: Vec<Monitor<'_, State>> = boxed.iter().map(|(n, f)| (*n, f.as_ref() as _)).collect();
    run(&machine, &refs)
}

/// Properties expected to hold / fail, by monitor name.
pub fn expected_outcomes() -> Vec<(&'static str, bool)> {
    props::monitors()
        .into_iter()
        .map(|(name, _, expected)| (name, expected))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_check_agrees_with_the_paper() {
        let mut scope = Scope::counterexample();
        scope.max_messages = 2;
        let limits = Limits {
            max_states: 60_000,
            max_depth: 3,
        };
        let result = check_scope(&scope, &limits);
        assert!(result.states > 10);
        // Positive properties hold in the explored region.
        for (name, expected) in expected_outcomes() {
            let violated = result.violation(name).is_some();
            if expected {
                assert!(!violated, "{name} should hold but was violated");
            }
        }
        // The refuted ClientFinished property is violated within two
        // messages: the intruder constructs a conformant cf directly.
        assert!(
            result.violation("prop2p-cf-authentic").is_some(),
            "2' should be violated (states={}, complete={})",
            result.states,
            result.complete
        );
    }
}
