//! The model trait and the TLS instantiation.

use equitls_tls::concrete::{successors, Scope, State};
use std::hash::Hash;

/// An explicit-state transition system.
pub trait Model {
    /// The state type (hashable for the visited set).
    type State: Clone + Eq + Hash;

    /// The (single) initial state.
    fn initial(&self) -> Self::State;

    /// Labeled successors of a state.
    fn successors(&self, state: &Self::State) -> Vec<(String, Self::State)>;

    /// Serialize a state for checkpoint snapshots. Models that do not
    /// support persistence return `None` (the default), which disables
    /// checkpointing rather than producing unusable snapshots.
    fn encode_state(&self, _state: &Self::State) -> Option<Vec<u8>> {
        None
    }

    /// Inverse of [`Model::encode_state`]: decode a state from snapshot
    /// bytes. Returns `None` on malformed input or when the model does
    /// not support persistence.
    fn decode_state(&self, _bytes: &[u8]) -> Option<Self::State> {
        None
    }
}

/// The concrete TLS handshake protocol under a finite scope.
#[derive(Debug, Clone)]
pub struct TlsMachine {
    /// The exploration scope.
    pub scope: Scope,
    /// When `true`, the intruder may only fake clear-text messages (no
    /// replay, no construction) — the intruder-power ablation of
    /// DESIGN.md.
    pub weak_intruder: bool,
    /// When `true`, successor states are canonicalized under scalarset
    /// symmetry (Murφ's symmetry reduction): permutations of random
    /// numbers, session ids, and secrets collapse to one representative.
    pub symmetry: bool,
}

impl TlsMachine {
    /// A machine over the given scope with the full Dolev–Yao intruder.
    ///
    /// Scalarset symmetry reduction is **on** by default: it shrinks the
    /// state space without changing any verdict (the monitors are
    /// symmetric), so every entry point gets it unless explicitly opted
    /// out with [`TlsMachine::without_symmetry`].
    pub fn new(scope: Scope) -> Self {
        TlsMachine {
            scope,
            weak_intruder: false,
            symmetry: true,
        }
    }

    /// Disable the intruder's ciphertext replay/construction moves.
    pub fn with_weak_intruder(mut self) -> Self {
        self.weak_intruder = true;
        self
    }

    /// Enable scalarset symmetry reduction (the default — see
    /// [`TlsMachine::new`]).
    pub fn with_symmetry(mut self) -> Self {
        self.symmetry = true;
        self
    }

    /// Disable scalarset symmetry reduction: explore the raw state space
    /// (the `--no-symmetry` escape hatch, for cross-checking the reduced
    /// run against the unreduced one).
    pub fn without_symmetry(mut self) -> Self {
        self.symmetry = false;
        self
    }
}

impl Model for TlsMachine {
    type State = State;

    fn initial(&self) -> State {
        State::new()
    }

    fn successors(&self, state: &State) -> Vec<(String, State)> {
        successors(state, &self.scope)
            .into_iter()
            .filter(|step| {
                !self.weak_intruder
                    || !(step.label.starts_with("fakeKx")
                        || step.label.starts_with("fakeFin")
                        || step.label.starts_with("fakeCfin")
                        || step.label.starts_with("fakeSfin"))
            })
            .map(|step| {
                let state = if self.symmetry {
                    step.state.canonicalize()
                } else {
                    step.state
                };
                (step.label, state)
            })
            .collect()
    }

    fn encode_state(&self, state: &State) -> Option<Vec<u8>> {
        Some(equitls_tls::concrete::codec::encode_state(state))
    }

    fn decode_state(&self, bytes: &[u8]) -> Option<State> {
        equitls_tls::concrete::codec::decode_state(bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tls_machine_starts_empty_and_moves() {
        let machine = TlsMachine::new(Scope::counterexample());
        let init = machine.initial();
        assert_eq!(init.message_count(), 0);
        let succs = machine.successors(&init);
        assert!(!succs.is_empty());
    }

    #[test]
    fn symmetry_reduction_shrinks_the_state_space_and_keeps_verdicts() {
        use crate::check::check_scope;
        use crate::explorer::{explore, Limits};
        let mut scope = Scope::counterexample();
        scope.max_messages = 2;
        let limits = Limits {
            max_states: 100_000,
            max_depth: 3,
        };
        let plain = explore(
            &TlsMachine::new(scope.clone()).without_symmetry(),
            &[],
            &limits,
        );
        let reduced = explore(&TlsMachine::new(scope.clone()), &[], &limits);
        assert!(plain.complete && reduced.complete);
        assert!(
            reduced.states < plain.states,
            "symmetry must shrink: {} vs {}",
            reduced.states,
            plain.states
        );
        // Verdicts are unchanged (monitors are symmetric).
        let checked = check_scope(&scope, &limits);
        assert!(checked.violation("prop1-pms-secrecy").is_none());
        assert!(checked.violation("prop2p-cf-authentic").is_some());
    }

    #[test]
    fn weak_intruder_removes_ciphertext_fakes() {
        let scope = Scope::counterexample();
        let full = TlsMachine::new(scope.clone());
        let weak = TlsMachine::new(scope).with_weak_intruder();
        let init = full.initial();
        let full_count = full.successors(&init).len();
        let weak_count = weak.successors(&init).len();
        assert!(weak_count < full_count);
        assert!(weak
            .successors(&init)
            .iter()
            .all(|(l, _)| !l.starts_with("fakeCfin")));
    }
}
