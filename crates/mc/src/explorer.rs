//! Breadth-first explicit-state exploration with counterexample traces.
//!
//! A deliberately Murφ-shaped checker (the paper's §6 relates to Mitchell,
//! Shmatikov and Stern's finite-state analysis of SSL 3.0): enumerate
//! states breadth-first under a finite scope, check safety monitors in
//! every state, and reconstruct a labeled trace on violation.
//!
//! ## Parallel exploration
//!
//! [`explore_jobs`] runs the same search level-synchronously across `N`
//! worker threads: the current frontier is partitioned into contiguous
//! chunks, each worker expands its chunk's states into a local successor
//! batch, and the batches are merged into the dedup index **at the level
//! barrier, in frontier order** — exactly the order the sequential search
//! visits them. Successor generation (`Model::successors`) is pure, so
//! the merged result is *identical* to the sequential one for every
//! thread count: same state count and numbering, same verdicts, same
//! violation traces, same `states_per_depth`/`dedup_hits` accounting.
//! `jobs = 1` bypasses the thread machinery and is the sequential path.

use crate::model::Model;
use equitls_obs::sink::Obs;
use equitls_persist::codec::{Reader, Writer};
use equitls_persist::{read_snapshot, write_snapshot, PersistError, SnapshotKind};
use equitls_rewrite::budget::{
    panic_message, trigger_injected_panic, Budget, FaultKind, FaultPlan, FaultSite, StopReason,
    WorkerFault,
};
use std::collections::HashMap;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Very coarse per-state heap estimate (state + parent edge + index slot),
/// used only as the tripwire for [`Budget::check`]'s memory ceiling. The
/// point is to stop runaway explorations in the right order of magnitude,
/// not to account precisely.
const STATE_BYTES_ESTIMATE: u64 = 512;

/// A named safety monitor: `(name, predicate)`. A violation is recorded
/// the first time the predicate returns `false`.
pub type Monitor<'a, S> = (&'a str, &'a dyn Fn(&S) -> bool);

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum states to keep (cutoff reported, not an error).
    pub max_states: usize,
    /// Maximum BFS depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 200_000,
            max_depth: 8,
        }
    }
}

/// Robustness knobs for an exploration, on top of the structural [`Limits`]:
/// a shared [`Budget`] (deadline, heap-estimate ceiling, cancellation) and
/// an optional deterministic [`FaultPlan`] for the fault-injection tests.
///
/// Budget trips and injected stop-kind faults are observed **at merge
/// time, in frontier order** — the same position the sequential search
/// would stop at — so injected faults truncate identically at every
/// `jobs` value. Real wall-clock trips are consistent (a well-formed
/// partial result) but naturally not bit-reproducible across runs.
#[derive(Debug, Clone, Default)]
pub struct ExploreConfig {
    /// Deadline / memory / cancellation budget shared with other workers.
    pub budget: Budget,
    /// Deterministic fault injection, keyed by global state index at
    /// [`FaultSite::Successor`]. `None` in production.
    pub fault_plan: Option<FaultPlan>,
    /// When set, the search writes a crash-safe snapshot of its progress
    /// to this path at level barriers (the only points where the search
    /// state is a complete, deterministic prefix of the full run), and
    /// [`explore_resume_with_config_jobs`] can continue from it. Requires
    /// the model to implement [`Model::encode_state`]; models that do not
    /// simply skip the writes.
    pub checkpoint_path: Option<PathBuf>,
    /// Minimum seconds between checkpoint writes; `0` writes at every
    /// level barrier.
    pub checkpoint_every_secs: u64,
    /// When nonzero, print a one-line progress heartbeat to stderr at
    /// most every this-many seconds (checked at level barriers, where
    /// the tallies are consistent). Purely cosmetic: heartbeats never
    /// affect the search or its result. `0` (the default) is silent.
    pub heartbeat_every_secs: u64,
}

/// Resolve a `jobs` request: `0` means "use the machine's available
/// parallelism", anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// A safety-property violation with its witness trace.
#[derive(Debug, Clone)]
pub struct Violation<S> {
    /// The violated monitor's name.
    pub property: String,
    /// Labeled steps from the initial state to the violating state.
    pub trace: Vec<(String, S)>,
    /// BFS depth of the violating state.
    pub depth: usize,
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct Exploration<S> {
    /// Distinct states visited.
    pub states: usize,
    /// Deepest level fully or partially expanded.
    pub depth_reached: usize,
    /// Whether the search exhausted the state space within limits.
    pub complete: bool,
    /// Violations found (first per property).
    pub violations: Vec<Violation<S>>,
    /// States visited per BFS level.
    pub states_per_depth: Vec<usize>,
    /// Successor states that were already known (hash-table dedup hits).
    pub dedup_hits: usize,
    /// Why the search stopped before exhausting the space, if it did.
    /// `None` iff [`Exploration::complete`] is `true`.
    pub stop_reason: Option<StopReason>,
    /// Worker faults (panicking successor computations) that were
    /// contained during the search, in frontier order.
    pub faults: Vec<WorkerFault>,
    /// Wall-clock time.
    pub duration: Duration,
}

impl<S> Exploration<S> {
    /// `true` when no monitor was violated.
    pub fn all_hold(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violation for `property`, if found.
    pub fn violation(&self, property: &str) -> Option<&Violation<S>> {
        self.violations.iter().find(|v| v.property == property)
    }

    /// Distinct states per wall-clock second.
    ///
    /// Sub-millisecond runs are too short for the wall clock to carry
    /// signal: dividing a handful of states by a few microseconds
    /// extrapolates absurd throughput. The divisor is clamped to 1 ms,
    /// making the result a *lower bound* on very short runs; a zero
    /// duration (the clock did not advance) reports 0.
    pub fn states_per_sec(&self) -> f64 {
        const MIN_MEASURABLE_SECS: f64 = 1e-3;
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 || self.states == 0 {
            0.0
        } else {
            self.states as f64 / secs.max(MIN_MEASURABLE_SECS)
        }
    }

    /// Fraction of generated successors that were duplicates, in `[0, 1]`.
    pub fn dedup_hit_rate(&self) -> f64 {
        // Every non-initial state was generated once; dedup hits are the rest.
        let generated = self.dedup_hits + self.states.saturating_sub(1);
        if generated == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / generated as f64
        }
    }
}

/// Explore `model` breadth-first, checking `monitors` in every state.
///
/// Each monitor is `(name, predicate)`; a violation is recorded the first
/// time a predicate returns `false`, and the search continues (to find
/// violations of the other monitors).
pub fn explore<M: Model>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
) -> Exploration<M::State> {
    explore_with_obs(model, monitors, limits, &Obs::noop())
}

/// [`explore`] with an observability handle: emits a span per BFS level,
/// frontier-size and dedup-rate gauges, and a final states/sec gauge.
pub fn explore_with_obs<M: Model>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    obs: &Obs,
) -> Exploration<M::State> {
    explore_with_config(model, monitors, limits, &ExploreConfig::default(), obs)
}

/// [`explore`] under an [`ExploreConfig`] budget: the search stops
/// cooperatively when the deadline passes, the heap-estimate ceiling is
/// crossed, or the shared cancel token fires, and returns a partial but
/// internally consistent [`Exploration`] with a typed
/// [`Exploration::stop_reason`].
pub fn explore_with_config<M: Model>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    obs: &Obs,
) -> Exploration<M::State> {
    explore_core(model, monitors, limits, config, obs, expand_level_seq)
}

/// [`explore`] on `jobs` worker threads (`0` = available parallelism).
///
/// Deterministic: for any `jobs`, the result (state count, verdicts,
/// traces, per-level accounting) is identical to the sequential search.
/// See the module docs for how the merge keeps it so.
pub fn explore_jobs<M>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    jobs: usize,
) -> Exploration<M::State>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    explore_with_obs_jobs(model, monitors, limits, jobs, &Obs::noop())
}

/// [`explore_jobs`] with an observability handle.
pub fn explore_with_obs_jobs<M>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    jobs: usize,
    obs: &Obs,
) -> Exploration<M::State>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    explore_with_config_jobs(
        model,
        monitors,
        limits,
        &ExploreConfig::default(),
        jobs,
        obs,
    )
}

/// [`explore_with_config`] on `jobs` worker threads (`0` = available
/// parallelism). Injected faults and the structural limits truncate at
/// the identical `(parent, successor)` position for every `jobs` value;
/// real wall-clock budget trips yield a consistent partial result whose
/// exact cut point depends on timing.
pub fn explore_with_config_jobs<M>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    jobs: usize,
    obs: &Obs,
) -> Exploration<M::State>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    let jobs = resolve_jobs(jobs);
    explore_core(
        model,
        monitors,
        limits,
        config,
        obs,
        move |model, search, frontier, depth, limits| {
            expand_level_par(model, search, frontier, depth, limits, jobs)
        },
    )
}

/// Check every monitor against state `idx`, recording the first violation
/// per property with its reconstructed trace.
fn check_monitors<S: Clone>(
    monitors: &[Monitor<'_, S>],
    idx: usize,
    depth: usize,
    states: &[S],
    parents: &[(usize, String)],
    violations: &mut Vec<Violation<S>>,
    violated: &mut Vec<String>,
) {
    for (name, monitor) in monitors {
        if violated.iter().any(|v| v == name) {
            continue;
        }
        if !monitor(&states[idx]) {
            violated.push((*name).to_string());
            // Reconstruct the trace.
            let mut trace = Vec::new();
            let mut cur = idx;
            while cur != 0 {
                let (parent, label) = &parents[cur];
                trace.push((label.clone(), states[cur].clone()));
                cur = *parent;
            }
            trace.reverse();
            violations.push(Violation {
                property: name.to_string(),
                trace,
                depth,
            });
        }
    }
}

/// Mutable search state shared by the sequential and parallel paths.
struct Search<'m, S> {
    monitors: &'m [Monitor<'m, S>],
    config: &'m ExploreConfig,
    states: Vec<S>,
    parents: Vec<(usize, String)>,
    index: HashMap<S, usize>,
    violations: Vec<Violation<S>>,
    violated: Vec<String>,
    next_frontier: Vec<usize>,
    dedup_hits: usize,
    faults: Vec<WorkerFault>,
    /// Profiling accumulators, split by phase: wall time spent generating
    /// successors vs. merging them into the dedup index. Only advanced
    /// when `timed` (i.e. the obs handle is enabled) — the clock reads
    /// are cheap but not free, and a silent run should pay nothing.
    timed: bool,
    succ_time: Duration,
    dedup_time: Duration,
}

impl<S: Clone + Eq + Hash> Search<'_, S> {
    /// Coarse heap estimate for the budget's memory tripwire.
    fn heap_estimate(&self) -> u64 {
        self.states.len() as u64 * STATE_BYTES_ESTIMATE
    }

    /// The budget / fault-injection gate run **before** merging frontier
    /// entry `idx`, in frontier order on every path. Injected stop-kind
    /// faults fire first (deterministic at any `jobs`), then the real
    /// budget. Returns the reason to truncate, if any.
    fn pre_merge_stop(&mut self, idx: usize) -> Option<StopReason> {
        if let Some(plan) = &self.config.fault_plan {
            match plan.fault_for(FaultSite::Successor, "", idx as u64) {
                Some(FaultKind::DeadlineExpiry) => return Some(StopReason::DeadlineExceeded),
                Some(FaultKind::FuelStarvation) => return Some(StopReason::FuelExhausted),
                Some(FaultKind::Cancel) => {
                    self.config.budget.cancel();
                    return Some(StopReason::Cancelled);
                }
                // Panic faults fire in the successor computation itself;
                // IoError only means something to persist writers.
                Some(FaultKind::Panic) | Some(FaultKind::IoError) | None => {}
            }
        }
        self.config.budget.check(self.heap_estimate()).err()
    }

    /// Merge one frontier entry's successor batch into the dedup index,
    /// in generation order. Returns `Some(StateCapReached)` when the
    /// `max_states` cap refused a *new* state — the signal to truncate
    /// the search. Duplicate successors never trigger truncation (they
    /// cost no storage), so a cap equal to the true state count still
    /// reports a complete exploration.
    fn merge_entry(
        &mut self,
        parent: usize,
        succs: Vec<(String, S)>,
        depth: usize,
        limits: &Limits,
    ) -> Option<StopReason> {
        for (label, succ) in succs {
            if self.index.contains_key(&succ) {
                self.dedup_hits += 1;
                continue;
            }
            if self.states.len() >= limits.max_states {
                return Some(StopReason::StateCapReached);
            }
            let new_idx = self.states.len();
            self.states.push(succ.clone());
            self.parents.push((parent, label));
            self.index.insert(succ, new_idx);
            check_monitors(
                self.monitors,
                new_idx,
                depth,
                &self.states,
                &self.parents,
                &mut self.violations,
                &mut self.violated,
            );
            self.next_frontier.push(new_idx);
        }
        None
    }
}

/// Compute the successors of the state at global index `idx`, containing
/// any panic (organic, or injected by the fault plan) as a typed
/// [`WorkerFault`] instead of letting it poison sibling workers. A
/// faulted state contributes no successors; the search continues.
fn compute_succs<M: Model>(
    model: &M,
    state: &M::State,
    idx: usize,
    plan: Option<&FaultPlan>,
) -> Result<Vec<(String, M::State)>, WorkerFault> {
    catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = plan {
            if plan.fault_for(FaultSite::Successor, "", idx as u64) == Some(FaultKind::Panic) {
                trigger_injected_panic(FaultSite::Successor, "", idx as u64);
            }
        }
        model.successors(state)
    }))
    .map_err(|payload| WorkerFault {
        site: format!("successor:{idx}"),
        message: panic_message(&*payload),
    })
}

/// Expand one level sequentially: generate and merge entry by entry, so
/// no successors are computed past the truncation point.
fn expand_level_seq<M: Model>(
    model: &M,
    search: &mut Search<'_, M::State>,
    frontier: &[usize],
    depth: usize,
    limits: &Limits,
) -> Option<StopReason> {
    for &idx in frontier {
        if let Some(stop) = search.pre_merge_stop(idx) {
            return Some(stop);
        }
        let current = search.states[idx].clone();
        let gen_start = search.timed.then(Instant::now);
        let succs = match compute_succs(model, &current, idx, search.config.fault_plan.as_ref()) {
            Ok(succs) => succs,
            Err(fault) => {
                search.faults.push(fault);
                Vec::new()
            }
        };
        let merge_start = search.timed.then(Instant::now);
        if let (Some(g), Some(m)) = (gen_start, merge_start) {
            search.succ_time += m.duration_since(g);
        }
        let stop = search.merge_entry(idx, succs, depth, limits);
        if let Some(m) = merge_start {
            search.dedup_time += m.elapsed();
        }
        if let Some(stop) = stop {
            return Some(stop);
        }
    }
    None
}

/// Expand one level on `jobs` scoped worker threads, then merge the
/// batches at the barrier in frontier order. Returns `Some(reason)` on
/// truncation — detected at the same `(parent, successor)` position the
/// sequential expansion would stop at, so the accounting agrees. Worker
/// panics are contained *inside* each worker ([`compute_succs`]), and the
/// resulting faults are recorded at merge time in frontier order, so a
/// poisoned entry never disturbs its siblings and the fault list is
/// identical at every `jobs` value.
fn expand_level_par<M>(
    model: &M,
    search: &mut Search<'_, M::State>,
    frontier: &[usize],
    depth: usize,
    limits: &Limits,
    jobs: usize,
) -> Option<StopReason>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    if jobs <= 1 || frontier.len() < 2 {
        return expand_level_seq(model, search, frontier, depth, limits);
    }
    // One successor result per frontier entry, grouped by worker chunk.
    type Batch<S> = Vec<Result<Vec<(String, S)>, WorkerFault>>;
    let workers = jobs.min(frontier.len());
    let chunk_len = frontier.len().div_ceil(workers);
    let gen_start = search.timed.then(Instant::now);
    let batches: Vec<Batch<M::State>> = {
        let states: &[M::State] = &search.states;
        let plan = search.config.fault_plan.as_ref();
        std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|&idx| compute_succs(model, &states[idx], idx, plan))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("explorer worker panicked"))
                .collect()
        })
    };
    // Phase accounting is wall-clock per phase: the scoped-thread block
    // above is pure successor generation, the merge loop below is pure
    // dedup/monitor work on the main thread.
    let merge_start = search.timed.then(Instant::now);
    if let (Some(g), Some(m)) = (gen_start, merge_start) {
        search.succ_time += m.duration_since(g);
    }
    let mut stop = None;
    'merge: for (chunk, batch) in frontier.chunks(chunk_len).zip(batches) {
        for (&idx, succs) in chunk.iter().zip(batch) {
            if let Some(reason) = search.pre_merge_stop(idx) {
                stop = Some(reason);
                break 'merge;
            }
            let succs = match succs {
                Ok(succs) => succs,
                Err(fault) => {
                    search.faults.push(fault);
                    Vec::new()
                }
            };
            if let Some(reason) = search.merge_entry(idx, succs, depth, limits) {
                stop = Some(reason);
                break 'merge;
            }
        }
    }
    if let Some(m) = merge_start {
        search.dedup_time += m.elapsed();
    }
    stop
}

/// Everything the BFS driver needs to start (or restart) at a level
/// barrier: the visited prefix, the frontier to expand next, and the
/// accounting so far. A fresh search and a decoded checkpoint both reduce
/// to this.
struct SearchSeed<S> {
    states: Vec<S>,
    parents: Vec<(usize, String)>,
    violations: Vec<Violation<S>>,
    violated: Vec<String>,
    dedup_hits: usize,
    faults: Vec<WorkerFault>,
    frontier: Vec<usize>,
    states_per_depth: Vec<usize>,
    depth: usize,
}

/// The seed of a fresh search: the initial state alone, monitors already
/// checked against it.
fn initial_seed<M: Model>(model: &M, monitors: &[Monitor<'_, M::State>]) -> SearchSeed<M::State> {
    let mut seed = SearchSeed {
        states: vec![model.initial()],
        parents: vec![(usize::MAX, String::new())],
        violations: Vec::new(),
        violated: Vec::new(),
        dedup_hits: 0,
        faults: Vec::new(),
        frontier: vec![0],
        states_per_depth: vec![1],
        depth: 0,
    };
    check_monitors(
        monitors,
        0,
        0,
        &seed.states,
        &seed.parents,
        &mut seed.violations,
        &mut seed.violated,
    );
    seed
}

/// The per-level search state at a barrier — the pieces that live
/// outside [`Search`] during the BFS loop, bundled for checkpointing.
struct Barrier<'a> {
    frontier: &'a [usize],
    states_per_depth: &'a [usize],
    depth: usize,
}

/// Serialize the barrier state into a snapshot payload. Returns `None`
/// when the model does not support state encoding.
fn encode_checkpoint<M: Model>(
    model: &M,
    search: &Search<'_, M::State>,
    barrier: &Barrier<'_>,
) -> Option<Vec<u8>> {
    let mut w = Writer::new();
    w.usize(barrier.depth);
    w.usize(search.dedup_hits);
    w.usize(barrier.states_per_depth.len());
    for &n in barrier.states_per_depth {
        w.usize(n);
    }
    w.usize(search.states.len());
    for (state, (parent, label)) in search.states.iter().zip(&search.parents) {
        w.bytes(&model.encode_state(state)?);
        w.u64(if *parent == usize::MAX {
            u64::MAX
        } else {
            *parent as u64
        });
        w.str(label);
    }
    w.usize(barrier.frontier.len());
    for &idx in barrier.frontier {
        w.usize(idx);
    }
    // Violations are stored as (property, depth, violating-state index);
    // the witness trace is rebuilt from the parent edges on load.
    w.usize(search.violations.len());
    for v in &search.violations {
        w.str(&v.property);
        w.usize(v.depth);
        let idx = v
            .trace
            .last()
            .and_then(|(_, s)| search.index.get(s).copied())
            .unwrap_or(0);
        w.usize(idx);
    }
    w.usize(search.faults.len());
    for f in &search.faults {
        w.str(&f.site);
        w.str(&f.message);
    }
    Some(w.into_bytes())
}

/// Decode and validate a snapshot payload back into a [`SearchSeed`].
/// Every index is bounds-checked and every parent edge must point
/// backwards (the BFS insertion order), so a payload that passed the CRC
/// but is internally inconsistent still yields a typed error.
fn decode_checkpoint<M: Model>(
    model: &M,
    payload: &[u8],
) -> Result<SearchSeed<M::State>, PersistError> {
    let mut r = Reader::new(payload);
    let depth = r.usize()?;
    let dedup_hits = r.usize()?;
    let mut states_per_depth = Vec::new();
    for _ in 0..r.seq_len(8)? {
        states_per_depth.push(r.usize()?);
    }
    if states_per_depth.len() != depth + 1 {
        return Err(PersistError::Malformed(format!(
            "{} per-level tallies for depth {depth}",
            states_per_depth.len()
        )));
    }
    let n_states = r.seq_len(17)?;
    let mut states = Vec::with_capacity(n_states);
    let mut parents = Vec::with_capacity(n_states);
    for i in 0..n_states {
        let state = model.decode_state(r.bytes()?).ok_or_else(|| {
            PersistError::Malformed(format!("state {i} does not decode for this model"))
        })?;
        let parent = r.u64()?;
        let label = r.str()?;
        let parent = if i == 0 {
            if parent != u64::MAX {
                return Err(PersistError::Malformed("root state has a parent".into()));
            }
            usize::MAX
        } else if parent < i as u64 {
            parent as usize
        } else {
            return Err(PersistError::Malformed(format!(
                "state {i} has forward parent {parent}"
            )));
        };
        states.push(state);
        parents.push((parent, label));
    }
    if states_per_depth.iter().sum::<usize>() != n_states {
        return Err(PersistError::Malformed(
            "per-level tallies do not sum to the state count".into(),
        ));
    }
    let read_idx = |r: &mut Reader, what: &str| -> Result<usize, PersistError> {
        let idx = r.usize()?;
        if idx >= n_states {
            return Err(PersistError::Malformed(format!(
                "{what} index {idx} out of range ({n_states} states)"
            )));
        }
        Ok(idx)
    };
    let mut frontier = Vec::new();
    for _ in 0..r.seq_len(8)? {
        frontier.push(read_idx(&mut r, "frontier")?);
    }
    let mut violations = Vec::new();
    let mut violated = Vec::new();
    for _ in 0..r.seq_len(24)? {
        let property = r.str()?;
        let vdepth = r.usize()?;
        let idx = read_idx(&mut r, "violation")?;
        let mut trace = Vec::new();
        let mut cur = idx;
        while cur != 0 {
            let (parent, label) = &parents[cur];
            trace.push((label.clone(), states[cur].clone()));
            cur = *parent;
        }
        trace.reverse();
        violated.push(property.clone());
        violations.push(Violation {
            property,
            trace,
            depth: vdepth,
        });
    }
    let mut faults = Vec::new();
    for _ in 0..r.seq_len(16)? {
        faults.push(WorkerFault {
            site: r.str()?,
            message: r.str()?,
        });
    }
    if !r.is_empty() {
        return Err(PersistError::Malformed(format!(
            "{} trailing bytes after snapshot",
            r.remaining()
        )));
    }
    Ok(SearchSeed {
        states,
        parents,
        violations,
        violated,
        dedup_hits,
        faults,
        frontier,
        states_per_depth,
        depth,
    })
}

/// Write a checkpoint at a level barrier, honoring the throttle. Write
/// failures are contained (the search result is still correct without a
/// snapshot) and surface as a `persist.snapshot_failed` counter.
fn checkpoint_at_barrier<M: Model>(
    model: &M,
    search: &Search<'_, M::State>,
    barrier: &Barrier<'_>,
    obs: &Obs,
    last_write: &mut Instant,
    writes: &mut u64,
    force: bool,
) {
    let Some(path) = &search.config.checkpoint_path else {
        return;
    };
    let every = search.config.checkpoint_every_secs;
    if !force && every > 0 && last_write.elapsed().as_secs() < every {
        return;
    }
    let Some(payload) = encode_checkpoint(model, search, barrier) else {
        return;
    };
    // Deterministic persist-fault injection: the write index counts
    // *attempts* (in barrier order, jobs-independent), so a planned
    // `FaultSite::PersistWrite` at scope "explorer" fails the same
    // barrier's snapshot at every jobs value. Like a real write error,
    // an injected one degrades crash-safety only — counted, not raised.
    let n = *writes;
    *writes += 1;
    let injected = search
        .config
        .fault_plan
        .as_ref()
        .is_some_and(|plan| plan.persist_write_fails("explorer", n));
    if injected {
        obs.counter("persist.fault_injected", 1);
        obs.counter("persist.snapshot_failed", 1);
        return;
    }
    match write_snapshot(path, SnapshotKind::Explorer, &payload, obs) {
        Ok(_) => *last_write = Instant::now(),
        Err(_) => obs.counter("persist.snapshot_failed", 1),
    }
}

/// The level-synchronous BFS driver, parameterized over how a level is
/// expanded (sequentially, or fanned out over worker threads) and over
/// its starting point (a fresh search, or a decoded checkpoint).
fn explore_driver<M, E>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    obs: &Obs,
    mut expand: E,
    seed: SearchSeed<M::State>,
) -> Exploration<M::State>
where
    M: Model,
    E: for<'m> FnMut(&M, &mut Search<'m, M::State>, &[usize], usize, &Limits) -> Option<StopReason>,
{
    let start = Instant::now();
    let mut search = Search {
        monitors,
        config,
        states: seed.states,
        parents: seed.parents,
        index: HashMap::new(),
        violations: seed.violations,
        violated: seed.violated,
        next_frontier: Vec::new(),
        dedup_hits: seed.dedup_hits,
        faults: seed.faults,
        timed: obs.enabled(),
        succ_time: Duration::ZERO,
        dedup_time: Duration::ZERO,
    };
    for (idx, state) in search.states.iter().enumerate() {
        search.index.insert(state.clone(), idx);
    }
    let mut frontier = seed.frontier;
    let mut states_per_depth = seed.states_per_depth;
    let mut depth = seed.depth;
    let mut last_checkpoint = Instant::now();
    let mut checkpoint_writes = 0u64;
    let mut last_heartbeat = Instant::now();
    // A budget already spent (cancelled before start, expired deadline)
    // stops the search before the first expansion: one state, zero work.
    let mut stop: Option<StopReason> = config.budget.check(search.heap_estimate()).err();

    while stop.is_none() && !frontier.is_empty() && depth < limits.max_depth {
        depth += 1;
        let _level = obs.span(&format!("mc.level:{depth}"));
        let level_start = search.states.len();
        let level_faults = search.faults.len();
        let (succ_before, dedup_before) = (search.succ_time, search.dedup_time);
        let dedup_hits_before = search.dedup_hits;
        stop = expand(model, &mut search, &frontier, depth, limits);
        states_per_depth.push(search.states.len() - level_start);
        obs.gauge("mc.frontier", search.next_frontier.len() as f64);
        obs.counter("mc.states", search.next_frontier.len() as u64);
        // Per-level dedup hits: the explorer's analogue of a cache hit —
        // how many generated successors were already-seen states. The
        // concrete explorer never rewrites (successors are computed by
        // direct term construction), so this, not a normal-form cache,
        // is where its redundant work is saved.
        let level_dedup_hits = (search.dedup_hits - dedup_hits_before) as u64;
        if level_dedup_hits > 0 {
            obs.counter(&format!("mc.dedup_hits:{depth}"), level_dedup_hits);
        }
        if search.timed {
            // Per-level phase split: successor generation vs. merge/dedup
            // (suffixed like the rewrite engine's per-rule counters, so
            // prefix queries rank levels by cost).
            let succ_us = (search.succ_time - succ_before).as_micros() as u64;
            let dedup_us = (search.dedup_time - dedup_before).as_micros() as u64;
            if succ_us > 0 {
                obs.counter(&format!("mc.succ_us:{depth}"), succ_us);
            }
            if dedup_us > 0 {
                obs.counter(&format!("mc.dedup_us:{depth}"), dedup_us);
            }
        }
        let new_faults = search.faults.len() - level_faults;
        if new_faults > 0 {
            obs.counter("mc.worker_fault", new_faults as u64);
        }
        frontier = std::mem::take(&mut search.next_frontier);
        let every = config.heartbeat_every_secs;
        if every > 0 && last_heartbeat.elapsed().as_secs() >= every {
            last_heartbeat = Instant::now();
            // Rates go through the shared guard: a heartbeat early in a
            // fast run omits the rate instead of fabricating one.
            let rate =
                equitls_obs::summary::rate_per_sec(search.states.len() as u64, start.elapsed())
                    .map(|r| format!(", {r:.0} states/s"))
                    .unwrap_or_default();
            eprintln!(
                "mc: depth {depth}: {} states, frontier {}, dedup {} ({:.1?} elapsed{rate})",
                search.states.len(),
                frontier.len(),
                search.dedup_hits,
                start.elapsed(),
            );
        }
        // The level barrier is the only point where the search state is a
        // complete, deterministic prefix of the full run — checkpoint
        // here. A mid-level stop leaves the previous barrier's snapshot
        // in place; the resumed run recomputes the interrupted level and
        // lands on the identical result.
        if stop.is_none() {
            let barrier = Barrier {
                frontier: &frontier,
                states_per_depth: &states_per_depth,
                depth,
            };
            checkpoint_at_barrier(
                model,
                &search,
                &barrier,
                obs,
                &mut last_checkpoint,
                &mut checkpoint_writes,
                false,
            );
        }
    }
    // A frontier left unexpanded by the depth cap is also an early stop.
    if stop.is_none() && !frontier.is_empty() {
        stop = Some(StopReason::DepthCapReached);
    }
    // On a clean end (space exhausted or depth-capped) force a final
    // write even if the throttle suppressed the last barrier, so the
    // snapshot on disk replays to the finished result.
    if stop.is_none() || stop == Some(StopReason::DepthCapReached) {
        let barrier = Barrier {
            frontier: &frontier,
            states_per_depth: &states_per_depth,
            depth,
        };
        checkpoint_at_barrier(
            model,
            &search,
            &barrier,
            obs,
            &mut last_checkpoint,
            &mut checkpoint_writes,
            true,
        );
    }
    let result = Exploration {
        states: search.states.len(),
        depth_reached: depth,
        complete: stop.is_none(),
        violations: search.violations,
        states_per_depth,
        dedup_hits: search.dedup_hits,
        stop_reason: stop,
        faults: search.faults,
        duration: start.elapsed(),
    };
    if obs.enabled() {
        obs.gauge("mc.states_per_sec", result.states_per_sec());
        obs.gauge("mc.dedup_hit_rate", result.dedup_hit_rate());
    }
    result
}

/// The fresh-start driver: seed a new search and run it.
fn explore_core<M, E>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    obs: &Obs,
    expand: E,
) -> Exploration<M::State>
where
    M: Model,
    E: for<'m> FnMut(&M, &mut Search<'m, M::State>, &[usize], usize, &Limits) -> Option<StopReason>,
{
    let seed = initial_seed(model, monitors);
    explore_driver(model, monitors, limits, config, obs, expand, seed)
}

/// Resume an exploration from the snapshot at `config.checkpoint_path`
/// on `jobs` worker threads, continuing to checkpoint as it goes.
///
/// The search restarts at the checkpointed level barrier and finishes the
/// run; because checkpoints only land at barriers (deterministic prefixes
/// of the full run), the final [`Exploration`] is bit-identical to an
/// uninterrupted run at every `jobs` value. Errors are typed: a missing
/// path, an unreadable file, a truncated or corrupted snapshot, and an
/// internally inconsistent payload are each reported as their own
/// [`PersistError`] — never deserialized into garbage.
pub fn explore_resume_with_config_jobs<M>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    jobs: usize,
    obs: &Obs,
) -> Result<Exploration<M::State>, PersistError>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    let path = config
        .checkpoint_path
        .as_ref()
        .ok_or(PersistError::MissingPath)?;
    let (_meta, payload) = read_snapshot(path, SnapshotKind::Explorer, obs)?;
    let seed = decode_checkpoint(model, &payload)?;
    let jobs = resolve_jobs(jobs);
    Ok(explore_driver(
        model,
        monitors,
        limits,
        config,
        obs,
        move |model, search, frontier, depth, limits| {
            expand_level_par(model, search, frontier, depth, limits, jobs)
        },
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    /// A toy counter model: increments up to 5, with a "reset" self-loop.
    struct Counter;

    impl Model for Counter {
        type State = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn successors(&self, s: &u8) -> Vec<(String, u8)> {
            if *s >= 5 {
                vec![]
            } else {
                vec![(format!("inc->{}", s + 1), s + 1), ("reset".into(), 0)]
            }
        }

        fn encode_state(&self, s: &u8) -> Option<Vec<u8>> {
            Some(vec![*s])
        }

        fn decode_state(&self, bytes: &[u8]) -> Option<u8> {
            match bytes {
                [s] => Some(*s),
                _ => None,
            }
        }
    }

    /// A 5×5 grid walked right/down: wide frontiers and diamond-shaped
    /// dedup, so the parallel path genuinely fans out.
    struct Grid;

    impl Model for Grid {
        type State = (u8, u8);

        fn initial(&self) -> (u8, u8) {
            (0, 0)
        }

        fn successors(&self, &(x, y): &(u8, u8)) -> Vec<(String, (u8, u8))> {
            let mut out = Vec::new();
            if x < 4 {
                out.push((format!("right@{x},{y}"), (x + 1, y)));
            }
            if y < 4 {
                out.push((format!("down@{x},{y}"), (x, y + 1)));
            }
            out
        }

        fn encode_state(&self, &(x, y): &(u8, u8)) -> Option<Vec<u8>> {
            Some(vec![x, y])
        }

        fn decode_state(&self, bytes: &[u8]) -> Option<(u8, u8)> {
            match bytes {
                [x, y] => Some((*x, *y)),
                _ => None,
            }
        }
    }

    #[test]
    fn exhausts_a_small_space() {
        let result = explore(&Counter, &[], &Limits::default());
        assert_eq!(result.states, 6);
        assert!(result.complete);
        assert!(result.all_hold());
    }

    #[test]
    fn finds_a_violation_with_a_minimal_trace() {
        let below_three = |s: &u8| *s < 3;
        let result = explore(
            &Counter,
            &[("below-three", &below_three)],
            &Limits::default(),
        );
        let v = result.violation("below-three").expect("violated");
        assert_eq!(v.depth, 3);
        assert_eq!(v.trace.len(), 3);
        assert_eq!(*v.trace.last().map(|(_, s)| s).unwrap(), 3);
        assert!(!result.all_hold());
    }

    #[test]
    fn respects_state_limits() {
        let limits = Limits {
            max_states: 3,
            max_depth: 10,
        };
        let result = explore(&Counter, &[], &limits);
        assert!(result.states <= 4);
        assert!(!result.complete);
    }

    #[test]
    fn respects_depth_limits() {
        let limits = Limits {
            max_states: 1000,
            max_depth: 2,
        };
        let result = explore(&Counter, &[], &limits);
        assert_eq!(result.depth_reached, 2);
        assert!(!result.complete);
        assert_eq!(result.states_per_depth.len(), 3);
    }

    #[test]
    fn counts_dedup_hits_and_rates() {
        // Every "reset" successor re-reaches state 0, and every "inc"
        // successor beyond the first visit of its target is a duplicate.
        let result = explore(&Counter, &[], &Limits::default());
        assert!(result.dedup_hits > 0);
        let rate = result.dedup_hit_rate();
        assert!(rate > 0.0 && rate < 1.0, "rate {rate}");
        // 6 distinct states, so generated = dedup_hits + 5.
        assert_eq!(
            (result.dedup_hits as f64 / (result.dedup_hits + 5) as f64).to_bits(),
            rate.to_bits()
        );
    }

    #[test]
    fn obs_variant_emits_levels_and_gauges() {
        use equitls_obs::sink::{Obs, RecordingSink};
        use equitls_obs::summary::MetricsSummary;
        use std::sync::Arc;

        let recorder = Arc::new(RecordingSink::new());
        let obs = Obs::new(recorder.clone());
        let result = explore_with_obs(&Counter, &[], &Limits::default(), &obs);
        let summary = MetricsSummary::from_events(&recorder.events());
        // One span per expanded BFS level.
        let levels: usize = (1..=result.depth_reached)
            .filter(|d| summary.span(&format!("mc.level:{d}")).is_some())
            .count();
        assert_eq!(levels, result.depth_reached);
        assert_eq!(
            summary.counter_total("mc.states") as usize,
            result.states - 1,
            "counter covers every non-initial state"
        );
        assert!(summary.gauge("mc.states_per_sec").is_some());
        assert!(summary.gauge("mc.dedup_hit_rate").is_some());
    }

    #[test]
    fn reports_one_violation_per_property() {
        let never = |_: &u8| false;
        let result = explore(&Counter, &[("never", &never)], &Limits::default());
        assert_eq!(result.violations.len(), 1);
        assert_eq!(result.violations[0].depth, 0);
        assert!(result.violations[0].trace.is_empty());
    }

    #[test]
    fn truncation_accounting_is_consistent_at_every_cap() {
        // The Counter space has exactly 6 states. Wherever the cap lands
        // — first frontier entry, mid-level, exactly the true count —
        // the books must balance.
        for max_states in 1..=8 {
            let limits = Limits {
                max_states,
                max_depth: 10,
            };
            let result = explore(&Counter, &[], &limits);
            assert_eq!(
                result.states,
                max_states.min(6),
                "cap {max_states}: never exceeds the cap, never undershoots it"
            );
            assert_eq!(
                result.states_per_depth.iter().sum::<usize>(),
                result.states,
                "cap {max_states}: per-level counts sum to the state count"
            );
            assert_eq!(
                result.states_per_depth.len(),
                result.depth_reached + 1,
                "cap {max_states}: one level entry per reached depth"
            );
            assert_eq!(
                result.complete,
                result.states == 6,
                "cap {max_states}: complete iff the space was exhausted"
            );
        }
    }

    #[test]
    fn truncation_accounting_matches_on_wide_frontiers() {
        // On the grid the cap can land on any frontier entry of a wide
        // level; parallel merge must truncate at the identical point.
        for max_states in [1, 5, 7, 12, 24, 25, 40] {
            let limits = Limits {
                max_states,
                max_depth: 16,
            };
            let seq = explore(&Grid, &[], &limits);
            for jobs in [2, 4] {
                let par = explore_jobs(&Grid, &[], &limits, jobs);
                assert_eq!(par.states, seq.states, "cap {max_states} jobs {jobs}");
                assert_eq!(par.complete, seq.complete, "cap {max_states} jobs {jobs}");
                assert_eq!(
                    par.states_per_depth, seq.states_per_depth,
                    "cap {max_states} jobs {jobs}"
                );
                assert_eq!(
                    par.dedup_hits, seq.dedup_hits,
                    "cap {max_states} jobs {jobs}"
                );
            }
        }
    }

    #[test]
    fn parallel_exploration_is_deterministic() {
        let on_diagonal = |s: &(u8, u8)| s.0 != s.1 || s.0 < 3;
        let monitors: [Monitor<'_, (u8, u8)>; 1] = [("off-diagonal", &on_diagonal)];
        let seq = explore(&Grid, &monitors, &Limits::default());
        assert!(!seq.all_hold());
        for jobs in [1, 2, 4, 8] {
            let par = explore_jobs(&Grid, &monitors, &Limits::default(), jobs);
            assert_eq!(par.states, seq.states, "jobs {jobs}");
            assert_eq!(par.complete, seq.complete, "jobs {jobs}");
            assert_eq!(par.depth_reached, seq.depth_reached, "jobs {jobs}");
            assert_eq!(par.states_per_depth, seq.states_per_depth, "jobs {jobs}");
            assert_eq!(par.dedup_hits, seq.dedup_hits, "jobs {jobs}");
            assert_eq!(par.violations.len(), seq.violations.len(), "jobs {jobs}");
            for (pv, sv) in par.violations.iter().zip(&seq.violations) {
                assert_eq!(pv.property, sv.property, "jobs {jobs}");
                assert_eq!(pv.depth, sv.depth, "jobs {jobs}");
                assert_eq!(pv.trace, sv.trace, "jobs {jobs}");
            }
        }
    }

    #[test]
    fn states_per_sec_is_guarded_on_short_runs() {
        let mk = |states: usize, duration: Duration| Exploration::<u8> {
            states,
            depth_reached: 1,
            complete: true,
            violations: Vec::new(),
            states_per_depth: vec![1],
            dedup_hits: 0,
            stop_reason: None,
            faults: Vec::new(),
            duration,
        };
        // A zero-length run cannot report a rate.
        assert_eq!(mk(100, Duration::ZERO).states_per_sec(), 0.0);
        // A 10 µs run must not extrapolate to 10M states/sec: the divisor
        // clamps at 1 ms, bounding the result.
        let fast = mk(100, Duration::from_micros(10)).states_per_sec();
        assert!((fast - 100_000.0).abs() < 1e-6, "got {fast}");
        // Runs long enough to measure divide normally.
        let slow = mk(100, Duration::from_secs(2)).states_per_sec();
        assert!((slow - 50.0).abs() < 1e-9, "got {slow}");
        // No states, no rate.
        assert_eq!(mk(0, Duration::from_secs(1)).states_per_sec(), 0.0);
    }

    #[test]
    fn resolve_jobs_zero_means_available_parallelism() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(7), 7);
    }

    #[test]
    fn structural_stops_carry_typed_reasons() {
        let capped = explore(
            &Counter,
            &[],
            &Limits {
                max_states: 3,
                max_depth: 10,
            },
        );
        assert_eq!(capped.stop_reason, Some(StopReason::StateCapReached));
        assert!(!capped.complete);

        let shallow = explore(
            &Counter,
            &[],
            &Limits {
                max_states: 1000,
                max_depth: 2,
            },
        );
        assert_eq!(shallow.stop_reason, Some(StopReason::DepthCapReached));
        assert!(!shallow.complete);

        let full = explore(&Counter, &[], &Limits::default());
        assert_eq!(full.stop_reason, None);
        assert!(full.complete);
    }

    #[test]
    fn expired_deadline_yields_a_partial_consistent_exploration() {
        let config = ExploreConfig {
            budget: Budget::unlimited().with_deadline(Duration::ZERO),
            fault_plan: None,
            ..Default::default()
        };
        let result = explore_with_config(&Grid, &[], &Limits::default(), &config, &Obs::noop());
        assert_eq!(result.stop_reason, Some(StopReason::DeadlineExceeded));
        assert!(!result.complete);
        assert_eq!(
            result.states_per_depth.iter().sum::<usize>(),
            result.states,
            "partial tally stays internally consistent"
        );
    }

    #[test]
    fn memory_ceiling_stops_before_the_first_expansion() {
        let config = ExploreConfig {
            budget: Budget::unlimited().with_max_heap_bytes(1),
            fault_plan: None,
            ..Default::default()
        };
        let result = explore_with_config(&Grid, &[], &Limits::default(), &config, &Obs::noop());
        assert_eq!(result.stop_reason, Some(StopReason::MemoryExceeded));
        assert_eq!(result.states, 1, "only the initial state is stored");
        assert_eq!(result.states_per_depth, vec![1]);
    }

    #[test]
    fn cancel_token_stops_exploration_cooperatively() {
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let config = ExploreConfig {
            budget,
            fault_plan: None,
            ..Default::default()
        };
        let result = explore_with_config(&Grid, &[], &Limits::default(), &config, &Obs::noop());
        assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
        assert!(!result.complete);
    }

    #[test]
    fn injected_deadline_truncates_identically_at_every_jobs_value() {
        use equitls_rewrite::budget::Fault;
        // The deadline "expires" exactly when frontier entry 7 is merged.
        let config = ExploreConfig {
            budget: Budget::unlimited(),
            fault_plan: Some(FaultPlan::new().with_fault(Fault::new(
                FaultSite::Successor,
                FaultKind::DeadlineExpiry,
                7,
            ))),
            ..Default::default()
        };
        let seq = explore_with_config(&Grid, &[], &Limits::default(), &config, &Obs::noop());
        assert_eq!(seq.stop_reason, Some(StopReason::DeadlineExceeded));
        assert!(!seq.complete);
        assert!(
            seq.states < 25,
            "the grid was truncated (got {})",
            seq.states
        );
        assert_eq!(seq.states_per_depth.iter().sum::<usize>(), seq.states);
        for jobs in [2, 4] {
            let par = explore_with_config_jobs(
                &Grid,
                &[],
                &Limits::default(),
                &config,
                jobs,
                &Obs::noop(),
            );
            assert_eq!(par.states, seq.states, "jobs {jobs}");
            assert_eq!(par.stop_reason, seq.stop_reason, "jobs {jobs}");
            assert_eq!(par.states_per_depth, seq.states_per_depth, "jobs {jobs}");
            assert_eq!(par.dedup_hits, seq.dedup_hits, "jobs {jobs}");
        }
    }

    #[test]
    fn injected_successor_panic_is_contained_and_deterministic() {
        use equitls_rewrite::budget::Fault;
        // State 3's successor computation panics; the search must record
        // one typed fault, skip that subtree, and finish the rest.
        let config = ExploreConfig {
            budget: Budget::unlimited(),
            fault_plan: Some(FaultPlan::new().with_fault(Fault::new(
                FaultSite::Successor,
                FaultKind::Panic,
                3,
            ))),
            ..Default::default()
        };
        let limits = Limits {
            max_states: 1000,
            max_depth: 16,
        };
        let seq = explore_with_config(&Grid, &[], &limits, &config, &Obs::noop());
        assert_eq!(seq.faults.len(), 1);
        assert_eq!(seq.faults[0].site, "successor:3");
        assert!(
            seq.faults[0].message.contains("injected fault"),
            "payload surfaced: {}",
            seq.faults[0].message
        );
        assert!(seq.complete, "a contained fault is not an early stop");
        assert_eq!(seq.stop_reason, None);
        for jobs in [2, 4] {
            let par = explore_with_config_jobs(&Grid, &[], &limits, &config, jobs, &Obs::noop());
            assert_eq!(par.states, seq.states, "jobs {jobs}");
            assert_eq!(par.faults, seq.faults, "jobs {jobs}");
            assert_eq!(par.states_per_depth, seq.states_per_depth, "jobs {jobs}");
            assert_eq!(par.violations.len(), seq.violations.len(), "jobs {jobs}");
        }
    }

    fn tmp_snapshot(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("equitls_mc_{}_{name}.snap", std::process::id()))
    }

    #[test]
    fn interrupted_then_resumed_grid_matches_straight_through() {
        use equitls_rewrite::budget::Fault;
        let on_diagonal = |s: &(u8, u8)| s.0 != s.1 || s.0 < 3;
        let monitors: [Monitor<'_, (u8, u8)>; 1] = [("off-diagonal", &on_diagonal)];
        let straight = explore(&Grid, &monitors, &Limits::default());
        for jobs in [1usize, 2, 4] {
            let path = tmp_snapshot(&format!("grid_resume_{jobs}"));
            let _ = std::fs::remove_file(&path);
            // Interrupt: an injected deadline fires at frontier entry 7,
            // after at least one level barrier has checkpointed.
            let interrupted_config = ExploreConfig {
                fault_plan: Some(FaultPlan::new().with_fault(Fault::new(
                    FaultSite::Successor,
                    FaultKind::DeadlineExpiry,
                    7,
                ))),
                checkpoint_path: Some(path.clone()),
                ..Default::default()
            };
            let partial = explore_with_config_jobs(
                &Grid,
                &monitors,
                &Limits::default(),
                &interrupted_config,
                jobs,
                &Obs::noop(),
            );
            assert_eq!(partial.stop_reason, Some(StopReason::DeadlineExceeded));
            assert!(path.exists(), "a barrier checkpoint was written");
            // Resume without the fault and finish the search.
            let resume_config = ExploreConfig {
                checkpoint_path: Some(path.clone()),
                ..Default::default()
            };
            let resumed = explore_resume_with_config_jobs(
                &Grid,
                &monitors,
                &Limits::default(),
                &resume_config,
                jobs,
                &Obs::noop(),
            )
            .expect("snapshot loads");
            assert_eq!(resumed.states, straight.states, "jobs {jobs}");
            assert_eq!(resumed.complete, straight.complete, "jobs {jobs}");
            assert_eq!(resumed.depth_reached, straight.depth_reached, "jobs {jobs}");
            assert_eq!(
                resumed.states_per_depth, straight.states_per_depth,
                "jobs {jobs}"
            );
            assert_eq!(resumed.dedup_hits, straight.dedup_hits, "jobs {jobs}");
            assert_eq!(resumed.violations.len(), straight.violations.len());
            for (rv, sv) in resumed.violations.iter().zip(&straight.violations) {
                assert_eq!(rv.property, sv.property, "jobs {jobs}");
                assert_eq!(rv.depth, sv.depth, "jobs {jobs}");
                assert_eq!(rv.trace, sv.trace, "jobs {jobs}");
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn resuming_a_finished_exploration_replays_the_same_result() {
        let path = tmp_snapshot("grid_finished");
        let _ = std::fs::remove_file(&path);
        let config = ExploreConfig {
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        };
        let straight =
            explore_with_config(&Counter, &[], &Limits::default(), &config, &Obs::noop());
        assert!(straight.complete);
        let resumed = explore_resume_with_config_jobs(
            &Counter,
            &[],
            &Limits::default(),
            &config,
            1,
            &Obs::noop(),
        )
        .expect("snapshot loads");
        assert_eq!(resumed.states, straight.states);
        assert_eq!(resumed.complete, straight.complete);
        assert_eq!(resumed.states_per_depth, straight.states_per_depth);
        assert_eq!(resumed.dedup_hits, straight.dedup_hits);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_errors_are_typed_never_garbage() {
        // No checkpoint path configured.
        let result = explore_resume_with_config_jobs(
            &Grid,
            &[],
            &Limits::default(),
            &ExploreConfig::default(),
            1,
            &Obs::noop(),
        );
        assert_eq!(result.err(), Some(PersistError::MissingPath));
        // A file that is not a snapshot at all.
        let path = tmp_snapshot("garbage");
        std::fs::write(&path, b"not a snapshot").unwrap();
        let config = ExploreConfig {
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        };
        let result = explore_resume_with_config_jobs(
            &Grid,
            &[],
            &Limits::default(),
            &config,
            1,
            &Obs::noop(),
        );
        assert_eq!(result.err(), Some(PersistError::BadMagic));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn models_without_state_encoding_skip_checkpointing() {
        /// Supports exploration but not persistence (the trait defaults).
        struct Opaque;
        impl Model for Opaque {
            type State = u8;
            fn initial(&self) -> u8 {
                0
            }
            fn successors(&self, s: &u8) -> Vec<(String, u8)> {
                if *s < 3 {
                    vec![("next".into(), s + 1)]
                } else {
                    vec![]
                }
            }
        }
        let path = tmp_snapshot("opaque");
        let _ = std::fs::remove_file(&path);
        let config = ExploreConfig {
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        };
        let result = explore_with_config(&Opaque, &[], &Limits::default(), &config, &Obs::noop());
        assert!(result.complete, "the search itself is unaffected");
        assert!(!path.exists(), "no snapshot is written without an encoder");
    }
}
