//! Breadth-first explicit-state exploration with counterexample traces.
//!
//! A deliberately Murφ-shaped checker (the paper's §6 relates to Mitchell,
//! Shmatikov and Stern's finite-state analysis of SSL 3.0): enumerate
//! states breadth-first under a finite scope, check safety monitors in
//! every state, and reconstruct a labeled trace on violation.

use crate::model::Model;
use equitls_obs::sink::Obs;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A named safety monitor: `(name, predicate)`. A violation is recorded
/// the first time the predicate returns `false`.
pub type Monitor<'a, S> = (&'a str, &'a dyn Fn(&S) -> bool);

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum states to expand (cutoff reported, not an error).
    pub max_states: usize,
    /// Maximum BFS depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 200_000,
            max_depth: 8,
        }
    }
}

/// A safety-property violation with its witness trace.
#[derive(Debug, Clone)]
pub struct Violation<S> {
    /// The violated monitor's name.
    pub property: String,
    /// Labeled steps from the initial state to the violating state.
    pub trace: Vec<(String, S)>,
    /// BFS depth of the violating state.
    pub depth: usize,
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct Exploration<S> {
    /// Distinct states visited.
    pub states: usize,
    /// Deepest level fully or partially expanded.
    pub depth_reached: usize,
    /// Whether the search exhausted the state space within limits.
    pub complete: bool,
    /// Violations found (first per property).
    pub violations: Vec<Violation<S>>,
    /// States visited per BFS level.
    pub states_per_depth: Vec<usize>,
    /// Successor states that were already known (hash-table dedup hits).
    pub dedup_hits: usize,
    /// Wall-clock time.
    pub duration: Duration,
}

impl<S> Exploration<S> {
    /// `true` when no monitor was violated.
    pub fn all_hold(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violation for `property`, if found.
    pub fn violation(&self, property: &str) -> Option<&Violation<S>> {
        self.violations.iter().find(|v| v.property == property)
    }

    /// Distinct states per wall-clock second (0 when the run was too fast
    /// to time).
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of generated successors that were duplicates, in `[0, 1]`.
    pub fn dedup_hit_rate(&self) -> f64 {
        // Every non-initial state was generated once; dedup hits are the rest.
        let generated = self.dedup_hits + self.states.saturating_sub(1);
        if generated == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / generated as f64
        }
    }
}

/// Explore `model` breadth-first, checking `monitors` in every state.
///
/// Each monitor is `(name, predicate)`; a violation is recorded the first
/// time a predicate returns `false`, and the search continues (to find
/// violations of the other monitors).
pub fn explore<M: Model>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
) -> Exploration<M::State> {
    explore_with_obs(model, monitors, limits, &Obs::noop())
}

/// [`explore`] with an observability handle: emits a span per BFS level,
/// frontier-size and dedup-rate gauges, and a final states/sec gauge.
pub fn explore_with_obs<M: Model>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    obs: &Obs,
) -> Exploration<M::State> {
    let start = Instant::now();
    let initial = model.initial();
    // parents[i] = (parent index, label); state_of[i] = state.
    let mut states: Vec<M::State> = vec![initial.clone()];
    let mut parents: Vec<(usize, String)> = vec![(usize::MAX, String::new())];
    let mut index: HashMap<M::State, usize> = HashMap::new();
    index.insert(initial, 0);
    let mut frontier: Vec<usize> = vec![0];
    let mut violations: Vec<Violation<M::State>> = Vec::new();
    let mut violated: Vec<String> = Vec::new();
    let mut states_per_depth = vec![1usize];
    let mut dedup_hits = 0usize;
    let mut complete = true;
    let mut depth = 0;

    let check = |idx: usize,
                 depth: usize,
                 states: &[M::State],
                 parents: &[(usize, String)],
                 violations: &mut Vec<Violation<M::State>>,
                 violated: &mut Vec<String>| {
        for (name, monitor) in monitors {
            if violated.iter().any(|v| v == name) {
                continue;
            }
            if !monitor(&states[idx]) {
                violated.push((*name).to_string());
                // Reconstruct the trace.
                let mut trace = Vec::new();
                let mut cur = idx;
                while cur != 0 {
                    let (parent, label) = &parents[cur];
                    trace.push((label.clone(), states[cur].clone()));
                    cur = *parent;
                }
                trace.reverse();
                violations.push(Violation {
                    property: name.to_string(),
                    trace,
                    depth,
                });
            }
        }
    };

    check(0, 0, &states, &parents, &mut violations, &mut violated);

    while !frontier.is_empty() && depth < limits.max_depth {
        depth += 1;
        let _level = obs.span(&format!("mc.level:{depth}"));
        let mut next_frontier = Vec::new();
        for &idx in &frontier {
            if states.len() >= limits.max_states {
                complete = false;
                break;
            }
            let current = states[idx].clone();
            for (label, succ) in model.successors(&current) {
                if index.contains_key(&succ) {
                    dedup_hits += 1;
                    continue;
                }
                let new_idx = states.len();
                states.push(succ.clone());
                parents.push((idx, label));
                index.insert(succ, new_idx);
                check(
                    new_idx,
                    depth,
                    &states,
                    &parents,
                    &mut violations,
                    &mut violated,
                );
                next_frontier.push(new_idx);
                if states.len() >= limits.max_states {
                    complete = false;
                    break;
                }
            }
        }
        states_per_depth.push(next_frontier.len());
        obs.gauge("mc.frontier", next_frontier.len() as f64);
        obs.counter("mc.states", next_frontier.len() as u64);
        frontier = next_frontier;
    }
    if !frontier.is_empty() {
        complete = false;
    }
    let result = Exploration {
        states: states.len(),
        depth_reached: depth,
        complete,
        violations,
        states_per_depth,
        dedup_hits,
        duration: start.elapsed(),
    };
    if obs.enabled() {
        obs.gauge("mc.states_per_sec", result.states_per_sec());
        obs.gauge("mc.dedup_hit_rate", result.dedup_hit_rate());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    /// A toy counter model: increments up to 5, with a "reset" self-loop.
    struct Counter;

    impl Model for Counter {
        type State = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn successors(&self, s: &u8) -> Vec<(String, u8)> {
            if *s >= 5 {
                vec![]
            } else {
                vec![(format!("inc->{}", s + 1), s + 1), ("reset".into(), 0)]
            }
        }
    }

    #[test]
    fn exhausts_a_small_space() {
        let result = explore(&Counter, &[], &Limits::default());
        assert_eq!(result.states, 6);
        assert!(result.complete);
        assert!(result.all_hold());
    }

    #[test]
    fn finds_a_violation_with_a_minimal_trace() {
        let below_three = |s: &u8| *s < 3;
        let result = explore(
            &Counter,
            &[("below-three", &below_three)],
            &Limits::default(),
        );
        let v = result.violation("below-three").expect("violated");
        assert_eq!(v.depth, 3);
        assert_eq!(v.trace.len(), 3);
        assert_eq!(*v.trace.last().map(|(_, s)| s).unwrap(), 3);
        assert!(!result.all_hold());
    }

    #[test]
    fn respects_state_limits() {
        let limits = Limits {
            max_states: 3,
            max_depth: 10,
        };
        let result = explore(&Counter, &[], &limits);
        assert!(result.states <= 4);
        assert!(!result.complete);
    }

    #[test]
    fn respects_depth_limits() {
        let limits = Limits {
            max_states: 1000,
            max_depth: 2,
        };
        let result = explore(&Counter, &[], &limits);
        assert_eq!(result.depth_reached, 2);
        assert!(!result.complete);
        assert_eq!(result.states_per_depth.len(), 3);
    }

    #[test]
    fn counts_dedup_hits_and_rates() {
        // Every "reset" successor re-reaches state 0, and every "inc"
        // successor beyond the first visit of its target is a duplicate.
        let result = explore(&Counter, &[], &Limits::default());
        assert!(result.dedup_hits > 0);
        let rate = result.dedup_hit_rate();
        assert!(rate > 0.0 && rate < 1.0, "rate {rate}");
        // 6 distinct states, so generated = dedup_hits + 5.
        assert_eq!(
            (result.dedup_hits as f64 / (result.dedup_hits + 5) as f64).to_bits(),
            rate.to_bits()
        );
    }

    #[test]
    fn obs_variant_emits_levels_and_gauges() {
        use equitls_obs::sink::{Obs, RecordingSink};
        use equitls_obs::summary::MetricsSummary;
        use std::sync::Arc;

        let recorder = Arc::new(RecordingSink::new());
        let obs = Obs::new(recorder.clone());
        let result = explore_with_obs(&Counter, &[], &Limits::default(), &obs);
        let summary = MetricsSummary::from_events(&recorder.events());
        // One span per expanded BFS level.
        let levels: usize = (1..=result.depth_reached)
            .filter(|d| summary.span(&format!("mc.level:{d}")).is_some())
            .count();
        assert_eq!(levels, result.depth_reached);
        assert_eq!(
            summary.counter_total("mc.states") as usize,
            result.states - 1,
            "counter covers every non-initial state"
        );
        assert!(summary.gauge("mc.states_per_sec").is_some());
        assert!(summary.gauge("mc.dedup_hit_rate").is_some());
    }

    #[test]
    fn reports_one_violation_per_property() {
        let never = |_: &u8| false;
        let result = explore(&Counter, &[("never", &never)], &Limits::default());
        assert_eq!(result.violations.len(), 1);
        assert_eq!(result.violations[0].depth, 0);
        assert!(result.violations[0].trace.is_empty());
    }
}
