//! Breadth-first explicit-state exploration with counterexample traces.
//!
//! A deliberately Murφ-shaped checker (the paper's §6 relates to Mitchell,
//! Shmatikov and Stern's finite-state analysis of SSL 3.0): enumerate
//! states breadth-first under a finite scope, check safety monitors in
//! every state, and reconstruct a labeled trace on violation.

use crate::model::Model;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum states to expand (cutoff reported, not an error).
    pub max_states: usize,
    /// Maximum BFS depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 200_000,
            max_depth: 8,
        }
    }
}

/// A safety-property violation with its witness trace.
#[derive(Debug, Clone)]
pub struct Violation<S> {
    /// The violated monitor's name.
    pub property: String,
    /// Labeled steps from the initial state to the violating state.
    pub trace: Vec<(String, S)>,
    /// BFS depth of the violating state.
    pub depth: usize,
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct Exploration<S> {
    /// Distinct states visited.
    pub states: usize,
    /// Deepest level fully or partially expanded.
    pub depth_reached: usize,
    /// Whether the search exhausted the state space within limits.
    pub complete: bool,
    /// Violations found (first per property).
    pub violations: Vec<Violation<S>>,
    /// States visited per BFS level.
    pub states_per_depth: Vec<usize>,
    /// Wall-clock time.
    pub duration: Duration,
}

impl<S> Exploration<S> {
    /// `true` when no monitor was violated.
    pub fn all_hold(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violation for `property`, if found.
    pub fn violation(&self, property: &str) -> Option<&Violation<S>> {
        self.violations.iter().find(|v| v.property == property)
    }
}

/// Explore `model` breadth-first, checking `monitors` in every state.
///
/// Each monitor is `(name, predicate)`; a violation is recorded the first
/// time a predicate returns `false`, and the search continues (to find
/// violations of the other monitors).
pub fn explore<M: Model>(
    model: &M,
    monitors: &[(&str, &dyn Fn(&M::State) -> bool)],
    limits: &Limits,
) -> Exploration<M::State> {
    let start = Instant::now();
    let initial = model.initial();
    // parents[i] = (parent index, label); state_of[i] = state.
    let mut states: Vec<M::State> = vec![initial.clone()];
    let mut parents: Vec<(usize, String)> = vec![(usize::MAX, String::new())];
    let mut index: HashMap<M::State, usize> = HashMap::new();
    index.insert(initial, 0);
    let mut frontier: Vec<usize> = vec![0];
    let mut violations: Vec<Violation<M::State>> = Vec::new();
    let mut violated: Vec<String> = Vec::new();
    let mut states_per_depth = vec![1usize];
    let mut complete = true;
    let mut depth = 0;

    let check = |idx: usize,
                     depth: usize,
                     states: &[M::State],
                     parents: &[(usize, String)],
                     violations: &mut Vec<Violation<M::State>>,
                     violated: &mut Vec<String>| {
        for (name, monitor) in monitors {
            if violated.iter().any(|v| v == name) {
                continue;
            }
            if !monitor(&states[idx]) {
                violated.push((*name).to_string());
                // Reconstruct the trace.
                let mut trace = Vec::new();
                let mut cur = idx;
                while cur != 0 {
                    let (parent, label) = &parents[cur];
                    trace.push((label.clone(), states[cur].clone()));
                    cur = *parent;
                }
                trace.reverse();
                violations.push(Violation {
                    property: name.to_string(),
                    trace,
                    depth,
                });
            }
        }
    };

    check(0, 0, &states, &parents, &mut violations, &mut violated);

    while !frontier.is_empty() && depth < limits.max_depth {
        depth += 1;
        let mut next_frontier = Vec::new();
        for &idx in &frontier {
            if states.len() >= limits.max_states {
                complete = false;
                break;
            }
            let current = states[idx].clone();
            for (label, succ) in model.successors(&current) {
                if index.contains_key(&succ) {
                    continue;
                }
                let new_idx = states.len();
                states.push(succ.clone());
                parents.push((idx, label));
                index.insert(succ, new_idx);
                check(
                    new_idx,
                    depth,
                    &states,
                    &parents,
                    &mut violations,
                    &mut violated,
                );
                next_frontier.push(new_idx);
                if states.len() >= limits.max_states {
                    complete = false;
                    break;
                }
            }
        }
        states_per_depth.push(next_frontier.len());
        frontier = next_frontier;
    }
    if !frontier.is_empty() {
        complete = false;
    }
    Exploration {
        states: states.len(),
        depth_reached: depth,
        complete,
        violations,
        states_per_depth,
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    /// A toy counter model: increments up to 5, with a "reset" self-loop.
    struct Counter;

    impl Model for Counter {
        type State = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn successors(&self, s: &u8) -> Vec<(String, u8)> {
            if *s >= 5 {
                vec![]
            } else {
                vec![(format!("inc->{}", s + 1), s + 1), ("reset".into(), 0)]
            }
        }
    }

    #[test]
    fn exhausts_a_small_space() {
        let result = explore(&Counter, &[], &Limits::default());
        assert_eq!(result.states, 6);
        assert!(result.complete);
        assert!(result.all_hold());
    }

    #[test]
    fn finds_a_violation_with_a_minimal_trace() {
        let below_three = |s: &u8| *s < 3;
        let result = explore(
            &Counter,
            &[("below-three", &below_three)],
            &Limits::default(),
        );
        let v = result.violation("below-three").expect("violated");
        assert_eq!(v.depth, 3);
        assert_eq!(v.trace.len(), 3);
        assert_eq!(*v.trace.last().map(|(_, s)| s).unwrap(), 3);
        assert!(!result.all_hold());
    }

    #[test]
    fn respects_state_limits() {
        let limits = Limits {
            max_states: 3,
            max_depth: 10,
        };
        let result = explore(&Counter, &[], &limits);
        assert!(result.states <= 4);
        assert!(!result.complete);
    }

    #[test]
    fn respects_depth_limits() {
        let limits = Limits {
            max_states: 1000,
            max_depth: 2,
        };
        let result = explore(&Counter, &[], &limits);
        assert_eq!(result.depth_reached, 2);
        assert!(!result.complete);
        assert_eq!(result.states_per_depth.len(), 3);
    }

    #[test]
    fn reports_one_violation_per_property() {
        let never = |_: &u8| false;
        let result = explore(&Counter, &[("never", &never)], &Limits::default());
        assert_eq!(result.violations.len(), 1);
        assert_eq!(result.violations[0].depth, 0);
        assert!(result.violations[0].trace.is_empty());
    }
}
