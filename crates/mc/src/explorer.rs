//! Breadth-first explicit-state exploration with counterexample traces.
//!
//! A deliberately Murφ-shaped checker (the paper's §6 relates to Mitchell,
//! Shmatikov and Stern's finite-state analysis of SSL 3.0): enumerate
//! states breadth-first under a finite scope, check safety monitors in
//! every state, and reconstruct a labeled trace on violation.
//!
//! ## Parallel exploration
//!
//! [`explore_jobs`] runs the same search level-synchronously across `N`
//! worker threads: the current frontier is partitioned into contiguous
//! chunks, each worker expands its chunk's states into a local successor
//! batch, and the batches are merged into the dedup index **at the level
//! barrier, in frontier order** — exactly the order the sequential search
//! visits them. Successor generation (`Model::successors`) is pure, so
//! the merged result is *identical* to the sequential one for every
//! thread count: same state count and numbering, same verdicts, same
//! violation traces, same `states_per_depth`/`dedup_hits` accounting.
//! `jobs = 1` bypasses the thread machinery and is the sequential path.

use crate::model::Model;
use crate::visited::{
    digest_entries, read_shard_file, shard_file_name, Lookup, SpillError, SpillSettings,
    VisitedStore,
};
use equitls_obs::sink::Obs;
use equitls_persist::codec::{Reader, Writer};
use equitls_persist::{read_snapshot, write_snapshot, PersistError, SnapshotKind};
use equitls_rewrite::budget::{
    panic_message, trigger_injected_panic, Budget, FaultKind, FaultPlan, FaultSite, StopReason,
    WorkerFault,
};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Very coarse per-state heap estimate (state + parent edge + index slot)
/// for the *hashed-value* visited set (models without a state encoder),
/// used only as the tripwire for [`Budget::check`]'s memory ceiling. The
/// point is to stop runaway explorations in the right order of magnitude,
/// not to account precisely.
const STATE_BYTES_ESTIMATE: u64 = 512;

/// Per-state estimate of the parts that can never spill in encoded mode:
/// the parent edge and label. The visited store accounts its own resident
/// and unspillable bytes on top.
const STATE_FIXED_BYTES: u64 = 64;

/// Barrier spill trigger: spill when the heap estimate crosses this
/// fraction of the budget's memory ceiling, *before* the ceiling itself
/// trips mid-level.
const SPILL_PRESSURE: f64 = 0.7;

/// A named safety monitor: `(name, predicate)`. A violation is recorded
/// the first time the predicate returns `false`.
pub type Monitor<'a, S> = (&'a str, &'a dyn Fn(&S) -> bool);

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum states to keep (cutoff reported, not an error).
    pub max_states: usize,
    /// Maximum BFS depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 200_000,
            max_depth: 8,
        }
    }
}

/// Robustness knobs for an exploration, on top of the structural [`Limits`]:
/// a shared [`Budget`] (deadline, heap-estimate ceiling, cancellation) and
/// an optional deterministic [`FaultPlan`] for the fault-injection tests.
///
/// Budget trips and injected stop-kind faults are observed **at merge
/// time, in frontier order** — the same position the sequential search
/// would stop at — so injected faults truncate identically at every
/// `jobs` value. Real wall-clock trips are consistent (a well-formed
/// partial result) but naturally not bit-reproducible across runs.
#[derive(Debug, Clone, Default)]
pub struct ExploreConfig {
    /// Deadline / memory / cancellation budget shared with other workers.
    pub budget: Budget,
    /// Deterministic fault injection, keyed by global state index at
    /// [`FaultSite::Successor`]. `None` in production.
    pub fault_plan: Option<FaultPlan>,
    /// When set, the search writes a crash-safe snapshot of its progress
    /// to this path at level barriers (the only points where the search
    /// state is a complete, deterministic prefix of the full run), and
    /// [`explore_resume_with_config_jobs`] can continue from it. Requires
    /// the model to implement [`Model::encode_state`]; models that do not
    /// simply skip the writes.
    pub checkpoint_path: Option<PathBuf>,
    /// Minimum seconds between checkpoint writes; `0` writes at every
    /// level barrier.
    pub checkpoint_every_secs: u64,
    /// When nonzero, print a one-line progress heartbeat to stderr at
    /// most every this-many seconds (checked at level barriers, where
    /// the tallies are consistent). Purely cosmetic: heartbeats never
    /// affect the search or its result. `0` (the default) is silent.
    pub heartbeat_every_secs: u64,
    /// When set (and the model has a state encoder), cold visited-set
    /// shards spill to files in this directory under memory pressure —
    /// Murφ-style — instead of the search truncating at the budget's
    /// heap ceiling. Spill decisions are taken only at level barriers,
    /// in shard order, so results stay bit-identical at every `jobs`
    /// value; the degradation is disclosed in
    /// [`Exploration::degradation`].
    pub spill_dir: Option<PathBuf>,
    /// When nonzero, at most this many visited-set shards keep resident
    /// entries after each barrier (the rest spill). `0` leaves residency
    /// purely to the memory-pressure trigger.
    pub max_resident_shards: usize,
    /// Visited-set shard count in encoded mode; `0` uses the default
    /// ([`crate::visited::DEFAULT_SHARDS`]).
    pub spill_shards: usize,
}

/// Resolve a `jobs` request: `0` means "use the machine's available
/// parallelism", anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// A safety-property violation with its witness trace.
#[derive(Debug, Clone)]
pub struct Violation<S> {
    /// The violated monitor's name.
    pub property: String,
    /// Labeled steps from the initial state to the violating state.
    pub trace: Vec<(String, S)>,
    /// BFS depth of the violating state.
    pub depth: usize,
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct Exploration<S> {
    /// Distinct states visited.
    pub states: usize,
    /// Deepest level fully or partially expanded.
    pub depth_reached: usize,
    /// Whether the search exhausted the state space within limits.
    pub complete: bool,
    /// Violations found (first per property).
    pub violations: Vec<Violation<S>>,
    /// States visited per BFS level.
    pub states_per_depth: Vec<usize>,
    /// Successor states that were already known (hash-table dedup hits).
    pub dedup_hits: usize,
    /// Why the search stopped before exhausting the space, if it did.
    /// `None` iff [`Exploration::complete`] is `true`.
    pub stop_reason: Option<StopReason>,
    /// Worker faults (panicking successor computations) that were
    /// contained during the search, in frontier order.
    pub faults: Vec<WorkerFault>,
    /// Enqueued-but-unexpanded states at the truncation point: frontier
    /// entries the stop reason prevented from being expanded. `0` on a
    /// complete run. Disclosed so a truncated tally can never silently
    /// pose as exhaustive.
    pub unexpanded: usize,
    /// Disclosed degradations, mirroring `equitls-serve`'s ladder:
    /// `"visited-spilled"` when shards went to disk,
    /// `"spill-write-failed"` when a shard write failed and the shard
    /// stayed resident (backpressure). Empty on a fully-resident run.
    pub degradation: Vec<String>,
    /// Visited-set shards spilled to disk during the search.
    pub spill_shards: u64,
    /// Payload bytes written to spilled shard files.
    pub spill_bytes: u64,
    /// Spilled shards read back on demand.
    pub spill_reloads: u64,
    /// Wall-clock time.
    pub duration: Duration,
}

impl<S> Exploration<S> {
    /// `true` when no monitor was violated.
    pub fn all_hold(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violation for `property`, if found.
    pub fn violation(&self, property: &str) -> Option<&Violation<S>> {
        self.violations.iter().find(|v| v.property == property)
    }

    /// Distinct states per wall-clock second.
    ///
    /// Sub-millisecond runs are too short for the wall clock to carry
    /// signal: dividing a handful of states by a few microseconds
    /// extrapolates absurd throughput. The divisor is clamped to 1 ms,
    /// making the result a *lower bound* on very short runs; a zero
    /// duration (the clock did not advance) reports 0.
    pub fn states_per_sec(&self) -> f64 {
        const MIN_MEASURABLE_SECS: f64 = 1e-3;
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 || self.states == 0 {
            0.0
        } else {
            self.states as f64 / secs.max(MIN_MEASURABLE_SECS)
        }
    }

    /// Fraction of generated successors that were duplicates, in `[0, 1]`.
    pub fn dedup_hit_rate(&self) -> f64 {
        // Every non-initial state was generated once; dedup hits are the rest.
        let generated = self.dedup_hits + self.states.saturating_sub(1);
        if generated == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / generated as f64
        }
    }
}

/// Explore `model` breadth-first, checking `monitors` in every state.
///
/// Each monitor is `(name, predicate)`; a violation is recorded the first
/// time a predicate returns `false`, and the search continues (to find
/// violations of the other monitors).
pub fn explore<M: Model>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
) -> Exploration<M::State> {
    explore_with_obs(model, monitors, limits, &Obs::noop())
}

/// [`explore`] with an observability handle: emits a span per BFS level,
/// frontier-size and dedup-rate gauges, and a final states/sec gauge.
pub fn explore_with_obs<M: Model>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    obs: &Obs,
) -> Exploration<M::State> {
    explore_with_config(model, monitors, limits, &ExploreConfig::default(), obs)
}

/// [`explore`] under an [`ExploreConfig`] budget: the search stops
/// cooperatively when the deadline passes, the heap-estimate ceiling is
/// crossed, or the shared cancel token fires, and returns a partial but
/// internally consistent [`Exploration`] with a typed
/// [`Exploration::stop_reason`].
pub fn explore_with_config<M: Model>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    obs: &Obs,
) -> Exploration<M::State> {
    explore_core(model, monitors, limits, config, obs, expand_level_seq)
}

/// [`explore`] on `jobs` worker threads (`0` = available parallelism).
///
/// Deterministic: for any `jobs`, the result (state count, verdicts,
/// traces, per-level accounting) is identical to the sequential search.
/// See the module docs for how the merge keeps it so.
pub fn explore_jobs<M>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    jobs: usize,
) -> Exploration<M::State>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    explore_with_obs_jobs(model, monitors, limits, jobs, &Obs::noop())
}

/// [`explore_jobs`] with an observability handle.
pub fn explore_with_obs_jobs<M>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    jobs: usize,
    obs: &Obs,
) -> Exploration<M::State>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    explore_with_config_jobs(
        model,
        monitors,
        limits,
        &ExploreConfig::default(),
        jobs,
        obs,
    )
}

/// [`explore_with_config`] on `jobs` worker threads (`0` = available
/// parallelism). Injected faults and the structural limits truncate at
/// the identical `(parent, successor)` position for every `jobs` value;
/// real wall-clock budget trips yield a consistent partial result whose
/// exact cut point depends on timing.
pub fn explore_with_config_jobs<M>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    jobs: usize,
    obs: &Obs,
) -> Exploration<M::State>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    let jobs = resolve_jobs(jobs);
    explore_core(
        model,
        monitors,
        limits,
        config,
        obs,
        move |model, search, frontier, depth, limits, obs| {
            expand_level_par(model, search, frontier, depth, limits, jobs, obs)
        },
    )
}

/// The dedup set behind the search, in one of two modes:
///
/// * **Encoded** (models with a state codec): states live as canonical
///   encoded bytes in a [`VisitedStore`] — compact, concurrently
///   probeable, and spillable to disk under memory pressure.
/// * **Plain** (encoder-less models): the original hashed-value set.
///   No spill tier; the budget's memory ceiling truncates as before.
enum VisitedSet<S> {
    /// Hashed-value fallback for models without a state encoder.
    Plain {
        states: Vec<S>,
        index: HashMap<S, usize>,
    },
    /// Encoded-bytes sharded store (the spillable path).
    Encoded { store: VisitedStore },
}

/// One generated successor, as a worker hands it to the merge: the
/// decoded state plus (in encoded mode) its canonical bytes and the
/// result of the concurrent duplicate probe. `known_dup` is only ever
/// a *definite* hit — the merge counts it without a lookup.
struct SuccRec<S> {
    label: String,
    state: S,
    bytes: Option<Vec<u8>>,
    known_dup: bool,
}

/// Mutable search state shared by the sequential and parallel paths.
struct Search<'m, S> {
    monitors: &'m [Monitor<'m, S>],
    config: &'m ExploreConfig,
    visited: VisitedSet<S>,
    parents: Vec<(usize, String)>,
    violations: Vec<Violation<S>>,
    /// The violating state's global index, parallel to `violations`
    /// (checkpoints store the index; the trace is rebuilt on load).
    violation_indices: Vec<usize>,
    violated: Vec<String>,
    next_frontier: Vec<usize>,
    dedup_hits: usize,
    faults: Vec<WorkerFault>,
    /// Frontier entries a stop reason prevented from being expanded.
    unexpanded: usize,
    /// Set when a mid-level memory-ceiling trip was deferred to the
    /// next barrier's spill pass instead of truncating the search.
    mem_pressure: bool,
    degradation: Vec<String>,
    /// Profiling accumulators, split by phase: wall time spent generating
    /// successors vs. merging them into the dedup index. Only advanced
    /// when `timed` (i.e. the obs handle is enabled) — the clock reads
    /// are cheap but not free, and a silent run should pay nothing.
    timed: bool,
    succ_time: Duration,
    dedup_time: Duration,
}

impl<S: Clone + Eq + Hash> Search<'_, S> {
    /// Distinct states stored so far (every state has a parent edge).
    fn len(&self) -> usize {
        self.parents.len()
    }

    /// Coarse heap estimate for the budget's memory tripwire. In encoded
    /// mode the visited store accounts for its own resident bytes, so
    /// the estimate *drops* when shards spill — that is the degradation:
    /// the same ceiling that would truncate a resident run instead
    /// steers the store onto disk.
    fn heap_estimate(&mut self) -> u64 {
        let n = self.parents.len() as u64;
        match &mut self.visited {
            VisitedSet::Plain { .. } => n * STATE_BYTES_ESTIMATE,
            VisitedSet::Encoded { store } => n * STATE_FIXED_BYTES + store.resident_estimate(),
        }
    }

    /// The store to probe concurrently, when in encoded mode.
    fn probe_store(&self) -> Option<&VisitedStore> {
        match &self.visited {
            VisitedSet::Plain { .. } => None,
            VisitedSet::Encoded { store } => Some(store),
        }
    }

    /// Whether a mid-level `MemoryExceeded` may be deferred to the next
    /// barrier's spill pass: there must be somewhere to spill *to*, and
    /// the unspillable part (parent edges, locator, hash index) must
    /// itself fit the ceiling — otherwise spilling cannot help and the
    /// honest answer is to stop.
    fn can_defer_memory_stop(&mut self) -> bool {
        let config = self.config;
        if config.spill_dir.is_none() {
            return false;
        }
        let fixed = self.parents.len() as u64 * STATE_FIXED_BYTES;
        match &self.visited {
            VisitedSet::Plain { .. } => false,
            VisitedSet::Encoded { store } => match config.budget.max_heap_bytes() {
                Some(max) => fixed + store.unspillable_estimate() <= max,
                None => true,
            },
        }
    }

    /// The budget / fault-injection gate run **before** merging frontier
    /// entry `idx`, in frontier order on every path. Injected stop-kind
    /// faults fire first (deterministic at any `jobs`), then the real
    /// budget. A memory-ceiling trip that the spill tier can absorb is
    /// deferred (flagged for the next barrier) instead of truncating.
    /// Returns the reason to truncate, if any.
    fn pre_merge_stop(&mut self, idx: usize) -> Option<StopReason> {
        if let Some(plan) = &self.config.fault_plan {
            match plan.fault_for(FaultSite::Successor, "", idx as u64) {
                Some(FaultKind::DeadlineExpiry) => return Some(StopReason::DeadlineExceeded),
                Some(FaultKind::FuelStarvation) => return Some(StopReason::FuelExhausted),
                Some(FaultKind::Cancel) => {
                    self.config.budget.cancel();
                    return Some(StopReason::Cancelled);
                }
                // Panic faults fire in the successor computation itself;
                // IoError/Corruption only mean something to spill and
                // persist I/O.
                Some(FaultKind::Panic)
                | Some(FaultKind::IoError)
                | Some(FaultKind::Corruption)
                | None => {}
            }
        }
        let config = self.config;
        let estimate = self.heap_estimate();
        match config.budget.check(estimate) {
            Ok(()) => None,
            Err(StopReason::MemoryExceeded) if self.can_defer_memory_stop() => {
                self.mem_pressure = true;
                None
            }
            Err(reason) => Some(reason),
        }
    }

    /// Record a spill-tier read failure as a typed worker fault and the
    /// stop reason that ends the search: without its dedup set the
    /// search cannot soundly continue, but it stops *typed*, with every
    /// count consistent — never a panic, never garbage states.
    fn spill_failure(&mut self, e: SpillError) -> StopReason {
        self.faults.push(WorkerFault {
            site: format!("spill:shard{}", e.shard),
            message: e.error.to_string(),
        });
        StopReason::SpillFailed
    }

    /// The state at global index `idx`, decoded from the visited store
    /// (reloading its shard if spilled) or cloned from the plain set.
    fn state_at<M: Model<State = S>>(
        &mut self,
        model: &M,
        idx: usize,
        obs: &Obs,
    ) -> Result<S, SpillError> {
        match &mut self.visited {
            VisitedSet::Plain { states, .. } => Ok(states[idx].clone()),
            VisitedSet::Encoded { store } => {
                let bytes = store.fetch(idx, obs)?;
                model.decode_state(&bytes).ok_or_else(|| SpillError {
                    shard: store.shard_of(idx),
                    error: PersistError::Malformed(format!(
                        "state {idx} does not decode for this model"
                    )),
                })
            }
        }
    }

    /// Check every monitor against the just-inserted state `idx`,
    /// recording the first violation per property with its reconstructed
    /// trace (ancestor states come from the visited set, reloading
    /// spilled shards as needed).
    fn check_new_state<M: Model<State = S>>(
        &mut self,
        model: &M,
        idx: usize,
        state: &S,
        depth: usize,
        obs: &Obs,
    ) -> Option<StopReason> {
        let monitors = self.monitors;
        for (name, monitor) in monitors {
            if self.violated.iter().any(|v| v == name) {
                continue;
            }
            if monitor(state) {
                continue;
            }
            self.violated.push((*name).to_string());
            let mut trace = Vec::new();
            let mut cur = idx;
            while cur != 0 {
                let step = if cur == idx {
                    state.clone()
                } else {
                    match self.state_at(model, cur, obs) {
                        Ok(s) => s,
                        Err(e) => return Some(self.spill_failure(e)),
                    }
                };
                let (parent, label) = &self.parents[cur];
                trace.push((label.clone(), step));
                cur = *parent;
            }
            trace.reverse();
            self.violations.push(Violation {
                property: name.to_string(),
                trace,
                depth,
            });
            self.violation_indices.push(idx);
        }
        None
    }

    /// Merge one frontier entry's successor batch into the dedup set,
    /// in generation order. Returns `Some(StateCapReached)` when the
    /// `max_states` cap refused a *new* state — the signal to truncate
    /// the search. Duplicate successors never trigger truncation (they
    /// cost no storage), so a cap equal to the true state count still
    /// reports a complete exploration. A spill-tier read failure stops
    /// typed ([`StopReason::SpillFailed`]).
    fn merge_entry<M: Model<State = S>>(
        &mut self,
        model: &M,
        parent: usize,
        succs: Vec<SuccRec<S>>,
        depth: usize,
        limits: &Limits,
        obs: &Obs,
    ) -> Option<StopReason> {
        for mut rec in succs {
            if rec.known_dup {
                self.dedup_hits += 1;
                continue;
            }
            let inserted = match &mut self.visited {
                VisitedSet::Plain { states, index } => {
                    if index.contains_key(&rec.state) {
                        Ok(Lookup::Known)
                    } else if states.len() >= limits.max_states {
                        Ok(Lookup::CapRefused)
                    } else {
                        let new_idx = states.len();
                        states.push(rec.state.clone());
                        index.insert(rec.state.clone(), new_idx);
                        Ok(Lookup::Inserted(new_idx))
                    }
                }
                VisitedSet::Encoded { store } => {
                    let bytes = rec.bytes.take().expect("encoded mode carries state bytes");
                    store.lookup_or_insert(bytes, limits.max_states, obs)
                }
            };
            let new_idx = match inserted {
                Ok(Lookup::Known) => {
                    self.dedup_hits += 1;
                    continue;
                }
                Ok(Lookup::CapRefused) => return Some(StopReason::StateCapReached),
                Ok(Lookup::Inserted(idx)) => idx,
                Err(e) => return Some(self.spill_failure(e)),
            };
            self.parents.push((parent, rec.label));
            if let Some(stop) = self.check_new_state(model, new_idx, &rec.state, depth, obs) {
                return Some(stop);
            }
            self.next_frontier.push(new_idx);
        }
        None
    }

    /// The barrier spill pass — the only place shards go to disk, so
    /// spill decisions are deterministic at every `jobs` value. Spills
    /// (in shard order) when a mid-level ceiling trip was deferred, when
    /// the heap estimate crosses [`SPILL_PRESSURE`] of the ceiling, or
    /// when `max_resident_shards` is exceeded; the goal is half the
    /// ceiling, leaving headroom for the next level. If the estimate
    /// still exceeds the ceiling after the pass (e.g. every write
    /// failed on a full disk), the honest answer is the typed
    /// `MemoryExceeded` stop — degradation is disclosed, never silent.
    fn barrier_spill(&mut self, obs: &Obs) -> Option<StopReason> {
        let config = self.config;
        config.spill_dir.as_ref()?;
        let fixed = self.parents.len() as u64 * STATE_FIXED_BYTES;
        let pressure_flag = std::mem::take(&mut self.mem_pressure);
        let VisitedSet::Encoded { store } = &mut self.visited else {
            return None;
        };
        let over_pressure = config
            .budget
            .memory_pressure(fixed + store.resident_estimate())
            .is_some_and(|p| p >= SPILL_PRESSURE);
        let cap = config.max_resident_shards;
        let over_cap = cap > 0 && store.resident_shard_count() > cap;
        if !(pressure_flag || over_pressure || over_cap) {
            return None;
        }
        let goal = match config.budget.max_heap_bytes() {
            Some(max) => (max / 2).saturating_sub(fixed),
            None => u64::MAX,
        };
        let outcome = store.spill_until(goal, cap, obs);
        if outcome.spilled > 0 && !self.degradation.iter().any(|d| d == "visited-spilled") {
            self.degradation.push("visited-spilled".into());
        }
        if outcome.write_failures > 0 && !self.degradation.iter().any(|d| d == "spill-write-failed")
        {
            self.degradation.push("spill-write-failed".into());
        }
        let VisitedSet::Encoded { store } = &mut self.visited else {
            unreachable!("mode checked above");
        };
        config.budget.check(fixed + store.resident_estimate()).err()
    }

    /// Spill-tier counters for the final [`Exploration`]:
    /// `(shards spilled, bytes written, reloads)`.
    fn spill_stats(&self) -> (u64, u64, u64) {
        match &self.visited {
            VisitedSet::Plain { .. } => (0, 0, 0),
            VisitedSet::Encoded { store } => {
                let s = store.stats();
                (s.spills, s.spill_bytes, s.reloads)
            }
        }
    }
}

/// Compute the successors of the state at global index `idx`, containing
/// any panic (organic, or injected by the fault plan) as a typed
/// [`WorkerFault`] instead of letting it poison sibling workers. A
/// faulted state contributes no successors; the search continues.
///
/// In encoded mode (`store` is `Some`) each successor is also encoded to
/// its canonical bytes and probed against the store — a concurrent,
/// read-only, definite-hit-only duplicate check that moves the encoding
/// and most hashing work off the merge thread. The probe can only say
/// "known" for resident entries; a spilled match is still found by the
/// merge-thread lookup, so the dedup count is identical either way.
fn compute_succs<M: Model>(
    model: &M,
    state: &M::State,
    idx: usize,
    plan: Option<&FaultPlan>,
    store: Option<&VisitedStore>,
) -> Result<Vec<SuccRec<M::State>>, WorkerFault> {
    catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = plan {
            if plan.fault_for(FaultSite::Successor, "", idx as u64) == Some(FaultKind::Panic) {
                trigger_injected_panic(FaultSite::Successor, "", idx as u64);
            }
        }
        model
            .successors(state)
            .into_iter()
            .map(|(label, succ)| {
                let (bytes, known_dup) = match store {
                    Some(store) => {
                        let bytes = model
                            .encode_state(&succ)
                            .expect("encoded-mode model must encode every reachable state");
                        let known_dup = store.probe(&bytes);
                        (Some(bytes), known_dup)
                    }
                    None => (None, false),
                };
                SuccRec {
                    label,
                    state: succ,
                    bytes,
                    known_dup,
                }
            })
            .collect()
    }))
    .map_err(|payload| WorkerFault {
        site: format!("successor:{idx}"),
        message: panic_message(&*payload),
    })
}

/// Expand one level sequentially: generate and merge entry by entry, so
/// no successors are computed past the truncation point. On any stop the
/// rest of the frontier is accounted as unexpanded (the mid-level
/// truncation disclosure).
fn expand_level_seq<M: Model>(
    model: &M,
    search: &mut Search<'_, M::State>,
    frontier: &[usize],
    depth: usize,
    limits: &Limits,
    obs: &Obs,
) -> Option<StopReason> {
    for (pos, &idx) in frontier.iter().enumerate() {
        if let Some(stop) = search.pre_merge_stop(idx) {
            search.unexpanded += frontier.len() - pos;
            return Some(stop);
        }
        let current = match search.state_at(model, idx, obs) {
            Ok(state) => state,
            Err(e) => {
                let stop = search.spill_failure(e);
                search.unexpanded += frontier.len() - pos;
                return Some(stop);
            }
        };
        let gen_start = search.timed.then(Instant::now);
        let succs = match compute_succs(
            model,
            &current,
            idx,
            search.config.fault_plan.as_ref(),
            search.probe_store(),
        ) {
            Ok(succs) => succs,
            Err(fault) => {
                search.faults.push(fault);
                Vec::new()
            }
        };
        let merge_start = search.timed.then(Instant::now);
        if let (Some(g), Some(m)) = (gen_start, merge_start) {
            search.succ_time += m.duration_since(g);
        }
        let stop = search.merge_entry(model, idx, succs, depth, limits, obs);
        if let Some(m) = merge_start {
            search.dedup_time += m.elapsed();
        }
        if let Some(stop) = stop {
            search.unexpanded += frontier.len() - pos;
            return Some(stop);
        }
    }
    None
}

/// Expand one level on `jobs` scoped worker threads, then merge the
/// batches at the barrier in frontier order. Returns `Some(reason)` on
/// truncation — detected at the same `(parent, successor)` position the
/// sequential expansion would stop at, so the accounting agrees. Worker
/// panics are contained *inside* each worker ([`compute_succs`]), and the
/// resulting faults are recorded at merge time in frontier order, so a
/// poisoned entry never disturbs its siblings and the fault list is
/// identical at every `jobs` value.
fn expand_level_par<M>(
    model: &M,
    search: &mut Search<'_, M::State>,
    frontier: &[usize],
    depth: usize,
    limits: &Limits,
    jobs: usize,
    obs: &Obs,
) -> Option<StopReason>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    if jobs <= 1 || frontier.len() < 2 {
        return expand_level_seq(model, search, frontier, depth, limits, obs);
    }
    // Fetch every frontier state up front on the merge thread — the one
    // place a spilled shard may need reloading, kept out of the workers
    // so reloads stay deterministic (frontier order) at every `jobs`.
    let mut frontier_states: Vec<M::State> = Vec::with_capacity(frontier.len());
    for (pos, &idx) in frontier.iter().enumerate() {
        match search.state_at(model, idx, obs) {
            Ok(state) => frontier_states.push(state),
            Err(e) => {
                let stop = search.spill_failure(e);
                search.unexpanded += frontier.len() - pos;
                return Some(stop);
            }
        }
    }
    // One successor result per frontier entry, grouped by worker chunk.
    type Batch<S> = Vec<Result<Vec<SuccRec<S>>, WorkerFault>>;
    let workers = jobs.min(frontier.len());
    let chunk_len = frontier.len().div_ceil(workers);
    let gen_start = search.timed.then(Instant::now);
    let batches: Vec<Batch<M::State>> = {
        let plan = search.config.fault_plan.as_ref();
        // Workers share the store read-only: probes take each shard's
        // stripe lock briefly, and the merge thread below is the only
        // writer — after this scope joins.
        let store = search.probe_store();
        std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk_len)
                .zip(frontier_states.chunks(chunk_len))
                .map(|(chunk, states)| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .zip(states)
                            .map(|(&idx, state)| compute_succs(model, state, idx, plan, store))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("explorer worker panicked"))
                .collect()
        })
    };
    // Phase accounting is wall-clock per phase: the scoped-thread block
    // above is pure successor generation, the merge loop below is pure
    // dedup/monitor work on the main thread.
    let merge_start = search.timed.then(Instant::now);
    if let (Some(g), Some(m)) = (gen_start, merge_start) {
        search.succ_time += m.duration_since(g);
    }
    let mut stop = None;
    let mut merged = 0usize;
    'merge: for (chunk, batch) in frontier.chunks(chunk_len).zip(batches) {
        for (&idx, succs) in chunk.iter().zip(batch) {
            if let Some(reason) = search.pre_merge_stop(idx) {
                stop = Some(reason);
                break 'merge;
            }
            let succs = match succs {
                Ok(succs) => succs,
                Err(fault) => {
                    search.faults.push(fault);
                    Vec::new()
                }
            };
            if let Some(reason) = search.merge_entry(model, idx, succs, depth, limits, obs) {
                stop = Some(reason);
                break 'merge;
            }
            merged += 1;
        }
    }
    if stop.is_some() {
        // The same disclosure the sequential path makes: the entry the
        // stop landed on and everything after it were never (fully)
        // expanded.
        search.unexpanded += frontier.len() - merged;
    }
    if let Some(m) = merge_start {
        search.dedup_time += m.elapsed();
    }
    stop
}

/// Everything the BFS driver needs to start (or restart) at a level
/// barrier: the visited prefix, the frontier to expand next, and the
/// accounting so far. A fresh search and a decoded checkpoint both reduce
/// to this.
struct SearchSeed<S> {
    states: Vec<S>,
    parents: Vec<(usize, String)>,
    violations: Vec<Violation<S>>,
    violation_indices: Vec<usize>,
    violated: Vec<String>,
    dedup_hits: usize,
    faults: Vec<WorkerFault>,
    frontier: Vec<usize>,
    states_per_depth: Vec<usize>,
    depth: usize,
}

/// The seed of a fresh search: the initial state alone, monitors already
/// checked against it (a root violation has an empty trace).
fn initial_seed<M: Model>(model: &M, monitors: &[Monitor<'_, M::State>]) -> SearchSeed<M::State> {
    let root = model.initial();
    let mut violations = Vec::new();
    let mut violation_indices = Vec::new();
    let mut violated = Vec::new();
    for (name, monitor) in monitors {
        if !monitor(&root) {
            violated.push((*name).to_string());
            violations.push(Violation {
                property: name.to_string(),
                trace: Vec::new(),
                depth: 0,
            });
            violation_indices.push(0);
        }
    }
    SearchSeed {
        states: vec![root],
        parents: vec![(usize::MAX, String::new())],
        violations,
        violation_indices,
        violated,
        dedup_hits: 0,
        faults: Vec::new(),
        frontier: vec![0],
        states_per_depth: vec![1],
        depth: 0,
    }
}

/// The per-level search state at a barrier — the pieces that live
/// outside [`Search`] during the BFS loop, bundled for checkpointing.
struct Barrier<'a> {
    frontier: &'a [usize],
    states_per_depth: &'a [usize],
    depth: usize,
}

/// Serialize the barrier state into a snapshot payload. Returns `None`
/// when the model does not support state encoding (or a spilled state
/// cannot be fetched — the checkpoint is skipped, the search continues).
///
/// Two formats, distinguished by a leading byte:
///
/// * **0 (inline)** — every state's encoded bytes live in the snapshot
///   itself; used whenever no spill directory is configured.
/// * **1 (manifest)** — the snapshot stores only parent edges, the
///   global `(shard, slot)` locator, and a per-shard `(len, digest)`
///   manifest; the state bytes live in the shard files, which the
///   caller must flush first ([`VisitedStore::flush_all`]). Resume
///   revalidates every shard file's checksum and digest against the
///   manifest before trusting a byte of it.
fn encode_checkpoint<M: Model>(
    model: &M,
    search: &mut Search<'_, M::State>,
    barrier: &Barrier<'_>,
    obs: &Obs,
) -> Option<Vec<u8>> {
    let manifest_mode =
        search.config.spill_dir.is_some() && matches!(search.visited, VisitedSet::Encoded { .. });
    let mut w = Writer::new();
    w.u8(if manifest_mode { 1 } else { 0 });
    w.usize(barrier.depth);
    w.usize(search.dedup_hits);
    w.usize(barrier.states_per_depth.len());
    for &n in barrier.states_per_depth {
        w.usize(n);
    }
    let n_states = search.len();
    w.usize(n_states);
    if manifest_mode {
        for (parent, label) in &search.parents {
            w.u64(if *parent == usize::MAX {
                u64::MAX
            } else {
                *parent as u64
            });
            w.str(label);
        }
        let VisitedSet::Encoded { store } = &mut search.visited else {
            unreachable!("manifest mode is encoded mode");
        };
        for &(shard, slot) in store.locator() {
            w.u32(shard);
            w.u32(slot);
        }
        let manifest = store.manifest();
        w.usize(manifest.len());
        for (len, fnv) in manifest {
            w.u64(len);
            w.u64(fnv);
        }
    } else {
        for idx in 0..n_states {
            let bytes = match &mut search.visited {
                VisitedSet::Plain { states, .. } => model.encode_state(&states[idx])?,
                VisitedSet::Encoded { store } => store.fetch(idx, obs).ok()?,
            };
            let (parent, label) = &search.parents[idx];
            w.bytes(&bytes);
            w.u64(if *parent == usize::MAX {
                u64::MAX
            } else {
                *parent as u64
            });
            w.str(label);
        }
    }
    w.usize(barrier.frontier.len());
    for &idx in barrier.frontier {
        w.usize(idx);
    }
    // Violations are stored as (property, depth, violating-state index);
    // the witness trace is rebuilt from the parent edges on load.
    w.usize(search.violations.len());
    for (v, &idx) in search.violations.iter().zip(&search.violation_indices) {
        w.str(&v.property);
        w.usize(v.depth);
        w.usize(idx);
    }
    w.usize(search.faults.len());
    for f in &search.faults {
        w.str(&f.site);
        w.str(&f.message);
    }
    Some(w.into_bytes())
}

/// Decode and validate a snapshot payload back into a [`SearchSeed`].
/// Every index is bounds-checked and every parent edge must point
/// backwards (the BFS insertion order), so a payload that passed the CRC
/// but is internally inconsistent still yields a typed error.
fn decode_checkpoint<M: Model>(
    model: &M,
    payload: &[u8],
    spill_dir: Option<&Path>,
    obs: &Obs,
) -> Result<SearchSeed<M::State>, PersistError> {
    let mut r = Reader::new(payload);
    let format = r.u8()?;
    if format > 1 {
        return Err(PersistError::Malformed(format!(
            "unknown snapshot format {format}"
        )));
    }
    let depth = r.usize()?;
    let dedup_hits = r.usize()?;
    let mut states_per_depth = Vec::new();
    for _ in 0..r.seq_len(8)? {
        states_per_depth.push(r.usize()?);
    }
    if states_per_depth.len() != depth + 1 {
        return Err(PersistError::Malformed(format!(
            "{} per-level tallies for depth {depth}",
            states_per_depth.len()
        )));
    }
    let n_states = r.seq_len(if format == 1 { 16 } else { 17 })?;
    let parse_parent = |i: usize, parent: u64| -> Result<usize, PersistError> {
        if i == 0 {
            if parent != u64::MAX {
                return Err(PersistError::Malformed("root state has a parent".into()));
            }
            Ok(usize::MAX)
        } else if parent < i as u64 {
            Ok(parent as usize)
        } else {
            Err(PersistError::Malformed(format!(
                "state {i} has forward parent {parent}"
            )))
        }
    };
    let mut states = Vec::with_capacity(n_states);
    let mut parents = Vec::with_capacity(n_states);
    if format == 0 {
        for i in 0..n_states {
            let state = model.decode_state(r.bytes()?).ok_or_else(|| {
                PersistError::Malformed(format!("state {i} does not decode for this model"))
            })?;
            let parent = parse_parent(i, r.u64()?)?;
            let label = r.str()?;
            states.push(state);
            parents.push((parent, label));
        }
    } else {
        for i in 0..n_states {
            let parent = parse_parent(i, r.u64()?)?;
            let label = r.str()?;
            parents.push((parent, label));
        }
        // The global locator: each shard's slots must appear as the
        // consecutive counters 0.. — which makes (shard, slot) → global
        // index a bijection, so every shard-file entry the manifest
        // covers is placed exactly once.
        let mut locator = Vec::with_capacity(n_states);
        let mut next_slot: HashMap<u32, u32> = HashMap::new();
        for _ in 0..n_states {
            let shard = r.u32()?;
            let slot = r.u32()?;
            let expected = next_slot.entry(shard).or_insert(0);
            if slot != *expected {
                return Err(PersistError::Malformed(format!(
                    "shard {shard} slots are not contiguous (slot {slot}, expected {expected})"
                )));
            }
            *expected += 1;
            locator.push((shard, slot));
        }
        let n_shards = r.seq_len(16)?;
        if locator.iter().any(|&(shard, _)| shard as usize >= n_shards) {
            return Err(PersistError::Malformed(
                "locator references a shard past the manifest".into(),
            ));
        }
        let mut manifest = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            manifest.push((r.u64()?, r.u64()?));
        }
        for (shard, &(len, _)) in manifest.iter().enumerate() {
            let counted = next_slot.get(&(shard as u32)).copied().unwrap_or(0) as u64;
            if counted != len {
                return Err(PersistError::Malformed(format!(
                    "shard {shard} manifest length {len} does not match {counted} locator slots"
                )));
            }
        }
        let dir = spill_dir.ok_or_else(|| {
            PersistError::Malformed(
                "checkpoint references spilled shards but no spill dir is configured".into(),
            )
        })?;
        // Read every referenced shard file and revalidate it against the
        // manifest before trusting a byte: the file CRC (read_snapshot),
        // then the manifest digest over exactly the slot prefix this
        // checkpoint covers (the file may legitimately be *longer* — a
        // later flush appended slots — but never different).
        let mut shard_states: Vec<Vec<M::State>> = Vec::with_capacity(n_shards);
        for (shard, &(len, fnv)) in manifest.iter().enumerate() {
            if len == 0 {
                shard_states.push(Vec::new());
                continue;
            }
            let path = dir.join(shard_file_name(shard as u32));
            let entries = read_shard_file(&path, shard as u32, obs)?;
            if (entries.len() as u64) < len {
                return Err(PersistError::Malformed(format!(
                    "shard {shard} file holds {} entries, manifest needs {len}",
                    entries.len()
                )));
            }
            let prefix = &entries[..len as usize];
            if digest_entries(prefix) != fnv {
                return Err(PersistError::Malformed(format!(
                    "shard {shard} file does not match the checkpoint manifest digest"
                )));
            }
            let mut decoded = Vec::with_capacity(len as usize);
            for (slot, bytes) in prefix.iter().enumerate() {
                decoded.push(model.decode_state(bytes).ok_or_else(|| {
                    PersistError::Malformed(format!(
                        "shard {shard} slot {slot} does not decode for this model"
                    ))
                })?);
            }
            shard_states.push(decoded);
        }
        for &(shard, slot) in &locator {
            states.push(shard_states[shard as usize][slot as usize].clone());
        }
    }
    // States must be distinct: the driver re-seeds its dedup set from
    // them, and a duplicate would silently merge two trace positions.
    {
        let mut seen = HashSet::with_capacity(states.len());
        for (i, s) in states.iter().enumerate() {
            if !seen.insert(s) {
                return Err(PersistError::Malformed(format!(
                    "state {i} duplicates an earlier state"
                )));
            }
        }
    }
    if states_per_depth.iter().sum::<usize>() != n_states {
        return Err(PersistError::Malformed(
            "per-level tallies do not sum to the state count".into(),
        ));
    }
    let read_idx = |r: &mut Reader, what: &str| -> Result<usize, PersistError> {
        let idx = r.usize()?;
        if idx >= n_states {
            return Err(PersistError::Malformed(format!(
                "{what} index {idx} out of range ({n_states} states)"
            )));
        }
        Ok(idx)
    };
    let mut frontier = Vec::new();
    for _ in 0..r.seq_len(8)? {
        frontier.push(read_idx(&mut r, "frontier")?);
    }
    let mut violations = Vec::new();
    let mut violation_indices = Vec::new();
    let mut violated = Vec::new();
    for _ in 0..r.seq_len(24)? {
        let property = r.str()?;
        let vdepth = r.usize()?;
        let idx = read_idx(&mut r, "violation")?;
        let mut trace = Vec::new();
        let mut cur = idx;
        while cur != 0 {
            let (parent, label) = &parents[cur];
            trace.push((label.clone(), states[cur].clone()));
            cur = *parent;
        }
        trace.reverse();
        violated.push(property.clone());
        violations.push(Violation {
            property,
            trace,
            depth: vdepth,
        });
        violation_indices.push(idx);
    }
    let mut faults = Vec::new();
    for _ in 0..r.seq_len(16)? {
        faults.push(WorkerFault {
            site: r.str()?,
            message: r.str()?,
        });
    }
    if !r.is_empty() {
        return Err(PersistError::Malformed(format!(
            "{} trailing bytes after snapshot",
            r.remaining()
        )));
    }
    Ok(SearchSeed {
        states,
        parents,
        violations,
        violation_indices,
        violated,
        dedup_hits,
        faults,
        frontier,
        states_per_depth,
        depth,
    })
}

/// Write a checkpoint at a level barrier, honoring the throttle. Write
/// failures are contained (the search result is still correct without a
/// snapshot) and surface as a `persist.snapshot_failed` counter.
fn checkpoint_at_barrier<M: Model>(
    model: &M,
    search: &mut Search<'_, M::State>,
    barrier: &Barrier<'_>,
    obs: &Obs,
    last_write: &mut Instant,
    writes: &mut u64,
    force: bool,
) {
    let Some(path) = search.config.checkpoint_path.clone() else {
        return;
    };
    let every = search.config.checkpoint_every_secs;
    if !force && every > 0 && last_write.elapsed().as_secs() < every {
        return;
    }
    // A manifest checkpoint references the shard files, so they must be
    // brought up to date first. A failed flush skips this checkpoint —
    // the previous snapshot stays valid, the search is unaffected.
    if search.config.spill_dir.is_some() {
        if let VisitedSet::Encoded { store } = &mut search.visited {
            if !store.flush_all(obs) {
                obs.counter("persist.snapshot_failed", 1);
                return;
            }
        }
    }
    let Some(payload) = encode_checkpoint(model, search, barrier, obs) else {
        return;
    };
    // Deterministic persist-fault injection: the write index counts
    // *attempts* (in barrier order, jobs-independent), so a planned
    // `FaultSite::PersistWrite` at scope "explorer" fails the same
    // barrier's snapshot at every jobs value. Like a real write error,
    // an injected one degrades crash-safety only — counted, not raised.
    let n = *writes;
    *writes += 1;
    let injected = search
        .config
        .fault_plan
        .as_ref()
        .is_some_and(|plan| plan.persist_write_fails("explorer", n));
    if injected {
        obs.counter("persist.fault_injected", 1);
        obs.counter("persist.snapshot_failed", 1);
        return;
    }
    match write_snapshot(&path, SnapshotKind::Explorer, &payload, obs) {
        Ok(_) => *last_write = Instant::now(),
        Err(_) => obs.counter("persist.snapshot_failed", 1),
    }
}

/// The level-synchronous BFS driver, parameterized over how a level is
/// expanded (sequentially, or fanned out over worker threads) and over
/// its starting point (a fresh search, or a decoded checkpoint).
fn explore_driver<M, E>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    obs: &Obs,
    mut expand: E,
    seed: SearchSeed<M::State>,
) -> Exploration<M::State>
where
    M: Model,
    E: for<'m> FnMut(
        &M,
        &mut Search<'m, M::State>,
        &[usize],
        usize,
        &Limits,
        &Obs,
    ) -> Option<StopReason>,
{
    let start = Instant::now();
    let SearchSeed {
        states: seed_states,
        parents,
        violations,
        violation_indices,
        violated,
        dedup_hits,
        faults,
        frontier: seed_frontier,
        states_per_depth: seed_states_per_depth,
        depth: seed_depth,
    } = seed;
    // Visited-set mode: encoded canonical bytes (compact, spillable)
    // when the model has a state codec, hashed values otherwise.
    let encoded = seed_states
        .first()
        .map(|s| model.encode_state(s).is_some())
        .unwrap_or(false);
    let visited = if encoded {
        let spill = config.spill_dir.clone().map(|dir| SpillSettings {
            dir,
            fault_plan: config.fault_plan.clone(),
        });
        let mut store = VisitedStore::new(config.spill_shards, spill);
        for state in &seed_states {
            let bytes = model.encode_state(state).expect("encoder checked above");
            store
                .lookup_or_insert(bytes, usize::MAX, obs)
                .expect("a fresh store has nothing to reload");
        }
        debug_assert_eq!(store.len(), seed_states.len());
        VisitedSet::Encoded { store }
    } else {
        let mut index = HashMap::with_capacity(seed_states.len());
        for (idx, state) in seed_states.iter().enumerate() {
            index.insert(state.clone(), idx);
        }
        VisitedSet::Plain {
            states: seed_states,
            index,
        }
    };
    let mut search = Search {
        monitors,
        config,
        visited,
        parents,
        violations,
        violation_indices,
        violated,
        next_frontier: Vec::new(),
        dedup_hits,
        faults,
        unexpanded: 0,
        mem_pressure: false,
        degradation: Vec::new(),
        timed: obs.enabled(),
        succ_time: Duration::ZERO,
        dedup_time: Duration::ZERO,
    };
    let mut frontier = seed_frontier;
    let mut states_per_depth = seed_states_per_depth;
    let mut depth = seed_depth;
    let mut last_checkpoint = Instant::now();
    let mut checkpoint_writes = 0u64;
    let mut last_heartbeat = Instant::now();
    // A resumed seed may already sit over the memory ceiling: give the
    // spill tier one pass before the budget gets to stop anything. Then
    // a budget already spent (cancelled before start, expired deadline,
    // unspillable overweight) stops the search before the first
    // expansion: the seed states alone, zero work.
    let mut stop: Option<StopReason> = search.barrier_spill(obs);
    if stop.is_none() {
        stop = config.budget.check(search.heap_estimate()).err();
    }

    while stop.is_none() && !frontier.is_empty() && depth < limits.max_depth {
        depth += 1;
        let _level = obs.span(&format!("mc.level:{depth}"));
        let level_start = search.len();
        let level_faults = search.faults.len();
        let (succ_before, dedup_before) = (search.succ_time, search.dedup_time);
        let dedup_hits_before = search.dedup_hits;
        stop = expand(model, &mut search, &frontier, depth, limits, obs);
        states_per_depth.push(search.len() - level_start);
        obs.gauge("mc.frontier", search.next_frontier.len() as f64);
        obs.counter("mc.states", search.next_frontier.len() as u64);
        // Per-level dedup hits: the explorer's analogue of a cache hit —
        // how many generated successors were already-seen states. The
        // concrete explorer never rewrites (successors are computed by
        // direct term construction), so this, not a normal-form cache,
        // is where its redundant work is saved.
        let level_dedup_hits = (search.dedup_hits - dedup_hits_before) as u64;
        if level_dedup_hits > 0 {
            obs.counter(&format!("mc.dedup_hits:{depth}"), level_dedup_hits);
        }
        if search.timed {
            // Per-level phase split: successor generation vs. merge/dedup
            // (suffixed like the rewrite engine's per-rule counters, so
            // prefix queries rank levels by cost).
            let succ_us = (search.succ_time - succ_before).as_micros() as u64;
            let dedup_us = (search.dedup_time - dedup_before).as_micros() as u64;
            if succ_us > 0 {
                obs.counter(&format!("mc.succ_us:{depth}"), succ_us);
            }
            if dedup_us > 0 {
                obs.counter(&format!("mc.dedup_us:{depth}"), dedup_us);
            }
        }
        let new_faults = search.faults.len() - level_faults;
        if new_faults > 0 {
            obs.counter("mc.worker_fault", new_faults as u64);
        }
        frontier = std::mem::take(&mut search.next_frontier);
        let every = config.heartbeat_every_secs;
        if every > 0 && last_heartbeat.elapsed().as_secs() >= every {
            last_heartbeat = Instant::now();
            // Rates go through the shared guard: a heartbeat early in a
            // fast run omits the rate instead of fabricating one.
            let rate = equitls_obs::summary::rate_per_sec(search.len() as u64, start.elapsed())
                .map(|r| format!(", {r:.0} states/s"))
                .unwrap_or_default();
            eprintln!(
                "mc: depth {depth}: {} states, frontier {}, dedup {} ({:.1?} elapsed{rate})",
                search.len(),
                frontier.len(),
                search.dedup_hits,
                start.elapsed(),
            );
        }
        // The level barrier is where shards spill (deterministically, in
        // shard order — never mid-level) and where checkpoints land: the
        // only points where the search state is a complete, deterministic
        // prefix of the full run. A mid-level stop leaves the previous
        // barrier's snapshot in place; the resumed run recomputes the
        // interrupted level and lands on the identical result.
        if stop.is_none() {
            stop = search.barrier_spill(obs);
        }
        if stop.is_none() {
            let barrier = Barrier {
                frontier: &frontier,
                states_per_depth: &states_per_depth,
                depth,
            };
            checkpoint_at_barrier(
                model,
                &mut search,
                &barrier,
                obs,
                &mut last_checkpoint,
                &mut checkpoint_writes,
                false,
            );
        }
    }
    // A frontier left unexpanded by the depth cap is also an early stop.
    if stop.is_none() && !frontier.is_empty() {
        stop = Some(StopReason::DepthCapReached);
    }
    // On a clean end (space exhausted or depth-capped) force a final
    // write even if the throttle suppressed the last barrier, so the
    // snapshot on disk replays to the finished result.
    if stop.is_none() || stop == Some(StopReason::DepthCapReached) {
        let barrier = Barrier {
            frontier: &frontier,
            states_per_depth: &states_per_depth,
            depth,
        };
        checkpoint_at_barrier(
            model,
            &mut search,
            &barrier,
            obs,
            &mut last_checkpoint,
            &mut checkpoint_writes,
            true,
        );
    }
    // Truncation disclosure: everything still enqueued when the search
    // stopped — the dropped remainder of an interrupted level plus the
    // frontier that never got its level (also the depth-capped case).
    let unexpanded = search.unexpanded + if stop.is_some() { frontier.len() } else { 0 };
    let (spill_shards, spill_bytes, spill_reloads) = search.spill_stats();
    let result = Exploration {
        states: search.len(),
        depth_reached: depth,
        complete: stop.is_none(),
        violations: search.violations,
        states_per_depth,
        dedup_hits: search.dedup_hits,
        stop_reason: stop,
        faults: search.faults,
        unexpanded,
        degradation: search.degradation,
        spill_shards,
        spill_bytes,
        spill_reloads,
        duration: start.elapsed(),
    };
    if obs.enabled() {
        obs.gauge("mc.states_per_sec", result.states_per_sec());
        obs.gauge("mc.dedup_hit_rate", result.dedup_hit_rate());
    }
    result
}

/// The fresh-start driver: seed a new search and run it.
fn explore_core<M, E>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    obs: &Obs,
    expand: E,
) -> Exploration<M::State>
where
    M: Model,
    E: for<'m> FnMut(
        &M,
        &mut Search<'m, M::State>,
        &[usize],
        usize,
        &Limits,
        &Obs,
    ) -> Option<StopReason>,
{
    let seed = initial_seed(model, monitors);
    explore_driver(model, monitors, limits, config, obs, expand, seed)
}

/// Resume an exploration from the snapshot at `config.checkpoint_path`
/// on `jobs` worker threads, continuing to checkpoint as it goes.
///
/// The search restarts at the checkpointed level barrier and finishes the
/// run; because checkpoints only land at barriers (deterministic prefixes
/// of the full run), the final [`Exploration`] is bit-identical to an
/// uninterrupted run at every `jobs` value. Errors are typed: a missing
/// path, an unreadable file, a truncated or corrupted snapshot, and an
/// internally inconsistent payload are each reported as their own
/// [`PersistError`] — never deserialized into garbage.
pub fn explore_resume_with_config_jobs<M>(
    model: &M,
    monitors: &[Monitor<'_, M::State>],
    limits: &Limits,
    config: &ExploreConfig,
    jobs: usize,
    obs: &Obs,
) -> Result<Exploration<M::State>, PersistError>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    let path = config
        .checkpoint_path
        .as_ref()
        .ok_or(PersistError::MissingPath)?;
    let (_meta, payload) = read_snapshot(path, SnapshotKind::Explorer, obs)?;
    let seed = decode_checkpoint(model, &payload, config.spill_dir.as_deref(), obs)?;
    let jobs = resolve_jobs(jobs);
    Ok(explore_driver(
        model,
        monitors,
        limits,
        config,
        obs,
        move |model, search, frontier, depth, limits, obs| {
            expand_level_par(model, search, frontier, depth, limits, jobs, obs)
        },
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    /// A toy counter model: increments up to 5, with a "reset" self-loop.
    struct Counter;

    impl Model for Counter {
        type State = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn successors(&self, s: &u8) -> Vec<(String, u8)> {
            if *s >= 5 {
                vec![]
            } else {
                vec![(format!("inc->{}", s + 1), s + 1), ("reset".into(), 0)]
            }
        }

        fn encode_state(&self, s: &u8) -> Option<Vec<u8>> {
            Some(vec![*s])
        }

        fn decode_state(&self, bytes: &[u8]) -> Option<u8> {
            match bytes {
                [s] => Some(*s),
                _ => None,
            }
        }
    }

    /// A 5×5 grid walked right/down: wide frontiers and diamond-shaped
    /// dedup, so the parallel path genuinely fans out.
    struct Grid;

    impl Model for Grid {
        type State = (u8, u8);

        fn initial(&self) -> (u8, u8) {
            (0, 0)
        }

        fn successors(&self, &(x, y): &(u8, u8)) -> Vec<(String, (u8, u8))> {
            let mut out = Vec::new();
            if x < 4 {
                out.push((format!("right@{x},{y}"), (x + 1, y)));
            }
            if y < 4 {
                out.push((format!("down@{x},{y}"), (x, y + 1)));
            }
            out
        }

        fn encode_state(&self, &(x, y): &(u8, u8)) -> Option<Vec<u8>> {
            Some(vec![x, y])
        }

        fn decode_state(&self, bytes: &[u8]) -> Option<(u8, u8)> {
            match bytes {
                [x, y] => Some((*x, *y)),
                _ => None,
            }
        }
    }

    #[test]
    fn exhausts_a_small_space() {
        let result = explore(&Counter, &[], &Limits::default());
        assert_eq!(result.states, 6);
        assert!(result.complete);
        assert!(result.all_hold());
    }

    #[test]
    fn finds_a_violation_with_a_minimal_trace() {
        let below_three = |s: &u8| *s < 3;
        let result = explore(
            &Counter,
            &[("below-three", &below_three)],
            &Limits::default(),
        );
        let v = result.violation("below-three").expect("violated");
        assert_eq!(v.depth, 3);
        assert_eq!(v.trace.len(), 3);
        assert_eq!(*v.trace.last().map(|(_, s)| s).unwrap(), 3);
        assert!(!result.all_hold());
    }

    #[test]
    fn respects_state_limits() {
        let limits = Limits {
            max_states: 3,
            max_depth: 10,
        };
        let result = explore(&Counter, &[], &limits);
        assert!(result.states <= 4);
        assert!(!result.complete);
    }

    #[test]
    fn respects_depth_limits() {
        let limits = Limits {
            max_states: 1000,
            max_depth: 2,
        };
        let result = explore(&Counter, &[], &limits);
        assert_eq!(result.depth_reached, 2);
        assert!(!result.complete);
        assert_eq!(result.states_per_depth.len(), 3);
    }

    #[test]
    fn counts_dedup_hits_and_rates() {
        // Every "reset" successor re-reaches state 0, and every "inc"
        // successor beyond the first visit of its target is a duplicate.
        let result = explore(&Counter, &[], &Limits::default());
        assert!(result.dedup_hits > 0);
        let rate = result.dedup_hit_rate();
        assert!(rate > 0.0 && rate < 1.0, "rate {rate}");
        // 6 distinct states, so generated = dedup_hits + 5.
        assert_eq!(
            (result.dedup_hits as f64 / (result.dedup_hits + 5) as f64).to_bits(),
            rate.to_bits()
        );
    }

    #[test]
    fn obs_variant_emits_levels_and_gauges() {
        use equitls_obs::sink::{Obs, RecordingSink};
        use equitls_obs::summary::MetricsSummary;
        use std::sync::Arc;

        let recorder = Arc::new(RecordingSink::new());
        let obs = Obs::new(recorder.clone());
        let result = explore_with_obs(&Counter, &[], &Limits::default(), &obs);
        let summary = MetricsSummary::from_events(&recorder.events());
        // One span per expanded BFS level.
        let levels: usize = (1..=result.depth_reached)
            .filter(|d| summary.span(&format!("mc.level:{d}")).is_some())
            .count();
        assert_eq!(levels, result.depth_reached);
        assert_eq!(
            summary.counter_total("mc.states") as usize,
            result.states - 1,
            "counter covers every non-initial state"
        );
        assert!(summary.gauge("mc.states_per_sec").is_some());
        assert!(summary.gauge("mc.dedup_hit_rate").is_some());
    }

    #[test]
    fn reports_one_violation_per_property() {
        let never = |_: &u8| false;
        let result = explore(&Counter, &[("never", &never)], &Limits::default());
        assert_eq!(result.violations.len(), 1);
        assert_eq!(result.violations[0].depth, 0);
        assert!(result.violations[0].trace.is_empty());
    }

    #[test]
    fn truncation_accounting_is_consistent_at_every_cap() {
        // The Counter space has exactly 6 states. Wherever the cap lands
        // — first frontier entry, mid-level, exactly the true count —
        // the books must balance.
        for max_states in 1..=8 {
            let limits = Limits {
                max_states,
                max_depth: 10,
            };
            let result = explore(&Counter, &[], &limits);
            assert_eq!(
                result.states,
                max_states.min(6),
                "cap {max_states}: never exceeds the cap, never undershoots it"
            );
            assert_eq!(
                result.states_per_depth.iter().sum::<usize>(),
                result.states,
                "cap {max_states}: per-level counts sum to the state count"
            );
            assert_eq!(
                result.states_per_depth.len(),
                result.depth_reached + 1,
                "cap {max_states}: one level entry per reached depth"
            );
            assert_eq!(
                result.complete,
                result.states == 6,
                "cap {max_states}: complete iff the space was exhausted"
            );
        }
    }

    #[test]
    fn truncation_accounting_matches_on_wide_frontiers() {
        // On the grid the cap can land on any frontier entry of a wide
        // level; parallel merge must truncate at the identical point.
        for max_states in [1, 5, 7, 12, 24, 25, 40] {
            let limits = Limits {
                max_states,
                max_depth: 16,
            };
            let seq = explore(&Grid, &[], &limits);
            for jobs in [2, 4] {
                let par = explore_jobs(&Grid, &[], &limits, jobs);
                assert_eq!(par.states, seq.states, "cap {max_states} jobs {jobs}");
                assert_eq!(par.complete, seq.complete, "cap {max_states} jobs {jobs}");
                assert_eq!(
                    par.states_per_depth, seq.states_per_depth,
                    "cap {max_states} jobs {jobs}"
                );
                assert_eq!(
                    par.dedup_hits, seq.dedup_hits,
                    "cap {max_states} jobs {jobs}"
                );
            }
        }
    }

    #[test]
    fn parallel_exploration_is_deterministic() {
        let on_diagonal = |s: &(u8, u8)| s.0 != s.1 || s.0 < 3;
        let monitors: [Monitor<'_, (u8, u8)>; 1] = [("off-diagonal", &on_diagonal)];
        let seq = explore(&Grid, &monitors, &Limits::default());
        assert!(!seq.all_hold());
        for jobs in [1, 2, 4, 8] {
            let par = explore_jobs(&Grid, &monitors, &Limits::default(), jobs);
            assert_eq!(par.states, seq.states, "jobs {jobs}");
            assert_eq!(par.complete, seq.complete, "jobs {jobs}");
            assert_eq!(par.depth_reached, seq.depth_reached, "jobs {jobs}");
            assert_eq!(par.states_per_depth, seq.states_per_depth, "jobs {jobs}");
            assert_eq!(par.dedup_hits, seq.dedup_hits, "jobs {jobs}");
            assert_eq!(par.violations.len(), seq.violations.len(), "jobs {jobs}");
            for (pv, sv) in par.violations.iter().zip(&seq.violations) {
                assert_eq!(pv.property, sv.property, "jobs {jobs}");
                assert_eq!(pv.depth, sv.depth, "jobs {jobs}");
                assert_eq!(pv.trace, sv.trace, "jobs {jobs}");
            }
        }
    }

    #[test]
    fn states_per_sec_is_guarded_on_short_runs() {
        let mk = |states: usize, duration: Duration| Exploration::<u8> {
            states,
            depth_reached: 1,
            complete: true,
            violations: Vec::new(),
            states_per_depth: vec![1],
            dedup_hits: 0,
            stop_reason: None,
            faults: Vec::new(),
            unexpanded: 0,
            degradation: Vec::new(),
            spill_shards: 0,
            spill_bytes: 0,
            spill_reloads: 0,
            duration,
        };
        // A zero-length run cannot report a rate.
        assert_eq!(mk(100, Duration::ZERO).states_per_sec(), 0.0);
        // A 10 µs run must not extrapolate to 10M states/sec: the divisor
        // clamps at 1 ms, bounding the result.
        let fast = mk(100, Duration::from_micros(10)).states_per_sec();
        assert!((fast - 100_000.0).abs() < 1e-6, "got {fast}");
        // Runs long enough to measure divide normally.
        let slow = mk(100, Duration::from_secs(2)).states_per_sec();
        assert!((slow - 50.0).abs() < 1e-9, "got {slow}");
        // No states, no rate.
        assert_eq!(mk(0, Duration::from_secs(1)).states_per_sec(), 0.0);
    }

    #[test]
    fn resolve_jobs_zero_means_available_parallelism() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(7), 7);
    }

    #[test]
    fn structural_stops_carry_typed_reasons() {
        let capped = explore(
            &Counter,
            &[],
            &Limits {
                max_states: 3,
                max_depth: 10,
            },
        );
        assert_eq!(capped.stop_reason, Some(StopReason::StateCapReached));
        assert!(!capped.complete);

        let shallow = explore(
            &Counter,
            &[],
            &Limits {
                max_states: 1000,
                max_depth: 2,
            },
        );
        assert_eq!(shallow.stop_reason, Some(StopReason::DepthCapReached));
        assert!(!shallow.complete);

        let full = explore(&Counter, &[], &Limits::default());
        assert_eq!(full.stop_reason, None);
        assert!(full.complete);
    }

    #[test]
    fn expired_deadline_yields_a_partial_consistent_exploration() {
        let config = ExploreConfig {
            budget: Budget::unlimited().with_deadline(Duration::ZERO),
            fault_plan: None,
            ..Default::default()
        };
        let result = explore_with_config(&Grid, &[], &Limits::default(), &config, &Obs::noop());
        assert_eq!(result.stop_reason, Some(StopReason::DeadlineExceeded));
        assert!(!result.complete);
        assert_eq!(
            result.states_per_depth.iter().sum::<usize>(),
            result.states,
            "partial tally stays internally consistent"
        );
    }

    #[test]
    fn memory_ceiling_stops_before_the_first_expansion() {
        let config = ExploreConfig {
            budget: Budget::unlimited().with_max_heap_bytes(1),
            fault_plan: None,
            ..Default::default()
        };
        let result = explore_with_config(&Grid, &[], &Limits::default(), &config, &Obs::noop());
        assert_eq!(result.stop_reason, Some(StopReason::MemoryExceeded));
        assert_eq!(result.states, 1, "only the initial state is stored");
        assert_eq!(result.states_per_depth, vec![1]);
    }

    #[test]
    fn cancel_token_stops_exploration_cooperatively() {
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let config = ExploreConfig {
            budget,
            fault_plan: None,
            ..Default::default()
        };
        let result = explore_with_config(&Grid, &[], &Limits::default(), &config, &Obs::noop());
        assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
        assert!(!result.complete);
    }

    #[test]
    fn injected_deadline_truncates_identically_at_every_jobs_value() {
        use equitls_rewrite::budget::Fault;
        // The deadline "expires" exactly when frontier entry 7 is merged.
        let config = ExploreConfig {
            budget: Budget::unlimited(),
            fault_plan: Some(FaultPlan::new().with_fault(Fault::new(
                FaultSite::Successor,
                FaultKind::DeadlineExpiry,
                7,
            ))),
            ..Default::default()
        };
        let seq = explore_with_config(&Grid, &[], &Limits::default(), &config, &Obs::noop());
        assert_eq!(seq.stop_reason, Some(StopReason::DeadlineExceeded));
        assert!(!seq.complete);
        assert!(
            seq.states < 25,
            "the grid was truncated (got {})",
            seq.states
        );
        assert_eq!(seq.states_per_depth.iter().sum::<usize>(), seq.states);
        for jobs in [2, 4] {
            let par = explore_with_config_jobs(
                &Grid,
                &[],
                &Limits::default(),
                &config,
                jobs,
                &Obs::noop(),
            );
            assert_eq!(par.states, seq.states, "jobs {jobs}");
            assert_eq!(par.stop_reason, seq.stop_reason, "jobs {jobs}");
            assert_eq!(par.states_per_depth, seq.states_per_depth, "jobs {jobs}");
            assert_eq!(par.dedup_hits, seq.dedup_hits, "jobs {jobs}");
        }
    }

    #[test]
    fn injected_successor_panic_is_contained_and_deterministic() {
        use equitls_rewrite::budget::Fault;
        // State 3's successor computation panics; the search must record
        // one typed fault, skip that subtree, and finish the rest.
        let config = ExploreConfig {
            budget: Budget::unlimited(),
            fault_plan: Some(FaultPlan::new().with_fault(Fault::new(
                FaultSite::Successor,
                FaultKind::Panic,
                3,
            ))),
            ..Default::default()
        };
        let limits = Limits {
            max_states: 1000,
            max_depth: 16,
        };
        let seq = explore_with_config(&Grid, &[], &limits, &config, &Obs::noop());
        assert_eq!(seq.faults.len(), 1);
        assert_eq!(seq.faults[0].site, "successor:3");
        assert!(
            seq.faults[0].message.contains("injected fault"),
            "payload surfaced: {}",
            seq.faults[0].message
        );
        assert!(seq.complete, "a contained fault is not an early stop");
        assert_eq!(seq.stop_reason, None);
        for jobs in [2, 4] {
            let par = explore_with_config_jobs(&Grid, &[], &limits, &config, jobs, &Obs::noop());
            assert_eq!(par.states, seq.states, "jobs {jobs}");
            assert_eq!(par.faults, seq.faults, "jobs {jobs}");
            assert_eq!(par.states_per_depth, seq.states_per_depth, "jobs {jobs}");
            assert_eq!(par.violations.len(), seq.violations.len(), "jobs {jobs}");
        }
    }

    fn tmp_snapshot(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("equitls_mc_{}_{name}.snap", std::process::id()))
    }

    #[test]
    fn interrupted_then_resumed_grid_matches_straight_through() {
        use equitls_rewrite::budget::Fault;
        let on_diagonal = |s: &(u8, u8)| s.0 != s.1 || s.0 < 3;
        let monitors: [Monitor<'_, (u8, u8)>; 1] = [("off-diagonal", &on_diagonal)];
        let straight = explore(&Grid, &monitors, &Limits::default());
        for jobs in [1usize, 2, 4] {
            let path = tmp_snapshot(&format!("grid_resume_{jobs}"));
            let _ = std::fs::remove_file(&path);
            // Interrupt: an injected deadline fires at frontier entry 7,
            // after at least one level barrier has checkpointed.
            let interrupted_config = ExploreConfig {
                fault_plan: Some(FaultPlan::new().with_fault(Fault::new(
                    FaultSite::Successor,
                    FaultKind::DeadlineExpiry,
                    7,
                ))),
                checkpoint_path: Some(path.clone()),
                ..Default::default()
            };
            let partial = explore_with_config_jobs(
                &Grid,
                &monitors,
                &Limits::default(),
                &interrupted_config,
                jobs,
                &Obs::noop(),
            );
            assert_eq!(partial.stop_reason, Some(StopReason::DeadlineExceeded));
            assert!(path.exists(), "a barrier checkpoint was written");
            // Resume without the fault and finish the search.
            let resume_config = ExploreConfig {
                checkpoint_path: Some(path.clone()),
                ..Default::default()
            };
            let resumed = explore_resume_with_config_jobs(
                &Grid,
                &monitors,
                &Limits::default(),
                &resume_config,
                jobs,
                &Obs::noop(),
            )
            .expect("snapshot loads");
            assert_eq!(resumed.states, straight.states, "jobs {jobs}");
            assert_eq!(resumed.complete, straight.complete, "jobs {jobs}");
            assert_eq!(resumed.depth_reached, straight.depth_reached, "jobs {jobs}");
            assert_eq!(
                resumed.states_per_depth, straight.states_per_depth,
                "jobs {jobs}"
            );
            assert_eq!(resumed.dedup_hits, straight.dedup_hits, "jobs {jobs}");
            assert_eq!(resumed.violations.len(), straight.violations.len());
            for (rv, sv) in resumed.violations.iter().zip(&straight.violations) {
                assert_eq!(rv.property, sv.property, "jobs {jobs}");
                assert_eq!(rv.depth, sv.depth, "jobs {jobs}");
                assert_eq!(rv.trace, sv.trace, "jobs {jobs}");
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn resuming_a_finished_exploration_replays_the_same_result() {
        let path = tmp_snapshot("grid_finished");
        let _ = std::fs::remove_file(&path);
        let config = ExploreConfig {
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        };
        let straight =
            explore_with_config(&Counter, &[], &Limits::default(), &config, &Obs::noop());
        assert!(straight.complete);
        let resumed = explore_resume_with_config_jobs(
            &Counter,
            &[],
            &Limits::default(),
            &config,
            1,
            &Obs::noop(),
        )
        .expect("snapshot loads");
        assert_eq!(resumed.states, straight.states);
        assert_eq!(resumed.complete, straight.complete);
        assert_eq!(resumed.states_per_depth, straight.states_per_depth);
        assert_eq!(resumed.dedup_hits, straight.dedup_hits);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_errors_are_typed_never_garbage() {
        // No checkpoint path configured.
        let result = explore_resume_with_config_jobs(
            &Grid,
            &[],
            &Limits::default(),
            &ExploreConfig::default(),
            1,
            &Obs::noop(),
        );
        assert_eq!(result.err(), Some(PersistError::MissingPath));
        // A file that is not a snapshot at all.
        let path = tmp_snapshot("garbage");
        std::fs::write(&path, b"not a snapshot").unwrap();
        let config = ExploreConfig {
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        };
        let result = explore_resume_with_config_jobs(
            &Grid,
            &[],
            &Limits::default(),
            &config,
            1,
            &Obs::noop(),
        );
        assert_eq!(result.err(), Some(PersistError::BadMagic));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn models_without_state_encoding_skip_checkpointing() {
        /// Supports exploration but not persistence (the trait defaults).
        struct Opaque;
        impl Model for Opaque {
            type State = u8;
            fn initial(&self) -> u8 {
                0
            }
            fn successors(&self, s: &u8) -> Vec<(String, u8)> {
                if *s < 3 {
                    vec![("next".into(), s + 1)]
                } else {
                    vec![]
                }
            }
        }
        let path = tmp_snapshot("opaque");
        let _ = std::fs::remove_file(&path);
        let config = ExploreConfig {
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        };
        let result = explore_with_config(&Opaque, &[], &Limits::default(), &config, &Obs::noop());
        assert!(result.complete, "the search itself is unaffected");
        assert!(!path.exists(), "no snapshot is written without an encoder");
    }

    fn tmp_spill_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("equitls_mc_spill_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Limits deep enough for the grid to drain its frontier completely
    /// ([`Limits::default`] depth-caps the last corner state at 8).
    fn full_limits() -> Limits {
        Limits {
            max_states: 200_000,
            max_depth: 16,
        }
    }

    fn assert_same_result(a: &Exploration<(u8, u8)>, b: &Exploration<(u8, u8)>, tag: &str) {
        assert_eq!(a.states, b.states, "{tag}");
        assert_eq!(a.complete, b.complete, "{tag}");
        assert_eq!(a.depth_reached, b.depth_reached, "{tag}");
        assert_eq!(a.states_per_depth, b.states_per_depth, "{tag}");
        assert_eq!(a.dedup_hits, b.dedup_hits, "{tag}");
        assert_eq!(a.unexpanded, b.unexpanded, "{tag}");
        assert_eq!(a.stop_reason, b.stop_reason, "{tag}");
        assert_eq!(a.violations.len(), b.violations.len(), "{tag}");
        for (av, bv) in a.violations.iter().zip(&b.violations) {
            assert_eq!(av.property, bv.property, "{tag}");
            assert_eq!(av.depth, bv.depth, "{tag}");
            assert_eq!(av.trace, bv.trace, "{tag}");
        }
    }

    #[test]
    fn unexpanded_discloses_dropped_states_at_every_jobs_value() {
        use equitls_rewrite::budget::Fault;
        // A complete run drops nothing.
        let full = explore(&Grid, &[], &full_limits());
        assert_eq!(full.unexpanded, 0);
        // A depth-capped run discloses the frontier it never expanded.
        let shallow = explore(
            &Grid,
            &[],
            &Limits {
                max_states: 1000,
                max_depth: 2,
            },
        );
        assert_eq!(shallow.stop_reason, Some(StopReason::DepthCapReached));
        assert_eq!(
            shallow.unexpanded,
            *shallow.states_per_depth.last().unwrap(),
            "the depth-capped frontier is exactly the last level"
        );
        // A mid-level stop discloses the dropped remainder — and the
        // count is identical at every jobs value, because injected stops
        // land at the same frontier position.
        let config = ExploreConfig {
            fault_plan: Some(FaultPlan::new().with_fault(Fault::new(
                FaultSite::Successor,
                FaultKind::DeadlineExpiry,
                7,
            ))),
            ..Default::default()
        };
        let seq = explore_with_config(&Grid, &[], &Limits::default(), &config, &Obs::noop());
        assert_eq!(seq.stop_reason, Some(StopReason::DeadlineExceeded));
        assert!(seq.unexpanded > 0, "a mid-level stop drops states");
        // The books balance: every state is visited, enqueued, or never
        // generated — the disclosed part is what was enqueued and dropped.
        assert_eq!(seq.states_per_depth.iter().sum::<usize>(), seq.states);
        for jobs in [2, 4] {
            let par = explore_with_config_jobs(
                &Grid,
                &[],
                &Limits::default(),
                &config,
                jobs,
                &Obs::noop(),
            );
            assert_eq!(par.unexpanded, seq.unexpanded, "jobs {jobs}");
            assert_eq!(par.states, seq.states, "jobs {jobs}");
        }
        // The structural state cap also disclosed: cap the grid at 7.
        let capped = explore(
            &Grid,
            &[],
            &Limits {
                max_states: 7,
                max_depth: 16,
            },
        );
        assert_eq!(capped.stop_reason, Some(StopReason::StateCapReached));
        assert!(capped.unexpanded > 0);
    }

    #[test]
    fn spilled_exploration_is_bit_identical_to_resident() {
        let on_diagonal = |s: &(u8, u8)| s.0 != s.1 || s.0 < 3;
        let monitors: [Monitor<'_, (u8, u8)>; 1] = [("off-diagonal", &on_diagonal)];
        let resident = explore(&Grid, &monitors, &Limits::default());
        assert!(!resident.all_hold());
        for jobs in [1usize, 2, 4] {
            let dir = tmp_spill_dir(&format!("identical_{jobs}"));
            let config = ExploreConfig {
                spill_dir: Some(dir.clone()),
                max_resident_shards: 1,
                spill_shards: 4,
                ..Default::default()
            };
            let spilled = explore_with_config_jobs(
                &Grid,
                &monitors,
                &Limits::default(),
                &config,
                jobs,
                &Obs::noop(),
            );
            assert_same_result(&spilled, &resident, &format!("jobs {jobs}"));
            assert!(spilled.spill_shards > 0, "jobs {jobs}: shards spilled");
            assert!(
                spilled.degradation.iter().any(|d| d == "visited-spilled"),
                "jobs {jobs}: degradation disclosed, got {:?}",
                spilled.degradation
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn memory_pressure_spills_instead_of_truncating() {
        // A ceiling the resident run cannot fit (the grid needs ~3.9 KB
        // of estimate resident, ~2.6 KB unspillable): without a spill
        // dir the search truncates with the typed stop; with one it
        // completes by spilling — the same ceiling, disclosed degradation
        // instead of silence.
        let ceiling = 3000;
        let truncated = explore_with_config(
            &Grid,
            &[],
            &full_limits(),
            &ExploreConfig {
                budget: Budget::unlimited().with_max_heap_bytes(ceiling),
                ..Default::default()
            },
            &Obs::noop(),
        );
        assert_eq!(truncated.stop_reason, Some(StopReason::MemoryExceeded));
        assert!(!truncated.complete);
        assert!(truncated.unexpanded > 0, "the truncation is disclosed");

        let dir = tmp_spill_dir("pressure");
        let spilled = explore_with_config(
            &Grid,
            &[],
            &full_limits(),
            &ExploreConfig {
                budget: Budget::unlimited().with_max_heap_bytes(ceiling),
                spill_dir: Some(dir.clone()),
                spill_shards: 4,
                ..Default::default()
            },
            &Obs::noop(),
        );
        assert_eq!(spilled.stop_reason, None, "the spill tier absorbed it");
        assert!(spilled.complete);
        assert_eq!(spilled.states, 25, "the full grid");
        assert!(spilled.spill_shards > 0);
        assert!(spilled.degradation.iter().any(|d| d == "visited-spilled"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_checkpoint_resume_matches_straight_through() {
        use equitls_rewrite::budget::Fault;
        let on_diagonal = |s: &(u8, u8)| s.0 != s.1 || s.0 < 3;
        let monitors: [Monitor<'_, (u8, u8)>; 1] = [("off-diagonal", &on_diagonal)];
        let straight = explore(&Grid, &monitors, &Limits::default());
        let dir = tmp_spill_dir("resume");
        let path = tmp_snapshot("spilled_resume");
        let _ = std::fs::remove_file(&path);
        let spill_config = |fault_plan: Option<FaultPlan>| ExploreConfig {
            fault_plan,
            checkpoint_path: Some(path.clone()),
            spill_dir: Some(dir.clone()),
            max_resident_shards: 1,
            spill_shards: 4,
            ..Default::default()
        };
        // Interrupt mid-search, after barriers that both spilled shards
        // and wrote a manifest checkpoint.
        let partial = explore_with_config(
            &Grid,
            &monitors,
            &Limits::default(),
            &spill_config(Some(FaultPlan::new().with_fault(Fault::new(
                FaultSite::Successor,
                FaultKind::DeadlineExpiry,
                7,
            )))),
            &Obs::noop(),
        );
        assert_eq!(partial.stop_reason, Some(StopReason::DeadlineExceeded));
        assert!(
            partial.spill_shards > 0,
            "shards went to disk before the stop"
        );
        assert!(path.exists(), "a manifest checkpoint was written");
        // Resume revalidates every shard's checksum + digest, then
        // finishes — bit-identical to the uninterrupted resident run.
        for jobs in [1usize, 2, 4] {
            let resumed = explore_resume_with_config_jobs(
                &Grid,
                &monitors,
                &Limits::default(),
                &spill_config(None),
                jobs,
                &Obs::noop(),
            )
            .expect("manifest snapshot loads");
            assert_same_result(&resumed, &straight, &format!("resume jobs {jobs}"));
        }
        // A byte-flipped shard file fails the resume with the typed
        // checksum error — never garbage states.
        let shard_path = dir.join(shard_file_name(0));
        assert!(shard_path.exists());
        let mut raw = std::fs::read(&shard_path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&shard_path, &raw).unwrap();
        let err = explore_resume_with_config_jobs(
            &Grid,
            &monitors,
            &Limits::default(),
            &spill_config(None),
            1,
            &Obs::noop(),
        )
        .expect_err("a corrupt shard cannot resume");
        assert_eq!(err, PersistError::ChecksumMismatch);
        // And a manifest checkpoint without its spill dir is typed too.
        let no_dir = ExploreConfig {
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        };
        let err = explore_resume_with_config_jobs(
            &Grid,
            &monitors,
            &Limits::default(),
            &no_dir,
            1,
            &Obs::noop(),
        )
        .expect_err("manifest without a spill dir");
        assert!(matches!(err, PersistError::Malformed(_)), "got {err}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_spill_write_fault_degrades_without_data_loss() {
        use equitls_rewrite::budget::Fault;
        let resident = explore(&Grid, &[], &full_limits());
        let dir = tmp_spill_dir("wfault");
        // The very first shard write fails "disk full": that shard stays
        // resident (backpressure), the pass moves on, the search
        // completes with the identical result — degradation disclosed.
        let config = ExploreConfig {
            fault_plan: Some(FaultPlan::new().with_fault(
                Fault::new(FaultSite::SpillWrite, FaultKind::IoError, 0).in_scope("visited"),
            )),
            spill_dir: Some(dir.clone()),
            max_resident_shards: 1,
            spill_shards: 2,
            ..Default::default()
        };
        let faulted = explore_with_config(&Grid, &[], &full_limits(), &config, &Obs::noop());
        assert!(faulted.complete, "a write fault never wedges the search");
        assert_eq!(faulted.states, resident.states);
        assert_eq!(faulted.states_per_depth, resident.states_per_depth);
        assert_eq!(faulted.dedup_hits, resident.dedup_hits);
        assert!(
            faulted
                .degradation
                .iter()
                .any(|d| d == "spill-write-failed"),
            "got {:?}",
            faulted.degradation
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_spill_read_fault_stops_typed_never_panics() {
        use equitls_rewrite::budget::Fault;
        // One shard holds everything; the memory ceiling forces it to
        // disk mid-search, and the injected corruption makes every read
        // back fail. The search must stop with the typed reason and a
        // typed fault — identically at every jobs value — not panic.
        let mk = |jobs: usize| {
            let dir = tmp_spill_dir(&format!("rfault_{jobs}"));
            let config = ExploreConfig {
                budget: Budget::unlimited().with_max_heap_bytes(3000),
                fault_plan: Some(FaultPlan::new().with_fault(
                    Fault::new(FaultSite::SpillRead, FaultKind::Corruption, 0).in_scope("visited"),
                )),
                spill_dir: Some(dir.clone()),
                spill_shards: 1,
                ..Default::default()
            };
            let result = explore_with_config_jobs(
                &Grid,
                &[],
                &Limits::default(),
                &config,
                jobs,
                &Obs::noop(),
            );
            let _ = std::fs::remove_dir_all(&dir);
            result
        };
        let seq = mk(1);
        assert_eq!(seq.stop_reason, Some(StopReason::SpillFailed));
        assert!(!seq.complete);
        assert!(seq.unexpanded > 0, "the stop is disclosed");
        assert!(
            seq.faults.iter().any(|f| f.site == "spill:shard0"),
            "typed fault recorded: {:?}",
            seq.faults
        );
        assert_eq!(seq.states_per_depth.iter().sum::<usize>(), seq.states);
        for jobs in [2, 4] {
            let par = mk(jobs);
            assert_eq!(par.states, seq.states, "jobs {jobs}");
            assert_eq!(par.stop_reason, seq.stop_reason, "jobs {jobs}");
            assert_eq!(par.unexpanded, seq.unexpanded, "jobs {jobs}");
            assert_eq!(par.states_per_depth, seq.states_per_depth, "jobs {jobs}");
        }
    }
}
