//! Sharded compact visited set with a Murφ-style disk spill tier.
//!
//! The explorer's dedup set is the memory bottleneck of bounded checking:
//! the paper's §6 baseline (Mitchell et al.'s Murφ analysis) reached big
//! scopes precisely by spilling the visited set to disk. This module is
//! that tier, rebuilt on the workspace's own pieces:
//!
//! * **Compact states.** States are stored as their canonical encoded
//!   bytes ([`crate::model::Model::encode_state`]), not as hashed Rust
//!   values — a fraction of the in-memory footprint, and directly
//!   writable to disk.
//! * **Shards with striped locks.** Entries are sharded by state hash;
//!   each shard sits behind its own mutex so parallel level workers can
//!   [`probe`](VisitedStore::probe) for duplicates concurrently while
//!   the merge thread owns all mutation.
//! * **Disk spill.** Under memory pressure whole shards are evicted to
//!   checksummed snapshot files ([`SnapshotKind::VisitedShard`], written
//!   atomically by `equitls-persist`) and reloaded on demand. The
//!   per-entry *hash index stays resident*, so a brand-new state never
//!   needs a reload to be inserted — only a successor that hash-matches
//!   a spilled entry forces one.
//!
//! ## Determinism
//!
//! All mutation (insert, spill, reload) happens on the merge thread in
//! frontier order; spill decisions are taken only at level barriers, in
//! shard-id order, driven purely by byte estimates — never by wall
//! clock. Workers' concurrent probes are read-only and can only observe
//! a *definite hit* against resident entries, which the merge thread
//! counts exactly as a lookup hit would be. Verdicts, counts, and traces
//! are therefore bit-identical at every `jobs` value, spilled or not.
//!
//! ## Failure containment
//!
//! A failed shard *write* (disk full, injected [`FaultSite::SpillWrite`])
//! keeps the shard resident and degrades to backpressure — it is counted
//! and disclosed, never fatal. A failed shard *read* (corruption,
//! truncation, injected [`FaultSite::SpillRead`]) is a typed
//! [`SpillError`]: the search cannot soundly continue without its dedup
//! set, so the explorer stops with `StopReason::SpillFailed` — but never
//! panics and never decodes garbage states.

use equitls_obs::sink::Obs;
use equitls_persist::codec::{Reader, Writer};
use equitls_persist::{read_snapshot, write_snapshot, PersistError, SnapshotKind};
use equitls_rewrite::budget::{FaultKind, FaultPlan, FaultSite};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Default shard count: enough stripes that probe contention is rare and
/// one spilled shard is a usefully small eviction unit.
pub const DEFAULT_SHARDS: usize = 64;

/// Coarse bookkeeping overhead per *resident* entry (boxed slice header,
/// vec slot), on top of the entry's payload bytes.
const ENTRY_OVERHEAD_BYTES: u64 = 48;

/// Coarse always-resident overhead per entry: the locator pair plus the
/// hash-index slot, which stay in memory even when the shard is spilled.
const SLOT_INDEX_BYTES: u64 = 40;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice — the store's shard-placement hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fold_bytes(FNV_OFFSET, bytes)
}

fn fold_bytes(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc = (acc ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Fold one entry into a running shard digest: the length first, then
/// the bytes, so `("a","bc")` and `("ab","c")` digest differently.
fn fold_entry(acc: u64, bytes: &[u8]) -> u64 {
    fold_bytes(fold_bytes(acc, &(bytes.len() as u64).to_le_bytes()), bytes)
}

/// The stable file name of one spilled shard inside the spill directory.
pub fn shard_file_name(shard: u32) -> String {
    format!("shard{shard:04}.vshard")
}

/// Where (and how) the store may spill shards.
#[derive(Debug, Clone)]
pub struct SpillSettings {
    /// Directory for shard files (created on first write).
    pub dir: PathBuf,
    /// Deterministic fault injection for spill I/O (scope `"visited"`;
    /// [`FaultSite::SpillWrite`] by write-attempt index,
    /// [`FaultSite::SpillRead`] by shard id).
    pub fault_plan: Option<FaultPlan>,
}

/// A spill-tier read failure: the shard that could not be read back and
/// the typed persistence error that stopped it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillError {
    /// The shard whose bytes were needed.
    pub shard: u32,
    /// Why the read failed.
    pub error: PersistError,
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "visited shard {}: {}", self.shard, self.error)
    }
}

/// The outcome of [`VisitedStore::lookup_or_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The state was already in the store (a dedup hit).
    Known,
    /// The state was new and stored under this global index.
    Inserted(usize),
    /// The state was new but the cap refused it (nothing was stored).
    CapRefused,
}

/// Spill-tier counters, also surfaced as `mc.spill_*` obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Shards evicted from memory (with or without a fresh file write).
    pub spills: u64,
    /// Payload bytes written to shard files.
    pub spill_bytes: u64,
    /// Shards read back on demand.
    pub reloads: u64,
    /// Shard writes that failed (the shard stayed resident).
    pub write_failures: u64,
}

/// The result of one barrier spill pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpillOutcome {
    /// Shards evicted by this pass.
    pub spilled: usize,
    /// Shard writes that failed during this pass.
    pub write_failures: usize,
}

/// One shard: a slice of the entry space selected by state hash.
///
/// Invariants: slots are append-only and numbered `0..len` in insertion
/// order; the on-disk file (if any) holds exactly the slot prefix
/// `0..file_len`; when `resident` is false, `entries` holds only the
/// tail `file_len..len` and the prefix bytes live on disk alone. The
/// hash index and the digest cover all `len` slots and never leave
/// memory.
#[derive(Debug, Default)]
struct Shard {
    /// Resident entry bytes (all slots when `resident`, else the tail).
    entries: Vec<Box<[u8]>>,
    /// Hash → slots with that hash (candidates for a full byte compare).
    slots_by_hash: HashMap<u64, Vec<u32>>,
    /// Total slots ever inserted.
    len: u32,
    /// Slots the on-disk shard file holds (always a prefix).
    file_len: u32,
    /// Whether every slot's bytes are in memory.
    resident: bool,
    /// Payload bytes across all `len` slots.
    total_bytes: u64,
    /// Payload bytes of resident slots only.
    resident_bytes: u64,
    /// Running FNV digest of `(len, bytes)` per slot, in slot order —
    /// the manifest value checkpoints record and reloads revalidate.
    fnv_acc: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            resident: true,
            fnv_acc: FNV_OFFSET,
            ..Shard::default()
        }
    }

    /// The bytes of `slot`, or `None` when they live only on disk.
    fn slot_bytes(&self, slot: u32) -> Option<&[u8]> {
        let base = if self.resident { 0 } else { self.file_len };
        if slot < base {
            None
        } else {
            self.entries.get((slot - base) as usize).map(|e| &e[..])
        }
    }

    fn push_entry(&mut self, hash: u64, bytes: Vec<u8>) -> u32 {
        let slot = self.len;
        self.len += 1;
        self.total_bytes += bytes.len() as u64;
        self.resident_bytes += bytes.len() as u64;
        self.fnv_acc = fold_entry(self.fnv_acc, &bytes);
        self.slots_by_hash.entry(hash).or_default().push(slot);
        self.entries.push(bytes.into_boxed_slice());
        slot
    }
}

/// The sharded visited set. See the module docs for the design.
#[derive(Debug)]
pub struct VisitedStore {
    shards: Vec<Mutex<Shard>>,
    /// Global state index → `(shard, slot)`.
    locator: Vec<(u32, u32)>,
    spill: Option<SpillSettings>,
    /// Shard-file write attempts, counted in barrier order (the
    /// deterministic index for injected [`FaultSite::SpillWrite`]).
    write_attempts: u64,
    stats: SpillStats,
}

impl VisitedStore {
    /// An empty store with `shard_count` stripes (`0` = default) and an
    /// optional spill tier.
    pub fn new(shard_count: usize, spill: Option<SpillSettings>) -> Self {
        let n = if shard_count == 0 {
            DEFAULT_SHARDS
        } else {
            shard_count
        };
        VisitedStore {
            shards: (0..n).map(|_| Mutex::new(Shard::new())).collect(),
            locator: Vec::new(),
            spill,
            write_attempts: 0,
            stats: SpillStats::default(),
        }
    }

    /// Number of distinct states stored.
    pub fn len(&self) -> usize {
        self.locator.len()
    }

    /// Whether the store holds no states.
    pub fn is_empty(&self) -> bool {
        self.locator.is_empty()
    }

    /// Number of shard stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether a spill directory is configured.
    pub fn can_spill(&self) -> bool {
        self.spill.is_some()
    }

    /// The shard holding global state `idx`.
    pub fn shard_of(&self, idx: usize) -> u32 {
        self.locator[idx].0
    }

    /// The global `(shard, slot)` placement table, in insertion order.
    pub fn locator(&self) -> &[(u32, u32)] {
        &self.locator
    }

    /// Spill-tier counters so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    fn shard_mut(&mut self, shard: u32) -> &mut Shard {
        self.shards[shard as usize]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn place(&self, bytes: &[u8]) -> (u32, u64) {
        let hash = fnv1a(bytes);
        ((hash % self.shards.len() as u64) as u32, hash)
    }

    /// Coarse heap estimate of the parts that never leave memory: the
    /// locator and the per-entry hash-index slots.
    pub fn unspillable_estimate(&self) -> u64 {
        self.locator.len() as u64 * SLOT_INDEX_BYTES
    }

    /// Coarse heap estimate of everything currently resident:
    /// [`unspillable_estimate`](Self::unspillable_estimate) plus the
    /// resident entry payloads and their bookkeeping.
    pub fn resident_estimate(&mut self) -> u64 {
        let mut total = self.locator.len() as u64 * SLOT_INDEX_BYTES;
        for m in &mut self.shards {
            let s = m.get_mut().unwrap_or_else(PoisonError::into_inner);
            total += s.resident_bytes + s.entries.len() as u64 * ENTRY_OVERHEAD_BYTES;
        }
        total
    }

    /// Shards with at least one resident entry.
    pub fn resident_shard_count(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|m| m.get_mut().unwrap_or_else(PoisonError::into_inner))
            .filter(|s| !s.entries.is_empty())
            .count()
    }

    /// Shards whose bytes live (at least partly) only on disk.
    pub fn spilled_shard_count(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|m| m.get_mut().unwrap_or_else(PoisonError::into_inner))
            .filter(|s| !s.resident)
            .count()
    }

    /// Concurrent read-only duplicate probe, safe from worker threads.
    ///
    /// Returns `true` only on a definite byte-equal match against a
    /// *resident* entry — a hit is final (the store only grows), so the
    /// merge thread may count it as a dedup hit without a lookup. A
    /// `false` means "unknown": the state may still match a spilled
    /// entry, which only [`lookup_or_insert`](Self::lookup_or_insert)
    /// (merge thread) may find. Never reloads, never mutates.
    pub fn probe(&self, bytes: &[u8]) -> bool {
        let (shard, hash) = self.place(bytes);
        let guard = self.shards[shard as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let Some(slots) = guard.slots_by_hash.get(&hash) else {
            return false;
        };
        slots
            .iter()
            .any(|&slot| guard.slot_bytes(slot) == Some(bytes))
    }

    /// Dedup-or-store one encoded state (merge thread only).
    ///
    /// A new state is refused (nothing stored) once the store holds
    /// `cap` states; duplicates are always recognized, even at the cap.
    /// Reloads the target shard only when the state hash-matches a
    /// spilled slot and no resident slot already matches.
    pub fn lookup_or_insert(
        &mut self,
        bytes: Vec<u8>,
        cap: usize,
        obs: &Obs,
    ) -> Result<Lookup, SpillError> {
        let (shard_id, hash) = self.place(&bytes);
        let needs_reload = {
            let shard = self.shard_mut(shard_id);
            let mut spilled_candidate = false;
            if let Some(slots) = shard.slots_by_hash.get(&hash) {
                for &slot in slots {
                    match shard.slot_bytes(slot) {
                        Some(stored) if stored == &bytes[..] => return Ok(Lookup::Known),
                        Some(_) => {}
                        None => spilled_candidate = true,
                    }
                }
            }
            spilled_candidate
        };
        if needs_reload {
            self.reload_shard(shard_id, obs)?;
            let shard = self.shard_mut(shard_id);
            if let Some(slots) = shard.slots_by_hash.get(&hash) {
                let dup = slots
                    .iter()
                    .any(|&slot| shard.slot_bytes(slot) == Some(&bytes[..]));
                if dup {
                    return Ok(Lookup::Known);
                }
            }
        }
        if self.locator.len() >= cap {
            return Ok(Lookup::CapRefused);
        }
        let slot = self.shard_mut(shard_id).push_entry(hash, bytes);
        self.locator.push((shard_id, slot));
        Ok(Lookup::Inserted(self.locator.len() - 1))
    }

    /// The encoded bytes of global state `idx`, reloading its shard from
    /// disk if it was spilled.
    pub fn fetch(&mut self, idx: usize, obs: &Obs) -> Result<Vec<u8>, SpillError> {
        let (shard_id, slot) = self.locator[idx];
        if self.shard_mut(shard_id).slot_bytes(slot).is_none() {
            self.reload_shard(shard_id, obs)?;
        }
        Ok(self
            .shard_mut(shard_id)
            .slot_bytes(slot)
            .expect("a reloaded shard holds every slot")
            .to_vec())
    }

    fn shard_path(&self, shard: u32) -> PathBuf {
        self.spill
            .as_ref()
            .expect("spill path requested without spill settings")
            .dir
            .join(shard_file_name(shard))
    }

    /// Read one shard back into memory, revalidating everything: the
    /// file CRC (via `read_snapshot`), the shard id, the entry count,
    /// and the running digest against the in-memory accumulator.
    fn reload_shard(&mut self, shard_id: u32, obs: &Obs) -> Result<(), SpillError> {
        let fail = |error: PersistError| SpillError {
            shard: shard_id,
            error,
        };
        if self.shard_mut(shard_id).resident {
            return Ok(());
        }
        let plan = self.spill.as_ref().and_then(|s| s.fault_plan.as_ref());
        match plan.and_then(|p| p.fault_for(FaultSite::SpillRead, "visited", shard_id as u64)) {
            Some(FaultKind::Corruption) => {
                obs.counter("persist.fault_injected", 1);
                return Err(fail(PersistError::ChecksumMismatch));
            }
            Some(_) => {
                obs.counter("persist.fault_injected", 1);
                return Err(fail(PersistError::Io(format!(
                    "injected spill-read fault at shard {shard_id}"
                ))));
            }
            None => {}
        }
        let path = self.shard_path(shard_id);
        let entries = read_shard_file(&path, shard_id, obs).map_err(fail)?;
        let shard = self.shard_mut(shard_id);
        if entries.len() != shard.file_len as usize {
            return Err(fail(PersistError::Malformed(format!(
                "shard {shard_id} file holds {} entries, store expects {}",
                entries.len(),
                shard.file_len
            ))));
        }
        let mut digest = FNV_OFFSET;
        for e in &entries {
            digest = fold_entry(digest, e);
        }
        for tail in &shard.entries {
            digest = fold_entry(digest, tail);
        }
        if digest != shard.fnv_acc {
            return Err(fail(PersistError::Malformed(format!(
                "shard {shard_id} file content does not match the in-memory digest"
            ))));
        }
        let mut all: Vec<Box<[u8]>> = entries.into_iter().map(Vec::into_boxed_slice).collect();
        all.append(&mut shard.entries);
        shard.entries = all;
        shard.resident = true;
        shard.resident_bytes = shard.total_bytes;
        self.stats.reloads += 1;
        obs.counter("mc.spill_reloads", 1);
        Ok(())
    }

    /// Bring the shard file up to date with all `len` entries, without
    /// evicting. Counts a write attempt (the injection index) only when
    /// a write is actually needed. Returns `false` on failure (counted;
    /// the shard is unchanged apart from a possible reload).
    fn write_shard_file(&mut self, shard_id: u32, obs: &Obs) -> bool {
        let up_to_date = {
            let s = self.shard_mut(shard_id);
            s.file_len == s.len
        };
        if up_to_date {
            return true;
        }
        let fail = |store: &mut Self| {
            store.stats.write_failures += 1;
            obs.counter("mc.spill_write_failed", 1);
            false
        };
        // A stale file under a non-resident shard means the prefix bytes
        // exist only on disk: reload before the full rewrite.
        if !self.shard_mut(shard_id).resident && self.reload_shard(shard_id, obs).is_err() {
            return fail(self);
        }
        let n = self.write_attempts;
        self.write_attempts += 1;
        let plan = self.spill.as_ref().and_then(|s| s.fault_plan.as_ref());
        if plan.is_some_and(|p| p.fault_for(FaultSite::SpillWrite, "visited", n).is_some()) {
            obs.counter("persist.fault_injected", 1);
            return fail(self);
        }
        let path = self.shard_path(shard_id);
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return fail(self);
            }
        }
        let payload = {
            let s = self.shard_mut(shard_id);
            let mut w = Writer::new();
            w.u32(shard_id);
            w.usize(s.len as usize);
            for e in &s.entries {
                w.bytes(e);
            }
            w.into_bytes()
        };
        match write_snapshot(&path, SnapshotKind::VisitedShard, &payload, obs) {
            Ok(_) => {
                let s = self.shard_mut(shard_id);
                s.file_len = s.len;
                self.stats.spill_bytes += payload.len() as u64;
                obs.counter("mc.spill_bytes", payload.len() as u64);
                true
            }
            Err(_) => fail(self),
        }
    }

    /// Evict one shard: write its file if stale, then drop the resident
    /// entry bytes (the hash index stays). Returns `false` if the write
    /// failed — the shard stays resident (backpressure, not data loss).
    fn spill_one(&mut self, shard_id: u32, obs: &Obs) -> bool {
        if !self.write_shard_file(shard_id, obs) {
            return false;
        }
        let s = self.shard_mut(shard_id);
        s.entries = Vec::new();
        s.resident = false;
        s.resident_bytes = 0;
        self.stats.spills += 1;
        obs.counter("mc.spill_shards", 1);
        true
    }

    /// The barrier spill pass: evict shards **in shard-id order** until
    /// the resident estimate is at most `resident_goal` bytes and (when
    /// `max_resident_shards > 0`) at most that many shards keep resident
    /// entries. Purely a function of the store's contents — no clocks —
    /// so the pass is identical at every `jobs` value. Failed writes are
    /// counted and skipped; the pass moves on to the next shard.
    pub fn spill_until(
        &mut self,
        resident_goal: u64,
        max_resident_shards: usize,
        obs: &Obs,
    ) -> SpillOutcome {
        let mut outcome = SpillOutcome::default();
        if self.spill.is_none() {
            return outcome;
        }
        for shard_id in 0..self.shards.len() as u32 {
            let over_bytes = self.resident_estimate() > resident_goal;
            let over_shards =
                max_resident_shards > 0 && self.resident_shard_count() > max_resident_shards;
            if !over_bytes && !over_shards {
                break;
            }
            if self.shard_mut(shard_id).entries.is_empty() {
                continue;
            }
            if self.spill_one(shard_id, obs) {
                outcome.spilled += 1;
            } else {
                outcome.write_failures += 1;
            }
        }
        outcome
    }

    /// Bring every shard file up to date without evicting anything —
    /// the precondition for a checkpoint manifest that references them.
    /// Returns `false` if any write failed (the checkpoint must then be
    /// skipped; the search itself is unaffected).
    pub fn flush_all(&mut self, obs: &Obs) -> bool {
        if self.spill.is_none() {
            return false;
        }
        let mut ok = true;
        for shard_id in 0..self.shards.len() as u32 {
            if self.shard_mut(shard_id).len > 0 && !self.write_shard_file(shard_id, obs) {
                ok = false;
            }
        }
        ok
    }

    /// The per-shard manifest a checkpoint records: `(entry count,
    /// running digest)` for every shard, in shard-id order. A resume
    /// revalidates each shard file's prefix against these.
    pub fn manifest(&mut self) -> Vec<(u64, u64)> {
        (0..self.shards.len() as u32)
            .map(|id| {
                let s = self.shard_mut(id);
                (s.len as u64, s.fnv_acc)
            })
            .collect()
    }
}

/// Read and decode one shard file: CRC-validated by `read_snapshot`,
/// then shape-validated (shard id, trailing bytes). Used by the store's
/// demand reloads and by checkpoint resume.
pub fn read_shard_file(
    path: &Path,
    shard_id: u32,
    obs: &Obs,
) -> Result<Vec<Vec<u8>>, PersistError> {
    let (_meta, payload) = read_snapshot(path, SnapshotKind::VisitedShard, obs)?;
    let mut r = Reader::new(&payload);
    let found = r.u32()?;
    if found != shard_id {
        return Err(PersistError::Malformed(format!(
            "shard file {} holds shard {found}, expected {shard_id}",
            path.display()
        )));
    }
    let n = r.seq_len(8)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(r.bytes()?.to_vec());
    }
    if !r.is_empty() {
        return Err(PersistError::Malformed(format!(
            "{} trailing bytes after shard file",
            r.remaining()
        )));
    }
    Ok(entries)
}

/// Recompute the manifest digest of an entry prefix (resume validation).
pub fn digest_entries<B: AsRef<[u8]>>(entries: &[B]) -> u64 {
    entries
        .iter()
        .fold(FNV_OFFSET, |acc, e| fold_entry(acc, e.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use equitls_rewrite::budget::Fault;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("equitls_visited_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(i: u32) -> Vec<u8> {
        format!("state-{i:06}").into_bytes()
    }

    fn fill(store: &mut VisitedStore, n: u32) {
        let obs = Obs::noop();
        for i in 0..n {
            let got = store.lookup_or_insert(entry(i), usize::MAX, &obs).unwrap();
            assert_eq!(got, Lookup::Inserted(i as usize));
        }
    }

    #[test]
    fn insert_dedup_and_fetch_without_spill() {
        let obs = Obs::noop();
        let mut store = VisitedStore::new(4, None);
        fill(&mut store, 50);
        assert_eq!(store.len(), 50);
        // Duplicates are recognized, even at a cap.
        assert_eq!(
            store.lookup_or_insert(entry(7), 50, &obs).unwrap(),
            Lookup::Known
        );
        // New states are refused at the cap, without storage.
        assert_eq!(
            store.lookup_or_insert(entry(99), 50, &obs).unwrap(),
            Lookup::CapRefused
        );
        assert_eq!(store.len(), 50);
        // Fetch returns the exact bytes, in global insertion order.
        for i in 0..50 {
            assert_eq!(store.fetch(i as usize, &obs).unwrap(), entry(i));
        }
        assert!(store.probe(&entry(13)));
        assert!(!store.probe(&entry(999)));
    }

    #[test]
    fn spill_evicts_and_reloads_transparently() {
        let obs = Obs::noop();
        let dir = tmp_dir("roundtrip");
        let mut store = VisitedStore::new(
            4,
            Some(SpillSettings {
                dir: dir.clone(),
                fault_plan: None,
            }),
        );
        fill(&mut store, 60);
        let before = store.resident_estimate();
        let outcome = store.spill_until(0, 0, &obs);
        assert_eq!(outcome.spilled, 4, "every non-empty shard evicts");
        assert_eq!(outcome.write_failures, 0);
        assert!(store.resident_estimate() < before);
        assert_eq!(store.spilled_shard_count(), 4);
        // Fetch transparently reloads; bytes are exact.
        for i in [0usize, 17, 59] {
            assert_eq!(store.fetch(i, &obs).unwrap(), entry(i as u32));
        }
        // Old duplicates are still recognized after a reload...
        assert_eq!(
            store.lookup_or_insert(entry(3), usize::MAX, &obs).unwrap(),
            Lookup::Known
        );
        // ...and brand-new states never need one: the hash index is
        // resident, so a fresh hash inserts straight into the tail.
        assert!(matches!(
            store
                .lookup_or_insert(entry(100), usize::MAX, &obs)
                .unwrap(),
            Lookup::Inserted(_)
        ));
        assert!(store.stats().reloads >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_is_unknown_for_spilled_entries_but_lookup_finds_them() {
        let obs = Obs::noop();
        let dir = tmp_dir("probe");
        let mut store = VisitedStore::new(
            2,
            Some(SpillSettings {
                dir: dir.clone(),
                fault_plan: None,
            }),
        );
        fill(&mut store, 20);
        assert!(store.probe(&entry(5)), "resident entries probe true");
        store.spill_until(0, 0, &obs);
        assert!(!store.probe(&entry(5)), "spilled entries probe unknown");
        assert_eq!(
            store.lookup_or_insert(entry(5), usize::MAX, &obs).unwrap(),
            Lookup::Known,
            "the merge-thread lookup still finds them"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_fault_keeps_the_shard_resident() {
        let obs = Obs::noop();
        let dir = tmp_dir("wfault");
        let plan = FaultPlan::new().with_fault(
            Fault::new(FaultSite::SpillWrite, FaultKind::IoError, 0).in_scope("visited"),
        );
        let mut store = VisitedStore::new(
            2,
            Some(SpillSettings {
                dir: dir.clone(),
                fault_plan: Some(plan),
            }),
        );
        fill(&mut store, 20);
        let outcome = store.spill_until(0, 0, &obs);
        // The first write attempt fails; the pass moves on and spills
        // the other shard. Nothing is lost either way.
        assert_eq!(outcome.write_failures, 1);
        assert_eq!(outcome.spilled, 1);
        assert_eq!(store.stats().write_failures, 1);
        for i in 0..20 {
            assert_eq!(store.fetch(i as usize, &obs).unwrap(), entry(i));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_faults_are_typed_never_garbage() {
        let obs = Obs::noop();
        let dir = tmp_dir("rfault");
        let plan = FaultPlan::new()
            .with_fault(
                Fault::new(FaultSite::SpillRead, FaultKind::Corruption, 0).in_scope("visited"),
            )
            .with_fault(
                Fault::new(FaultSite::SpillRead, FaultKind::IoError, 1).in_scope("visited"),
            );
        let mut store = VisitedStore::new(
            2,
            Some(SpillSettings {
                dir: dir.clone(),
                fault_plan: Some(plan),
            }),
        );
        fill(&mut store, 20);
        store.spill_until(0, 0, &obs);
        // Shard 0 reads back "corrupted", shard 1 hits an "I/O error".
        let idx0 = (0..20).find(|&i| store.shard_of(i) == 0).unwrap();
        let idx1 = (0..20).find(|&i| store.shard_of(i) == 1).unwrap();
        let e0 = store.fetch(idx0, &obs).unwrap_err();
        assert_eq!(e0.shard, 0);
        assert_eq!(e0.error, PersistError::ChecksumMismatch);
        let e1 = store.fetch(idx1, &obs).unwrap_err();
        assert_eq!(e1.shard, 1);
        assert!(matches!(e1.error, PersistError::Io(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupted_shard_file_fails_the_checksum_typed() {
        let obs = Obs::noop();
        let dir = tmp_dir("corrupt");
        let mut store = VisitedStore::new(
            1,
            Some(SpillSettings {
                dir: dir.clone(),
                fault_plan: None,
            }),
        );
        fill(&mut store, 10);
        store.spill_until(0, 0, &obs);
        // Flip one payload byte on disk.
        let path = dir.join(shard_file_name(0));
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        let err = store.fetch(0, &obs).unwrap_err();
        assert_eq!(err.error, PersistError::ChecksumMismatch);
        // Truncation is its own typed error.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        let err = store.fetch(0, &obs).unwrap_err();
        assert!(matches!(err.error, PersistError::Truncated { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_and_manifest_validate_on_reread() {
        let obs = Obs::noop();
        let dir = tmp_dir("manifest");
        let mut store = VisitedStore::new(
            3,
            Some(SpillSettings {
                dir: dir.clone(),
                fault_plan: None,
            }),
        );
        fill(&mut store, 30);
        assert!(store.flush_all(&obs));
        let manifest = store.manifest();
        assert_eq!(manifest.len(), 3);
        assert_eq!(manifest.iter().map(|&(n, _)| n).sum::<u64>(), 30);
        for (id, &(len, fnv)) in manifest.iter().enumerate() {
            let entries =
                read_shard_file(&dir.join(shard_file_name(id as u32)), id as u32, &obs).unwrap();
            assert_eq!(entries.len() as u64, len);
            assert_eq!(digest_entries(&entries), fnv);
        }
        // Growing the store after a flush keeps the file a valid prefix:
        // the manifest taken *before* still verifies against the new file.
        for i in 30..40 {
            assert!(matches!(
                store.lookup_or_insert(entry(i), usize::MAX, &obs).unwrap(),
                Lookup::Inserted(_)
            ));
        }
        assert!(store.flush_all(&obs));
        for (id, &(len, fnv)) in manifest.iter().enumerate() {
            let entries =
                read_shard_file(&dir.join(shard_file_name(id as u32)), id as u32, &obs).unwrap();
            assert!(entries.len() as u64 >= len);
            assert_eq!(digest_entries(&entries[..len as usize]), fnv);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_cap_bounds_resident_shards() {
        let obs = Obs::noop();
        let dir = tmp_dir("cap");
        let mut store = VisitedStore::new(
            8,
            Some(SpillSettings {
                dir: dir.clone(),
                fault_plan: None,
            }),
        );
        fill(&mut store, 200);
        store.spill_until(u64::MAX, 2, &obs);
        assert!(store.resident_shard_count() <= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
