//! # equitls-mc
//!
//! An explicit-state bounded model checker for the concrete TLS handshake
//! model — the Murφ-style baseline of the paper's related work (§6,
//! Mitchell, Shmatikov & Stern's finite-state analysis of SSL 3.0),
//! rebuilt as a generic breadth-first explorer.
//!
//! Three roles in the reproduction:
//!
//! * **counterexamples** — [`scenario`] replays the paper's §5.3 traces
//!   refuting properties 2′ and 3′ step-by-step through the machine, and
//!   [`explorer`] finds violations by search;
//! * **cross-validation** — [`check`] runs the §5 monitors over bounded
//!   scopes: properties 1–5 hold, 2′/3′ fail, matching the equational
//!   verdicts of `equitls-core`;
//! * **baseline** — the states/depth tables of the benches compare the
//!   search-based approach against proof scores, mirroring the paper's
//!   discussion of the two methods.
//!
//! # Example
//!
//! ```
//! use equitls_mc::prelude::*;
//! use equitls_tls::concrete::Scope;
//!
//! let mut scope = Scope::counterexample();
//! scope.max_messages = 2;
//! let limits = Limits { max_states: 20_000, max_depth: 2 };
//! let result = check_scope(&scope, &limits);
//! assert!(result.violation("prop1-pms-secrecy").is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod explorer;
pub mod model;
pub mod scenario;
pub mod visited;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::check::{
        check_scope, check_scope_config, check_scope_config_obs, check_scope_config_obs_sym,
        check_scope_jobs, check_scope_resume, check_scope_resume_obs, check_scope_resume_obs_sym,
        expected_outcomes,
    };
    pub use crate::explorer::{
        explore, explore_jobs, explore_resume_with_config_jobs, explore_with_config,
        explore_with_config_jobs, explore_with_obs, explore_with_obs_jobs, resolve_jobs,
        Exploration, ExploreConfig, Limits, Violation,
    };
    pub use crate::model::{Model, TlsMachine};
    pub use crate::scenario::{counterexample_2prime, counterexample_3prime, render_trace, Replay};
    pub use crate::visited::{SpillStats, VisitedStore};
    pub use equitls_persist::PersistError;
    pub use equitls_rewrite::budget::{
        Budget, CancelToken, Fault, FaultKind, FaultPlan, FaultSite, StopReason, WorkerFault,
    };
}
