//! Rewriting-engine performance: experiments E12 and E19.
//!
//! **E12** (printed tables):
//!
//! * Boolean-ring tautology decision throughput, by formula size;
//! * the ablation DESIGN.md calls out: ring normal form vs. naive
//!   truth-table enumeration, by atom count;
//! * protocol-term normalization: reducing gleaning collections over
//!   growing concrete networks (the inner loop of every proof passage).
//!
//! **E19** (machine-readable `BENCH_rewriting.json`): rule indexing and
//! shared normal forms. Two workloads, each run as three legs in the
//! same process:
//!
//! * **campaign** — the full inv1 proof campaign (init + 27 transition
//!   obligations, case splits and all) through `verify_property_opts`,
//!   exactly what `tls-prove inv1` runs. Wall time per leg; the index's
//!   win here is bounded by how much of the campaign is matching cost
//!   (see EXPERIMENTS E17/E19 — the expensive fires are not).
//! * **fanout** — the cross-clone redundancy the shared cache exists
//!   for: every obligation of the inv1 campaign runs on its own clone
//!   of the pristine spec with its own engine, so each clone re-derives
//!   the same secrecy reduction — `PMS \in cpms(<n-message network>)`,
//!   the paper's workhorse `red` for the inv1 secrecy family — from
//!   scratch. One such reduction per obligation clone (init + 27).
//!   Only the `normalize` calls are timed (clones and term construction
//!   are workload setup, not normalization). The shared leg derives the
//!   normal form once and replays it on the other 27 clones.
//!
//! Legs:
//!
//! * **linear** — candidate rules by scanning per-operator rule lists
//!   (the engine before discrimination-tree indexing);
//! * **indexed** — discrimination-tree candidate selection (default);
//! * **indexed+shared** — plus the shared normal-form cache, created
//!   fresh per sample (each sample is a cold campaign, warm only across
//!   its own obligation clones).
//!
//! All legs produce structurally identical results; linear vs. indexed
//! are bit-identical in every rewrite statistic. Throughput rates are
//! omitted when a leg finishes below the 1 ms measurement floor (same
//! guard as `tls-prove --metrics`).
//!
//! Environment knobs (as `benches/parallel.rs`):
//!
//! * `BENCH_SAMPLES`  — timed repetitions per E19 leg (default 5; best-of-N);
//! * `BENCH_OUT`      — output path (default `<repo>/BENCH_rewriting.json`);
//! * `BENCH_SMOKE=1`  — E19 only, tiny workload, temp-dir output (CI smoke);
//! * `BENCH_FANOUT_N` — fan-out network size (default 48; smoke 4);
//! * `BENCH_GIT_REV`, `BENCH_HOSTNAME` — provenance stamps.

use equitls_bench::harness::bench;
use equitls_bench::{bool_world, random_formula, truth_table_tautology};
use equitls_obs::json::JsonValue;
use equitls_obs::sink::Obs;
use equitls_obs::summary::rate_per_sec;
use equitls_rewrite::prelude::*;
use equitls_tls::verify::{self, VerifyOptions};
use equitls_tls::TlsModel;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench_ring_throughput() {
    println!("== boolring-normalize");
    for &size in &[16usize, 64, 256] {
        let (mut store, alg, atoms) = bool_world(8);
        let formulas: Vec<_> = (0..16)
            .map(|seed| random_formula(&mut store, &alg, &atoms, size, seed))
            .collect();
        bench(&format!("boolring-normalize/{size}"), 20, || {
            let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
            for &f in &formulas {
                black_box(norm.proves(&mut store, f).expect("normalizes"));
            }
        });
    }
}

fn bench_ring_vs_truth_table() {
    println!("== tautology-ablation");
    for &atoms_n in &[8usize, 12, 16] {
        let (mut store, alg, atoms) = bool_world(atoms_n);
        let formulas: Vec<_> = (0..8)
            .map(|seed| random_formula(&mut store, &alg, &atoms, 48, seed))
            .collect();
        bench(
            &format!("tautology-ablation/boolean-ring/{atoms_n}"),
            10,
            || {
                let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
                for &f in &formulas {
                    black_box(norm.proves(&mut store, f).expect("normalizes"));
                }
            },
        );
        bench(
            &format!("tautology-ablation/truth-table/{atoms_n}"),
            10,
            || {
                for &f in &formulas {
                    black_box(
                        truth_table_tautology(&store, &alg, &atoms, f)
                            .expect("random formulas use only evaluated connectives"),
                    );
                }
            },
        );
    }
}

fn bench_gleaning_reduction() {
    // Normalize `PMS \in cpms(<n-message network>)` — the workhorse
    // reduction of the secrecy proofs.
    println!("== gleaning-normalize");
    for &n in &[4usize, 16, 64] {
        let mut model = equitls_tls::TlsModel::standard().expect("model builds");
        let spec = &mut model.spec;
        let prin = spec.sort_id("Prin").unwrap();
        let secret = spec.sort_id("Secret").unwrap();
        let rand = spec.sort_id("Rand").unwrap();
        let loc = spec.sort_id("ListOfChoices").unwrap();
        let a = spec.store_mut().fresh_constant("a", prin);
        let b = spec.store_mut().fresh_constant("b", prin);
        let s = spec.store_mut().fresh_constant("s", secret);
        let l = spec.store_mut().fresh_constant("l", loc);
        let intruder = spec.const_term("intruder").unwrap();
        let pm = spec.app("pms", &[a, b, s]).unwrap();
        // Build a network of n ch messages plus one kx to the intruder.
        let mut nw = spec.const_term("void").unwrap();
        for i in 0..n {
            let r = spec.store_mut().fresh_constant(&format!("r{i}"), rand);
            let m = spec.app("ch", &[a, a, b, r, l]).unwrap();
            nw = spec.app("_,_", &[m, nw]).unwrap();
        }
        let ki = spec.app("k", &[intruder]).unwrap();
        let ep = spec.app("epms", &[ki, pm]).unwrap();
        let kx = spec.app("kx", &[a, a, intruder, ep]).unwrap();
        nw = spec.app("_,_", &[kx, nw]).unwrap();
        let cp = spec.app("cpms", &[nw]).unwrap();
        let member = spec.app("_\\in_", &[pm, cp]).unwrap();
        let alg = spec.alg().clone();
        bench(&format!("gleaning-normalize/{n}"), 20, || {
            let mut norm = model.spec.normalizer();
            let out = norm
                .normalize(model.spec.store_mut(), member)
                .expect("reduces");
            assert_eq!(alg.as_constant(model.spec.store(), out), Some(true));
            black_box(out)
        });
    }
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Engine configuration for one leg.
#[derive(Clone, Copy, PartialEq)]
enum Leg {
    Linear,
    Indexed,
    IndexedShared,
}

const LEGS: [Leg; 3] = [Leg::Linear, Leg::Indexed, Leg::IndexedShared];

impl Leg {
    fn label(self) -> &'static str {
        match self {
            Leg::Linear => "linear",
            Leg::Indexed => "indexed",
            Leg::IndexedShared => "indexed+shared",
        }
    }
}

/// The full inv1 proof campaign, once per leg, best-of-`samples`.
fn bench_campaign(samples: usize, smoke: bool) -> Vec<JsonValue> {
    // Smoke proves a cheap lemma instead of the full inv1 score.
    let property = if smoke { "lem-src-honest" } else { "inv1" };
    println!("== campaign (full {property} proof)");
    let mut rows = Vec::new();
    let mut linear_wall = None;
    for leg in LEGS {
        let opts = VerifyOptions {
            linear_scan: leg == Leg::Linear,
            shared_nf_cache: leg == Leg::IndexedShared,
            ..VerifyOptions::default()
        };
        let mut best = Duration::MAX;
        let mut obligations = 0usize;
        let mut rewrites = 0u64;
        for _ in 0..=samples.max(1) {
            let mut model = TlsModel::standard().expect("model builds");
            let t0 = Instant::now();
            let report = verify::verify_property_opts(&mut model, property, &opts, &Obs::noop())
                .expect("engine");
            let elapsed = t0.elapsed();
            assert!(report.is_proved(), "{property} should prove");
            obligations = report.steps.len() + 1;
            rewrites = report.total_rewrite_stats().rewrites;
            best = best.min(elapsed);
        }
        println!(
            "campaign/{:<24} {best:>12.2?}  (best of {samples})",
            leg.label()
        );
        let base = *linear_wall.get_or_insert(best);
        let mut fields = vec![
            ("leg", JsonValue::String(leg.label().to_string())),
            ("property", JsonValue::String(property.to_string())),
            ("obligations", num(obligations as f64)),
            ("rewrites", num(rewrites as f64)),
            ("wall_ms", num(ms(best))),
            (
                "speedup_vs_linear",
                num(base.as_secs_f64() / best.as_secs_f64().max(1e-9)),
            ),
        ];
        if let Some(rate) = rate_per_sec(obligations as u64, best) {
            fields.push(("obligations_per_sec", num(rate)));
        }
        rows.push(obj(fields));
    }
    rows
}

/// Build, on a clone of the pristine spec, the inv1 secrecy reduction
/// subject: `pms(ca, a, s2) \in cpms(<n ch messages + 1 kx leaking a
/// different premaster secret>)`. The queried secret is *not* in the
/// network, so gleaning must exhaust every message before answering
/// `false` — the common case when the secrecy property holds, and the
/// expensive one. The compared components are constructor-headed
/// (`ca` vs `intruder`), so every gleaning condition *decides* — an
/// arbitrary constant in a compared slot would leave `a = intruder`
/// symbolic and jam the reduction. Every clone replays the same
/// creation sequence, so fresh-constant names — and with them the
/// shared cache's fingerprints — line up across clones, exactly as the
/// prover's obligation clones do.
fn fanout_subject(
    model: &TlsModel,
    n: usize,
) -> (equitls_spec::spec::Spec, equitls_kernel::term::TermId) {
    let mut spec = model.spec.clone();
    let prin = spec.sort_id("Prin").unwrap();
    let secret = spec.sort_id("Secret").unwrap();
    let rand = spec.sort_id("Rand").unwrap();
    let loc = spec.sort_id("ListOfChoices").unwrap();
    let a = spec.store_mut().fresh_constant("a", prin);
    let b = spec.store_mut().fresh_constant("b", prin);
    let s = spec.store_mut().fresh_constant("s", secret);
    let s2 = spec.store_mut().fresh_constant("s2", secret);
    let l = spec.store_mut().fresh_constant("l", loc);
    let intruder = spec.const_term("intruder").unwrap();
    let ca = spec.const_term("ca").unwrap();
    // Leaked client = intruder, queried client = ca: the `epms`
    // comparison in the kx gleaning condition decides `false` on the
    // first component, and the `cpms(void)` base case decides
    // `ca = intruder` to `false` — the whole membership reduces.
    let leaked = spec.app("pms", &[intruder, b, s]).unwrap();
    let queried = spec.app("pms", &[ca, a, s2]).unwrap();
    let mut nw = spec.const_term("void").unwrap();
    for i in 0..n {
        let r = spec.store_mut().fresh_constant(&format!("r{i}"), rand);
        let m = spec.app("ch", &[a, a, b, r, l]).unwrap();
        nw = spec.app("_,_", &[m, nw]).unwrap();
    }
    let ki = spec.app("k", &[intruder]).unwrap();
    let ep = spec.app("epms", &[ki, leaked]).unwrap();
    let kx = spec.app("kx", &[a, a, intruder, ep]).unwrap();
    nw = spec.app("_,_", &[kx, nw]).unwrap();
    let cp = spec.app("cpms", &[nw]).unwrap();
    let subject = spec.app("_\\in_", &[queried, cp]).unwrap();
    (spec, subject)
}

/// Accumulated engine statistics for one fan-out pass.
#[derive(Default)]
struct PassStats {
    rewrites: u64,
    counters: EngineCounters,
}

/// One fan-out pass: normalize the secrecy reduction on each of the
/// `clones` obligation clones with a fresh engine. Returns normalize-only
/// wall time (setup excluded) and the accumulated engine statistics.
fn fanout_pass(model: &TlsModel, clones: usize, n: usize, leg: Leg) -> (Duration, PassStats) {
    let shared = (leg == Leg::IndexedShared).then(|| Arc::new(SharedNfCache::new()));
    // Setup (untimed): the per-obligation spec clones and their subjects.
    let worlds: Vec<_> = (0..clones).map(|_| fanout_subject(model, n)).collect();
    let mut stats = PassStats::default();
    let mut wall = Duration::ZERO;
    for (mut spec, subject) in worlds {
        let alg = spec.alg().clone();
        let mut norm = spec.normalizer();
        norm.set_indexing(leg != Leg::Linear);
        if let Some(cache) = &shared {
            norm.set_shared_cache(Some(cache.clone()));
        }
        let t0 = Instant::now();
        let nf = norm.normalize(spec.store_mut(), subject).expect("reduces");
        wall += t0.elapsed();
        assert_eq!(
            alg.as_constant(spec.store(), nf),
            Some(false),
            "the queried premaster secret is not in the network"
        );
        stats.rewrites += norm.stats().rewrites;
        stats.counters = stats.counters.merged(norm.engine_counters());
    }
    (wall, stats)
}

/// The cross-clone fan-out workload, three legs, best-of-`samples`.
fn bench_fanout(samples: usize, smoke: bool) -> JsonValue {
    let model = TlsModel::standard().expect("model builds");
    let clones = model.ots.actions.len() + 1;
    let n = std::env::var("BENCH_FANOUT_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 4 } else { 48 });
    println!("== fanout ({clones} obligation clones x secrecy reduction over {n} messages)");
    // Share one index build across clones, as the prover does; the
    // linear leg never consults it.
    model.spec.rules().path_index(model.spec.store());
    let mut rows = Vec::new();
    let mut linear_wall = None;
    for leg in LEGS {
        let mut best = Duration::MAX;
        let mut stats = PassStats::default();
        for _ in 0..=samples.max(1) {
            let (wall, s) = fanout_pass(&model, clones, n, leg);
            if wall < best {
                best = wall;
                stats = s;
            }
        }
        println!(
            "fanout/{:<26} {best:>12.2?}  (best of {samples})",
            leg.label()
        );
        let base = *linear_wall.get_or_insert(best);
        let c = &stats.counters;
        let mut fields = vec![
            ("leg", JsonValue::String(leg.label().to_string())),
            ("normalizations", num(clones as f64)),
            ("normalize_ms", num(ms(best))),
            ("rewrites", num(stats.rewrites as f64)),
            ("index_lookups", num(c.index_lookups as f64)),
            ("index_candidates", num(c.index_candidates as f64)),
            ("index_pruned", num(c.index_pruned as f64)),
            ("shared_hits", num(c.shared_hits as f64)),
            ("shared_misses", num(c.shared_misses as f64)),
            ("shared_published", num(c.shared_published as f64)),
            (
                "speedup_vs_linear",
                num(base.as_secs_f64() / best.as_secs_f64().max(1e-9)),
            ),
        ];
        // Sub-millisecond walls are below the measurement floor: omit
        // the rate instead of fabricating one.
        if let Some(rate) = rate_per_sec(clones as u64, best) {
            fields.push(("normalizations_per_sec", num(rate)));
        }
        rows.push(obj(fields));
    }
    obj(vec![
        ("clones", num(clones as f64)),
        ("network_messages", num(n as f64)),
        ("legs", JsonValue::Array(rows)),
    ])
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let samples: usize = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 });
    let out_path = std::env::var("BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            if smoke {
                std::env::temp_dir().join("BENCH_rewriting_smoke.json")
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_rewriting.json")
            }
        });

    // Proof search and gleaning recurse deeply; run on a big stack.
    let worker = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(move || {
            if !smoke {
                bench_ring_throughput();
                bench_ring_vs_truth_table();
                bench_gleaning_reduction();
            }
            let campaign = bench_campaign(samples, smoke);
            let fanout = bench_fanout(samples, smoke);
            let stamp = |var: &str| {
                JsonValue::String(std::env::var(var).unwrap_or_else(|_| "unknown".to_string()))
            };
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            let doc = obj(vec![
                ("experiment", JsonValue::String("E19-rewriting".to_string())),
                ("git_rev", stamp("BENCH_GIT_REV")),
                ("hostname", stamp("BENCH_HOSTNAME")),
                ("cores", num(cores as f64)),
                ("samples", num(samples as f64)),
                ("smoke", JsonValue::Bool(smoke)),
                ("campaign", JsonValue::Array(campaign)),
                ("fanout", fanout),
            ]);
            std::fs::write(&out_path, format!("{doc}\n")).expect("write BENCH_rewriting.json");
            println!("wrote {}", out_path.display());
        })
        .expect("spawn bench thread");
    worker.join().expect("bench thread panicked");
}
