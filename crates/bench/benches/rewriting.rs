//! Experiment E12: rewriting-engine performance.
//!
//! * Boolean-ring tautology decision throughput, by formula size;
//! * the ablation DESIGN.md calls out: ring normal form vs. naive
//!   truth-table enumeration, by atom count;
//! * protocol-term normalization: reducing gleaning collections over
//!   growing concrete networks (the inner loop of every proof passage).

use equitls_bench::harness::bench;
use equitls_bench::{bool_world, random_formula, truth_table_tautology};
use equitls_rewrite::prelude::*;
use std::hint::black_box;

fn bench_ring_throughput() {
    println!("== boolring-normalize");
    for &size in &[16usize, 64, 256] {
        let (mut store, alg, atoms) = bool_world(8);
        let formulas: Vec<_> = (0..16)
            .map(|seed| random_formula(&mut store, &alg, &atoms, size, seed))
            .collect();
        bench(&format!("boolring-normalize/{size}"), 20, || {
            let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
            for &f in &formulas {
                black_box(norm.proves(&mut store, f).expect("normalizes"));
            }
        });
    }
}

fn bench_ring_vs_truth_table() {
    println!("== tautology-ablation");
    for &atoms_n in &[8usize, 12, 16] {
        let (mut store, alg, atoms) = bool_world(atoms_n);
        let formulas: Vec<_> = (0..8)
            .map(|seed| random_formula(&mut store, &alg, &atoms, 48, seed))
            .collect();
        bench(
            &format!("tautology-ablation/boolean-ring/{atoms_n}"),
            10,
            || {
                let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
                for &f in &formulas {
                    black_box(norm.proves(&mut store, f).expect("normalizes"));
                }
            },
        );
        bench(
            &format!("tautology-ablation/truth-table/{atoms_n}"),
            10,
            || {
                for &f in &formulas {
                    black_box(
                        truth_table_tautology(&store, &alg, &atoms, f)
                            .expect("random formulas use only evaluated connectives"),
                    );
                }
            },
        );
    }
}

fn bench_gleaning_reduction() {
    // Normalize `PMS \in cpms(<n-message network>)` — the workhorse
    // reduction of the secrecy proofs.
    println!("== gleaning-normalize");
    for &n in &[4usize, 16, 64] {
        let mut model = equitls_tls::TlsModel::standard().expect("model builds");
        let spec = &mut model.spec;
        let prin = spec.sort_id("Prin").unwrap();
        let secret = spec.sort_id("Secret").unwrap();
        let rand = spec.sort_id("Rand").unwrap();
        let loc = spec.sort_id("ListOfChoices").unwrap();
        let a = spec.store_mut().fresh_constant("a", prin);
        let b = spec.store_mut().fresh_constant("b", prin);
        let s = spec.store_mut().fresh_constant("s", secret);
        let l = spec.store_mut().fresh_constant("l", loc);
        let intruder = spec.const_term("intruder").unwrap();
        let pm = spec.app("pms", &[a, b, s]).unwrap();
        // Build a network of n ch messages plus one kx to the intruder.
        let mut nw = spec.const_term("void").unwrap();
        for i in 0..n {
            let r = spec.store_mut().fresh_constant(&format!("r{i}"), rand);
            let m = spec.app("ch", &[a, a, b, r, l]).unwrap();
            nw = spec.app("_,_", &[m, nw]).unwrap();
        }
        let ki = spec.app("k", &[intruder]).unwrap();
        let ep = spec.app("epms", &[ki, pm]).unwrap();
        let kx = spec.app("kx", &[a, a, intruder, ep]).unwrap();
        nw = spec.app("_,_", &[kx, nw]).unwrap();
        let cp = spec.app("cpms", &[nw]).unwrap();
        let member = spec.app("_\\in_", &[pm, cp]).unwrap();
        let alg = spec.alg().clone();
        bench(&format!("gleaning-normalize/{n}"), 20, || {
            let mut norm = model.spec.normalizer();
            let out = norm
                .normalize(model.spec.store_mut(), member)
                .expect("reduces");
            assert_eq!(alg.as_constant(model.spec.store(), out), Some(true));
            black_box(out)
        });
    }
}

fn main() {
    bench_ring_throughput();
    bench_ring_vs_truth_table();
    bench_gleaning_reduction();
}
