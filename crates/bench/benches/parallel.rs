//! Experiment E14: parallel-execution speedups, written as a machine-
//! readable `BENCH_parallel.json`.
//!
//! Two workloads, each at jobs ∈ {1, 2, all cores}:
//!
//! * **explorer** — the bounded exhaustive TLS check (E10 scope) on the
//!   level-synchronous parallel BFS;
//! * **prover** — the inv1 proof score (init + 27 transition obligations)
//!   fanned out over worker threads on cloned specs.
//!
//! Both are deterministic: the JSON records per-jobs wall time,
//! throughput, and speedup vs. jobs=1, plus the verdict-relevant outputs
//! (state count / proved flag) so a reader can see they do not move.
//!
//! Environment knobs:
//!
//! * `BENCH_SAMPLES`  — timed repetitions per point (default 3; best-of-N);
//! * `BENCH_OUT`      — output path (default `<repo>/BENCH_parallel.json`);
//! * `BENCH_SMOKE=1`  — tiny limits and a temp-dir output, for CI smoke;
//! * `BENCH_GIT_REV`, `BENCH_HOSTNAME` — provenance stamps recorded in the
//!   JSON (`scripts/bench.sh` sets them; `"unknown"` when absent).

use equitls_bench::harness::bench;
use equitls_mc::prelude::*;
use equitls_obs::json::JsonValue;
use equitls_tls::concrete::Scope;
use equitls_tls::{verify, TlsModel};
use std::time::Duration;

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

/// The jobs ladder: 1, 2, and all cores (deduplicated, ascending).
fn jobs_ladder() -> Vec<usize> {
    let mut ladder = vec![1, 2, resolve_jobs(0)];
    ladder.sort_unstable();
    ladder.dedup();
    ladder
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn speedup(baseline: Duration, d: Duration) -> f64 {
    baseline.as_secs_f64() / d.as_secs_f64().max(1e-9)
}

fn bench_explorer(samples: usize, smoke: bool) -> Vec<JsonValue> {
    println!("== explorer (bounded exhaustive TLS check)");
    let mut scope = Scope::counterexample();
    scope.max_messages = if smoke { 1 } else { 2 };
    let limits = Limits {
        max_states: 200_000,
        max_depth: scope.max_messages + 1,
    };
    let mut rows = Vec::new();
    let mut baseline = None;
    for jobs in jobs_ladder() {
        let mut states = 0usize;
        let best = bench(&format!("explorer/jobs={jobs}"), samples, || {
            let result = check_scope_jobs(&scope, &limits, jobs);
            assert!(result.complete, "scope should be exhausted");
            states = result.states;
            states
        });
        let base = *baseline.get_or_insert(best);
        rows.push(obj(vec![
            ("jobs", num(jobs as f64)),
            ("states", num(states as f64)),
            ("wall_ms", num(ms(best))),
            (
                "states_per_sec",
                num(states as f64 / best.as_secs_f64().max(1e-9)),
            ),
            ("speedup_vs_jobs1", num(speedup(base, best))),
        ]));
    }
    rows
}

fn bench_prover(samples: usize, smoke: bool) -> Vec<JsonValue> {
    println!("== prover (inv1 proof score, init + 27 obligations)");
    // Smoke mode proves a cheap lemma instead of the full inv1 score.
    let property = if smoke { "lem-src-honest" } else { "inv1" };
    let mut rows = Vec::new();
    let mut baseline = None;
    for jobs in jobs_ladder() {
        let mut obligations = 0usize;
        let best = bench(&format!("prover/{property}/jobs={jobs}"), samples, || {
            let mut model = TlsModel::standard().expect("model builds");
            let report = verify::verify_property_jobs(&mut model, property, jobs).expect("engine");
            assert!(report.is_proved(), "{property} should prove");
            obligations = report.steps.len() + 1;
            obligations
        });
        let base = *baseline.get_or_insert(best);
        rows.push(obj(vec![
            ("jobs", num(jobs as f64)),
            ("property", JsonValue::String(property.to_string())),
            ("obligations", num(obligations as f64)),
            ("wall_ms", num(ms(best))),
            (
                "obligations_per_sec",
                num(obligations as f64 / best.as_secs_f64().max(1e-9)),
            ),
            ("speedup_vs_jobs1", num(speedup(base, best))),
        ]));
    }
    rows
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let samples: usize = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });
    let out_path = std::env::var("BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            if smoke {
                std::env::temp_dir().join("BENCH_parallel_smoke.json")
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json")
            }
        });

    // The prover recurses deeply; run everything on a big stack.
    let worker = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(move || {
            let explorer = bench_explorer(samples, smoke);
            let prover = bench_prover(samples, smoke);
            let stamp = |var: &str| {
                JsonValue::String(std::env::var(var).unwrap_or_else(|_| "unknown".to_string()))
            };
            let doc = obj(vec![
                ("experiment", JsonValue::String("E14-parallel".to_string())),
                ("git_rev", stamp("BENCH_GIT_REV")),
                ("hostname", stamp("BENCH_HOSTNAME")),
                ("cores", num(resolve_jobs(0) as f64)),
                ("samples", num(samples as f64)),
                ("smoke", JsonValue::Bool(smoke)),
                ("explorer", JsonValue::Array(explorer)),
                ("prover", JsonValue::Array(prover)),
            ]);
            std::fs::write(&out_path, format!("{doc}\n")).expect("write BENCH_parallel.json");
            println!("wrote {}", out_path.display());
        })
        .expect("spawn bench thread");
    worker.join().expect("bench thread panicked");
}
