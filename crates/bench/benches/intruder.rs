//! Dolev–Yao knowledge-closure throughput: gleaning over growing
//! networks, and successor enumeration cost (the model checker's inner
//! loops).

use equitls_bench::harness::bench;
use equitls_tls::concrete::{
    successors, Body, Choice, ChoiceList, FinHash, FinKind, Knowledge, Msg, Pms, Prin, Rand, Scope,
    Secret, Sid, State, SymKey,
};
use std::hint::black_box;

fn network_with(n: usize) -> State {
    let mut state = State::new();
    let list = ChoiceList::of(&[Choice(0)]);
    for i in 0..n {
        let a = Prin(2 + (i % 2) as u8);
        let b = Prin(4);
        let pms = Pms {
            client: a,
            server: b,
            secret: Secret((i % 4) as u8),
        };
        state = state.send(Msg::honest(
            a,
            b,
            Body::Ch {
                rand: Rand((i % 8) as u8),
                list,
            },
        ));
        state = state.send(Msg::honest(a, b, Body::Kx { key_of: b, pms }));
        state = state.send(Msg::honest(
            b,
            a,
            Body::Sf {
                key: SymKey {
                    prin: b,
                    pms,
                    r1: Rand(0),
                    r2: Rand(1),
                },
                hash: FinHash {
                    kind: FinKind::Server,
                    a,
                    b,
                    sid: Sid(0),
                    list: Some(list),
                    choice: Choice(0),
                    r1: Rand(0),
                    r2: Rand(1),
                    pms,
                },
            },
        ));
    }
    state
}

fn bench_gleaning() {
    println!("== knowledge-closure");
    for &n in &[4usize, 16, 64] {
        let state = network_with(n);
        let peers = vec![Prin(2), Prin(3), Prin(4)];
        let secrets = vec![Secret(1)];
        bench(&format!("knowledge-closure/{}", n * 3), 50, || {
            black_box(Knowledge::glean(&state, &secrets, &peers))
        });
    }
}

fn bench_successor_enumeration() {
    println!("== successor-enumeration");
    let scope = Scope::mitchell();
    for &n in &[0usize, 2, 4] {
        let state = network_with(n);
        // keep under the scope's message bound
        let mut big_scope = scope.clone();
        big_scope.max_messages = 64;
        bench(&format!("successor-enumeration/{}", n * 3), 20, || {
            black_box(successors(&state, &big_scope).len())
        });
    }
}

fn main() {
    bench_gleaning();
    bench_successor_enumeration();
}
