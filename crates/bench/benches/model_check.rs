//! Experiment E10: bounded exhaustive search throughput, and the
//! intruder-power ablation (full Dolev–Yao vs. clear-text-only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use equitls_mc::prelude::*;
use equitls_tls::concrete::Scope;
use std::hint::black_box;

fn bench_bounded_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs-bounded");
    group.sample_size(10);
    for &max_messages in &[1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_messages),
            &max_messages,
            |b, &mm| {
                b.iter(|| {
                    let mut scope = Scope::counterexample();
                    scope.max_messages = mm;
                    let limits = Limits {
                        max_states: 200_000,
                        max_depth: mm + 1,
                    };
                    let result = check_scope(&scope, &limits);
                    assert!(result.complete);
                    black_box(result.states)
                });
            },
        );
    }
    group.finish();
}

fn bench_intruder_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("intruder-ablation");
    group.sample_size(10);
    for weak in [false, true] {
        let label = if weak { "clear-text-only" } else { "full-dolev-yao" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &weak, |b, &weak| {
            b.iter(|| {
                let mut scope = Scope::counterexample();
                scope.max_messages = 2;
                let machine = if weak {
                    TlsMachine::new(scope.clone()).with_weak_intruder()
                } else {
                    TlsMachine::new(scope.clone())
                };
                let limits = Limits {
                    max_states: 200_000,
                    max_depth: 3,
                };
                let result = explore(&machine, &[], &limits);
                assert!(result.complete);
                black_box(result.states)
            });
        });
    }
    group.finish();
}

fn bench_counterexample_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("counterexample-replay");
    group.sample_size(20);
    group.bench_function("2prime", |b| {
        b.iter(|| black_box(counterexample_2prime().expect("replays")));
    });
    group.bench_function("3prime", |b| {
        b.iter(|| black_box(counterexample_3prime().expect("replays")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bounded_search,
    bench_intruder_ablation,
    bench_counterexample_replay
);
criterion_main!(benches);
