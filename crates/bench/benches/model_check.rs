//! Experiment E10: bounded exhaustive search throughput, and the
//! intruder-power ablation (full Dolev–Yao vs. clear-text-only).

use equitls_bench::harness::bench;
use equitls_mc::prelude::*;
use equitls_tls::concrete::Scope;
use std::hint::black_box;

fn bench_bounded_search() {
    println!("== bfs-bounded");
    for &max_messages in &[1usize, 2] {
        bench(&format!("bfs-bounded/{max_messages}"), 10, || {
            let mut scope = Scope::counterexample();
            scope.max_messages = max_messages;
            let limits = Limits {
                max_states: 200_000,
                max_depth: max_messages + 1,
            };
            let result = check_scope(&scope, &limits);
            assert!(result.complete);
            black_box(result.states)
        });
    }
}

fn bench_intruder_ablation() {
    println!("== intruder-ablation");
    for weak in [false, true] {
        let label = if weak {
            "clear-text-only"
        } else {
            "full-dolev-yao"
        };
        bench(&format!("intruder-ablation/{label}"), 10, || {
            let mut scope = Scope::counterexample();
            scope.max_messages = 2;
            let machine = if weak {
                TlsMachine::new(scope.clone()).with_weak_intruder()
            } else {
                TlsMachine::new(scope.clone())
            };
            let limits = Limits {
                max_states: 200_000,
                max_depth: 3,
            };
            let result = explore(&machine, &[], &limits);
            assert!(result.complete);
            black_box(result.states)
        });
    }
}

fn bench_counterexample_replay() {
    println!("== counterexample-replay");
    bench("counterexample-replay/2prime", 20, || {
        black_box(counterexample_2prime().expect("replays"))
    });
    bench("counterexample-replay/3prime", 20, || {
        black_box(counterexample_3prime().expect("replays"))
    });
}

fn main() {
    bench_bounded_search();
    bench_intruder_ablation();
    bench_counterexample_replay();
}
