//! Experiments E1–E5, E8, E9: proof-score verification time.
//!
//! One series per representative property on the standard protocol, the
//! same series on the §5.3 variant (E8), and the witness-map ablation
//! DESIGN.md calls out (constructor-completeness splitting on vs. off;
//! without witnesses several lemmas stop proving, so the ablation
//! measures time-to-verdict, not time-to-proof).

use equitls_bench::harness::bench;
use equitls_core::prelude::*;
use equitls_tls::{verify, TlsModel};
use std::hint::black_box;

const REPRESENTATIVES: [&str; 6] = [
    "inv1",
    "inv2",
    "inv4",
    "lem-cepms-cpms",
    "lem-esfin-origin",
    "lem-sf-session",
];

fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

fn bench_standard() {
    println!("== prove-standard");
    for name in REPRESENTATIVES {
        bench(&format!("prove-standard/{name}"), 3, move || {
            let name = name.to_string();
            with_big_stack(move || {
                let mut model = TlsModel::standard().expect("model builds");
                let report = verify::verify_property(&mut model, &name).expect("prover runs");
                assert!(report.is_proved(), "{name} must prove");
                black_box(report.total_passages())
            })
        });
    }
}

fn bench_variant() {
    println!("== prove-variant");
    for name in ["inv1", "inv2", "inv3"] {
        bench(&format!("prove-variant/{name}"), 3, move || {
            let name = name.to_string();
            with_big_stack(move || {
                let mut model = TlsModel::variant().expect("model builds");
                let report = verify::verify_property(&mut model, &name).expect("prover runs");
                assert!(report.is_proved(), "{name} must prove on the variant");
                black_box(report.total_passages())
            })
        });
    }
}

fn bench_witness_ablation() {
    println!("== witness-ablation");
    for witnesses in [true, false] {
        let label = if witnesses {
            "with-witnesses"
        } else {
            "without"
        };
        bench(&format!("witness-ablation/{label}"), 3, move || {
            with_big_stack(move || {
                let mut model = TlsModel::standard().expect("model builds");
                let config = if witnesses {
                    verify::prover_config(&model)
                } else {
                    ProverConfig::default()
                };
                let mut prover =
                    Prover::new(&mut model.spec, &model.ots, &model.invariants).with_config(config);
                let report = prover
                    .prove_inductive("lem-sf-session", &Hints::new())
                    .expect("prover runs");
                // With witnesses the lemma proves; without them the
                // message structure stays opaque and cases stay open.
                assert_eq!(report.is_proved(), witnesses);
                black_box(report.total_passages())
            })
        });
    }
}

fn main() {
    bench_standard();
    bench_variant();
    bench_witness_ablation();
}
