//! Experiments E1–E5, E8, E9: proof-score verification time.
//!
//! One Criterion series per representative property on the standard
//! protocol, the same series on the §5.3 variant (E8), and the
//! witness-map ablation DESIGN.md calls out (constructor-completeness
//! splitting on vs. off; without witnesses several lemmas stop proving,
//! so the ablation measures time-to-verdict, not time-to-proof).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use equitls_core::prelude::*;
use equitls_tls::{verify, TlsModel};
use std::hint::black_box;

const REPRESENTATIVES: [&str; 6] = [
    "inv1",
    "inv2",
    "inv4",
    "lem-cepms-cpms",
    "lem-esfin-origin",
    "lem-sf-session",
];

fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

fn bench_standard(c: &mut Criterion) {
    let mut group = c.benchmark_group("prove-standard");
    group.sample_size(10);
    for name in REPRESENTATIVES {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| {
                let name = name.to_string();
                with_big_stack(move || {
                    let mut model = TlsModel::standard().expect("model builds");
                    let report =
                        verify::verify_property(&mut model, &name).expect("prover runs");
                    assert!(report.is_proved(), "{name} must prove");
                    black_box(report.total_passages())
                })
            });
        });
    }
    group.finish();
}

fn bench_variant(c: &mut Criterion) {
    let mut group = c.benchmark_group("prove-variant");
    group.sample_size(10);
    for name in ["inv1", "inv2", "inv3"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| {
                let name = name.to_string();
                with_big_stack(move || {
                    let mut model = TlsModel::variant().expect("model builds");
                    let report =
                        verify::verify_property(&mut model, &name).expect("prover runs");
                    assert!(report.is_proved(), "{name} must prove on the variant");
                    black_box(report.total_passages())
                })
            });
        });
    }
    group.finish();
}

fn bench_witness_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness-ablation");
    group.sample_size(10);
    for witnesses in [true, false] {
        let label = if witnesses { "with-witnesses" } else { "without" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &witnesses, |b, &w| {
            b.iter(|| {
                with_big_stack(move || {
                    let mut model = TlsModel::standard().expect("model builds");
                    let config = if w {
                        verify::prover_config(&model)
                    } else {
                        ProverConfig::default()
                    };
                    let mut prover =
                        Prover::new(&mut model.spec, &model.ots, &model.invariants)
                            .with_config(config);
                    let report = prover
                        .prove_inductive("lem-sf-session", &Hints::new())
                        .expect("prover runs");
                    // With witnesses the lemma proves; without them the
                    // message structure stays opaque and cases stay open.
                    assert_eq!(report.is_proved(), w);
                    black_box(report.total_passages())
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_standard, bench_variant, bench_witness_ablation);
criterion_main!(benches);
