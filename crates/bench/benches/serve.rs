//! Experiment E20 (machine-readable `BENCH_serve.json`): the daemon's
//! warm-path win.
//!
//! A one-shot `tls-prove` run pays the cold-start stack on every
//! invocation: spec compilation, LPO precedence, discrimination-tree
//! index build, and a normal-form memo warmed from nothing. The daemon
//! pays it once. This bench drives an in-process [`ServeEngine`] (the
//! same code path `equitls-serve` serves from, minus the socket) and
//! measures one prove request end to end — admission, journaling,
//! execution, stable-response rendering:
//!
//! * **cold** — the first request on a fresh engine (includes the model
//!   build and index construction);
//! * **warm** — the same request repeated on the now-resident engine
//!   (clones share the pre-built index; the resident NF cache replays
//!   published reductions), best of `BENCH_SAMPLES`;
//! * **warm-noshared** — warm model but per-request
//!   `shared_cache: false`, isolating the resident NF cache's
//!   contribution from spec/index reuse.
//!
//! Compare against the `campaign` legs of `BENCH_rewriting.json` (E19):
//! that file times the same inv1 campaign cold-per-sample; the gap
//! between its indexed leg and this file's warm leg is the residency
//! win. Stable payloads are byte-identical across all legs (pinned in
//! `tests/serve_determinism.rs`); only latency moves.
//!
//! Environment knobs (as the other benches):
//!
//! * `BENCH_SAMPLES` — warm repetitions (default 5; best-of-N);
//! * `BENCH_OUT`     — output path (default `<repo>/BENCH_serve.json`);
//! * `BENCH_SMOKE=1` — tiny run, temp-dir output (CI smoke);
//! * `BENCH_GIT_REV`, `BENCH_HOSTNAME` — provenance stamps. `cores` is
//!   always measured from the machine, never claimed.

use equitls_obs::json::JsonValue;
use equitls_obs::sink::Obs;
use equitls_serve::engine::{Admission, ServeConfig, ServeEngine};
use equitls_serve::proto::{JobKind, JobRequest};
use std::time::{Duration, Instant};

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn prove_request(id: &str, property: &str, shared_cache: Option<bool>) -> JobRequest {
    let mut req = JobRequest::new(id, JobKind::Prove);
    req.property = property.to_string();
    req.shared_cache = shared_cache;
    req
}

/// Submit one request and time it to completion (stable response ready).
fn timed_request(engine: &ServeEngine, request: JobRequest) -> (Duration, String) {
    let started = Instant::now();
    let seq = match engine.submit(request) {
        Admission::Accepted { seq } => seq,
        other => panic!("bench job must be admitted, got {other:?}"),
    };
    engine.wait_response(seq);
    let wall = started.elapsed();
    (wall, engine.stable_response(seq).expect("job completed"))
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let samples: usize = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2 } else { 5 });
    let out_path = std::env::var("BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            if smoke {
                std::env::temp_dir().join("BENCH_serve_smoke.json")
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
            }
        });
    // The full inv1 campaign in the real run; a cheap lemma in smoke.
    let property = if smoke { "lem-src-honest" } else { "inv1" };

    let engine = ServeEngine::start(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        Obs::noop(),
    )
    .expect("engine starts");

    println!("== serve latency ({property}, best of {samples})");
    let (cold, cold_line) = timed_request(&engine, prove_request("cold", property, None));
    println!("serve/cold                 {cold:>12.2?}");

    let mut warm = Duration::MAX;
    for i in 0..samples.max(1) {
        let (wall, _) = timed_request(&engine, prove_request(&format!("warm{i}"), property, None));
        warm = warm.min(wall);
    }
    println!("serve/warm                 {warm:>12.2?}");

    let mut warm_noshared = Duration::MAX;
    for i in 0..samples.max(1) {
        let (wall, _) = timed_request(
            &engine,
            prove_request(&format!("noshare{i}"), property, Some(false)),
        );
        warm_noshared = warm_noshared.min(wall);
    }
    println!("serve/warm-noshared        {warm_noshared:>12.2?}");

    // The warm and cold stable results must agree exactly (the envelope
    // differs only in request id and admission seq) — residency is a
    // latency lever, not a result lever.
    let (_, warm_line) = timed_request(&engine, prove_request("cold", property, None));
    let result_of = |line: &str| {
        equitls_obs::json::parse(line)
            .expect("stable line parses")
            .get("result")
            .expect("ok response carries a result")
            .to_string()
    };
    assert_eq!(
        result_of(&cold_line),
        result_of(&warm_line),
        "warm and cold runs produce identical stable results"
    );

    let warm_stats = engine.warm().stats();
    let nf = engine.warm().nf_cache(false).stats();
    engine.shutdown();

    let stamp =
        |var: &str| JsonValue::String(std::env::var(var).unwrap_or_else(|_| "unknown".to_string()));
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let doc = obj(vec![
        ("experiment", JsonValue::String("E20-serve".to_string())),
        ("git_rev", stamp("BENCH_GIT_REV")),
        ("hostname", stamp("BENCH_HOSTNAME")),
        ("cores", num(cores as f64)),
        ("samples", num(samples as f64)),
        ("smoke", JsonValue::Bool(smoke)),
        ("property", JsonValue::String(property.to_string())),
        ("cold_ms", num(ms(cold))),
        ("warm_ms", num(ms(warm))),
        ("warm_noshared_ms", num(ms(warm_noshared))),
        (
            "speedup_cold_over_warm",
            num(cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)),
        ),
        ("model_builds", num(warm_stats.model_builds as f64)),
        ("model_reuses", num(warm_stats.model_reuses as f64)),
        ("shared_nf_hits", num(nf.hits as f64)),
        ("shared_nf_published", num(nf.published as f64)),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write BENCH_serve.json");
    println!("wrote {}", out_path.display());
}
