//! Shared helpers for the EquiTLS benchmark harness.
//!
//! The benches regenerate the experiments of EXPERIMENTS.md:
//!
//! * `rewriting` — E12: Boolean-ring normalization throughput and the
//!   ablation against a naive truth-table decision procedure;
//! * `proof_scores` — E1–E5/E8/E9: per-property proof-score verification
//!   time on the standard and variant protocols, plus the witness-map
//!   ablation;
//! * `model_check` — E10: bounded exhaustive search, full vs. weakened
//!   intruder;
//! * `intruder` — Dolev–Yao knowledge-closure throughput on growing
//!   networks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use equitls_kernel::prelude::*;
use equitls_obs::rng::SplitMix64;
use equitls_rewrite::prelude::*;

/// A random Boolean formula over `atoms`, with roughly `size` connectives.
///
/// Deterministic per `seed`, so repeated runs compare like with like.
pub fn random_formula(
    store: &mut TermStore,
    alg: &BoolAlg,
    atoms: &[TermId],
    size: usize,
    seed: u64,
) -> TermId {
    let mut rng = SplitMix64::new(seed);
    let mut build = atoms.to_vec();
    for _ in 0..size {
        let a = *rng.choose(&build);
        let b = *rng.choose(&build);
        let t = match rng.next_below(5) {
            0 => alg.and(store, a, b),
            1 => alg.or(store, a, b),
            2 => alg.xor(store, a, b),
            3 => alg.implies(store, a, b),
            _ => alg.not(store, a),
        }
        .expect("well-sorted");
        build.push(t);
    }
    *build.last().expect("non-empty")
}

/// Why a term cannot be evaluated as a Boolean formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaError {
    /// The formula contains an operator the evaluator does not interpret
    /// (and that is not one of the supplied atoms).
    UnsupportedOperator {
        /// Name of the offending operator.
        op: String,
    },
    /// Enumerating the truth table would take 2^count rows.
    TooManyAtoms {
        /// How many atoms were supplied.
        count: usize,
    },
}

impl std::fmt::Display for FormulaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormulaError::UnsupportedOperator { op } => {
                write!(f, "unsupported operator `{op}` in formula")
            }
            FormulaError::TooManyAtoms { count } => {
                write!(f, "truth table over {count} atoms would explode")
            }
        }
    }
}

impl std::error::Error for FormulaError {}

/// Decide tautology by brute-force truth table — the naive baseline for
/// the Boolean-ring ablation.
///
/// # Errors
///
/// [`FormulaError::TooManyAtoms`] over more than 20 atoms, and
/// [`FormulaError::UnsupportedOperator`] when the formula mentions an
/// operator outside the Boolean connectives and `atoms`.
pub fn truth_table_tautology(
    store: &TermStore,
    alg: &BoolAlg,
    atoms: &[TermId],
    formula: TermId,
) -> Result<bool, FormulaError> {
    if atoms.len() > 20 {
        return Err(FormulaError::TooManyAtoms { count: atoms.len() });
    }
    for bits in 0..(1u32 << atoms.len()) {
        let assignment = |t: TermId| -> Option<bool> {
            atoms
                .iter()
                .position(|&a| a == t)
                .map(|i| bits & (1 << i) != 0)
        };
        if !eval_formula(store, alg, formula, &assignment)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn eval_formula(
    store: &TermStore,
    alg: &BoolAlg,
    t: TermId,
    assignment: &dyn Fn(TermId) -> Option<bool>,
) -> Result<bool, FormulaError> {
    if let Some(v) = assignment(t) {
        return Ok(v);
    }
    let Some(op) = store.op_of(t) else {
        return Err(FormulaError::UnsupportedOperator {
            op: format!("free variable {}", store.display(t)),
        });
    };
    let args = store.args(t);
    if op == alg.true_op() {
        Ok(true)
    } else if op == alg.false_op() {
        Ok(false)
    } else if op == alg.not_op() {
        Ok(!eval_formula(store, alg, args[0], assignment)?)
    } else if op == alg.and_op() {
        Ok(eval_formula(store, alg, args[0], assignment)?
            && eval_formula(store, alg, args[1], assignment)?)
    } else if op == alg.or_op() {
        Ok(eval_formula(store, alg, args[0], assignment)?
            || eval_formula(store, alg, args[1], assignment)?)
    } else if op == alg.xor_op() {
        Ok(eval_formula(store, alg, args[0], assignment)?
            ^ eval_formula(store, alg, args[1], assignment)?)
    } else if op == alg.implies_op() {
        Ok(!eval_formula(store, alg, args[0], assignment)?
            || eval_formula(store, alg, args[1], assignment)?)
    } else if op == alg.iff_op() {
        Ok(eval_formula(store, alg, args[0], assignment)?
            == eval_formula(store, alg, args[1], assignment)?)
    } else {
        Err(FormulaError::UnsupportedOperator {
            op: store.signature().op(op).name.clone(),
        })
    }
}

/// A minimal timing harness: the offline build cannot depend on
/// criterion, so the `[[bench]]` targets are plain `main`s that call
/// [`harness::bench`] and print one line per series point.
pub mod harness {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Run `f` once as warmup, then `samples` timed times; report and
    /// return the best (least-noisy) duration.
    pub fn bench<T>(label: &str, samples: usize, mut f: impl FnMut() -> T) -> Duration {
        black_box(f());
        let mut best = Duration::MAX;
        for _ in 0..samples.max(1) {
            let t0 = Instant::now();
            black_box(f());
            best = best.min(t0.elapsed());
        }
        println!("{label:<44} {best:>12.2?}  (best of {samples})");
        best
    }
}

/// A fresh `(store, alg, atoms)` world for Boolean benchmarks.
pub fn bool_world(atom_count: usize) -> (TermStore, BoolAlg, Vec<TermId>) {
    let mut sig = Signature::new();
    let alg = BoolAlg::install(&mut sig).expect("fresh signature");
    let mut store = TermStore::new(sig);
    let atoms = (0..atom_count)
        .map(|_| store.fresh_constant("p", alg.sort()))
        .collect();
    (store, alg, atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_and_truth_table_agree_on_random_formulas() {
        let (mut store, alg, atoms) = bool_world(4);
        for seed in 0..50 {
            let f = random_formula(&mut store, &alg, &atoms, 12, seed);
            let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
            let by_ring = norm.proves(&mut store, f).unwrap();
            let by_table = truth_table_tautology(&store, &alg, &atoms, f).unwrap();
            assert_eq!(by_ring, by_table, "seed {seed}");
        }
    }

    #[test]
    fn unsupported_operators_are_a_typed_error_not_a_panic() {
        let (mut store, alg, atoms) = bool_world(2);
        // `_=_` over Bool is not one of the evaluated connectives.
        let eq_op = alg.eq_op(alg.sort()).expect("BOOL installs _=_");
        let f = store.app(eq_op, &[atoms[0], atoms[1]]).unwrap();
        let err = truth_table_tautology(&store, &alg, &atoms, f).unwrap_err();
        assert!(matches!(err, FormulaError::UnsupportedOperator { ref op } if op == "_=_"));
        assert!(err.to_string().contains("unsupported operator"));
    }

    #[test]
    fn oversized_truth_tables_are_refused() {
        let (store, alg, atoms) = bool_world(21);
        let err = truth_table_tautology(&store, &alg, &atoms, atoms[0]).unwrap_err();
        assert_eq!(err, FormulaError::TooManyAtoms { count: 21 });
    }

    #[test]
    fn random_formulas_are_deterministic_per_seed() {
        let (mut store, alg, atoms) = bool_world(3);
        let f1 = random_formula(&mut store, &alg, &atoms, 10, 42);
        let f2 = random_formula(&mut store, &alg, &atoms, 10, 42);
        assert_eq!(f1, f2);
    }
}
