//! Spill-tier end-to-end: the memory-resilience guarantees of the
//! sharded visited set on the real TLS scope check.
//!
//! Three contracts, pinned over the §5 counterexample scope:
//!
//! 1. **Determinism** — a run that spills cold visited-set shards to
//!    disk produces *bit-identical* results to an all-resident run, at
//!    every `jobs` value. Spill decisions happen only at level barriers
//!    in shard order, so the disk tier changes wall-clock and resident
//!    bytes, never a count, verdict, or trace.
//! 2. **Crash-safety** — a run interrupted mid-spill (deterministic
//!    injected fault standing in for `kill -9`; the script-level smoke
//!    does the real kill) resumes from its manifest checkpoint and lands
//!    byte-identical to a straight-through run.
//! 3. **Typed corruption** — a truncated or byte-flipped shard file
//!    fails the resume with a typed [`PersistError`], never a panic and
//!    never silently-wrong states.

use equitls::mc::prelude::*;
use equitls::tls::concrete::{Scope, State};
use std::path::{Path, PathBuf};

const JOBS: [usize; 3] = [1, 2, 4];

fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

/// A fresh spill directory under the system temp dir.
fn tmp_spill_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("equitls_spill_it_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tmp_snapshot(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "equitls_spill_it_{}_{name}.snap",
        std::process::id()
    ))
}

/// The §5 counterexample scope bounded to two messages: wide frontiers,
/// sub-second runtime.
fn small_scope() -> (Scope, Limits) {
    let mut scope = Scope::counterexample();
    scope.max_messages = 2;
    let limits = Limits {
        max_states: 100_000,
        max_depth: 3,
    };
    (scope, limits)
}

fn assert_same_exploration(a: &Exploration<State>, b: &Exploration<State>, ctx: &str) {
    assert_eq!(a.states, b.states, "states {ctx}");
    assert_eq!(a.depth_reached, b.depth_reached, "depth {ctx}");
    assert_eq!(a.complete, b.complete, "complete {ctx}");
    assert_eq!(a.stop_reason, b.stop_reason, "stop reason {ctx}");
    assert_eq!(a.states_per_depth, b.states_per_depth, "per-level {ctx}");
    assert_eq!(a.dedup_hits, b.dedup_hits, "dedup {ctx}");
    assert_eq!(a.unexpanded, b.unexpanded, "unexpanded {ctx}");
    assert_eq!(a.violations.len(), b.violations.len(), "violations {ctx}");
    for (av, bv) in a.violations.iter().zip(&b.violations) {
        assert_eq!(av.property, bv.property, "property {ctx}");
        assert_eq!(av.depth, bv.depth, "violation depth {ctx}");
        assert_eq!(av.trace, bv.trace, "witness trace {ctx}");
    }
}

/// A spill-everything configuration: one resident shard at most after
/// each barrier, so the disk tier is genuinely exercised even without a
/// memory ceiling.
fn spill_config(dir: &Path, fault_plan: Option<FaultPlan>) -> ExploreConfig {
    ExploreConfig {
        fault_plan,
        spill_dir: Some(dir.to_path_buf()),
        max_resident_shards: 1,
        spill_shards: 8,
        ..ExploreConfig::default()
    }
}

#[test]
fn spilled_scope_check_is_bit_identical_at_jobs_1_2_4() {
    on_big_stack(|| {
        let (scope, limits) = small_scope();
        let resident = check_scope(&scope, &limits);
        assert!(resident.complete, "the resident baseline finishes");
        assert!(
            resident.violation("prop2p-cf-authentic").is_some(),
            "the paper's 2' violation is found"
        );
        for jobs in JOBS {
            let dir = tmp_spill_dir(&format!("identical_j{jobs}"));
            let spilled = check_scope_config(&scope, &limits, jobs, &spill_config(&dir, None));
            assert_same_exploration(&spilled, &resident, &format!("jobs={jobs}"));
            assert!(
                spilled.spill_shards > 0,
                "jobs={jobs}: shards actually went to disk"
            );
            assert!(
                spilled.degradation.iter().any(|d| d == "visited-spilled"),
                "jobs={jobs}: degradation disclosed, got {:?}",
                spilled.degradation
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    });
}

#[test]
fn interrupted_spilled_run_resumes_byte_identical() {
    on_big_stack(|| {
        let (scope, limits) = small_scope();
        let straight = check_scope(&scope, &limits);
        for jobs in JOBS {
            let dir = tmp_spill_dir(&format!("resume_j{jobs}"));
            let path = tmp_snapshot(&format!("resume_j{jobs}"));
            let _ = std::fs::remove_file(&path);
            // Interrupt mid-level, after barriers that both spilled
            // shards and wrote a manifest checkpoint.
            let mut interrupt = spill_config(
                &dir,
                Some(FaultPlan::new().with_fault(Fault::new(
                    FaultSite::Successor,
                    FaultKind::DeadlineExpiry,
                    40,
                ))),
            );
            interrupt.checkpoint_path = Some(path.clone());
            let interrupted = check_scope_config(&scope, &limits, jobs, &interrupt);
            assert!(!interrupted.complete, "the fault interrupts the search");
            assert!(
                interrupted.spill_shards > 0,
                "shards were on disk at the interrupt"
            );
            assert!(path.exists(), "a manifest checkpoint was written");
            // Resume without the fault: revalidates every spilled
            // shard's checksum and digest, finishes, and matches the
            // uninterrupted all-resident run exactly.
            let mut resume = spill_config(&dir, None);
            resume.checkpoint_path = Some(path.clone());
            let resumed = check_scope_resume(&scope, &limits, jobs, &resume)
                .expect("manifest snapshot resumes");
            assert_same_exploration(&resumed, &straight, &format!("resume jobs={jobs}"));
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_dir_all(&dir);
        }
    });
}

#[test]
fn corrupt_shard_file_fails_resume_with_typed_error() {
    on_big_stack(|| {
        let (scope, limits) = small_scope();
        let dir = tmp_spill_dir("corrupt");
        let path = tmp_snapshot("corrupt");
        let _ = std::fs::remove_file(&path);
        let mut interrupt = spill_config(
            &dir,
            Some(FaultPlan::new().with_fault(Fault::new(
                FaultSite::Successor,
                FaultKind::DeadlineExpiry,
                40,
            ))),
        );
        interrupt.checkpoint_path = Some(path.clone());
        let interrupted = check_scope_config(&scope, &limits, 1, &interrupt);
        assert!(interrupted.spill_shards > 0 && path.exists());
        let shard_files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("spill dir exists")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "vshard"))
            .collect();
        assert!(!shard_files.is_empty(), "shard files on disk");

        // Byte-flip: the CRC catches it, typed, no panic, no states.
        let victim = &shard_files[0];
        let pristine = std::fs::read(victim).unwrap();
        let mut flipped = pristine.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        std::fs::write(victim, &flipped).unwrap();
        let mut resume = spill_config(&dir, None);
        resume.checkpoint_path = Some(path.clone());
        let err = check_scope_resume(&scope, &limits, 1, &resume)
            .expect_err("a byte-flipped shard cannot resume");
        assert_eq!(err, PersistError::ChecksumMismatch, "typed, not a panic");

        // Truncation: typed too.
        std::fs::write(victim, &pristine[..pristine.len() / 2]).unwrap();
        let err = check_scope_resume(&scope, &limits, 1, &resume)
            .expect_err("a truncated shard cannot resume");
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. } | PersistError::ChecksumMismatch
            ),
            "typed, got {err}"
        );

        // Restored bytes resume cleanly: the revalidation really was
        // checking content, not rejecting the resume path wholesale.
        std::fs::write(victim, &pristine).unwrap();
        let resumed =
            check_scope_resume(&scope, &limits, 1, &resume).expect("pristine bytes resume");
        let straight = check_scope(&scope, &limits);
        assert_same_exploration(&resumed, &straight, "after restore");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn injected_spill_write_fault_never_changes_the_verdicts() {
    on_big_stack(|| {
        let (scope, limits) = small_scope();
        let resident = check_scope(&scope, &limits);
        let dir = tmp_spill_dir("wfault");
        // Every spill write fails "disk full": all shards stay resident
        // (graceful backpressure), the check completes with identical
        // results, and the degradation is disclosed.
        let mut plan = FaultPlan::new();
        for attempt in 0..64 {
            plan.push(
                Fault::new(FaultSite::SpillWrite, FaultKind::IoError, attempt).in_scope("visited"),
            );
        }
        let faulted = check_scope_config(&scope, &limits, 1, &spill_config(&dir, Some(plan)));
        assert!(faulted.complete, "write faults never wedge the search");
        assert_same_exploration(&faulted, &resident, "under write faults");
        assert!(
            faulted
                .degradation
                .iter()
                .any(|d| d == "spill-write-failed"),
            "got {:?}",
            faulted.degradation
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
}
