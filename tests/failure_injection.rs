//! Failure injection: flawed protocol variants must make specific
//! properties fail (see `equitls::tls::mutants`).
//!
//! For every mutant: the expected properties stop proving, the failure
//! localizes to the injected transition, and a control property still
//! proves. A verifier that proves everything is worthless; this is the
//! soundness smoke test.

use equitls::core::prelude::{Hints, Prover};
use equitls::tls::mutants::Mutant;
use equitls::tls::{verify, TlsModel};

fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

fn hints_for(name: &str) -> Hints {
    let mut hints = Hints::new();
    if let Some(plan) = verify::plan(name) {
        for lemma in plan.lemmas {
            hints = hints.lemma(name, lemma);
        }
    }
    hints
}

#[test]
fn every_mutant_breaks_its_expected_properties_and_nothing_more() {
    on_big_stack(|| {
        for mutant in Mutant::all() {
            let mut model = TlsModel::standard().unwrap();
            let ots = mutant.inject(&mut model).unwrap();
            let config = verify::prover_config(&model);
            let mut prover =
                Prover::new(&mut model.spec, &ots, &model.invariants).with_config(config);

            for name in mutant.expected_failures() {
                let report = prover.prove_inductive(name, &hints_for(name)).unwrap();
                assert!(!report.is_proved(), "{mutant:?}: {name} must fail");
                let open = report.open_cases();
                assert!(
                    open.iter()
                        .any(|(action, _)| action == mutant.transition_name()),
                    "{mutant:?}: {name}'s failure must localize to {}: {open:?}",
                    mutant.transition_name()
                );
            }

            let control = mutant.control_property();
            let report = prover
                .prove_inductive(control, &hints_for(control))
                .unwrap();
            assert!(
                report.is_proved(),
                "{mutant:?}: control property {control} must still prove; open: {:#?}",
                report.open_cases()
            );
        }
    });
}
