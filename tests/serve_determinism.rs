//! Service-tier determinism: the PR 5/8 contracts lifted through
//! `equitls-serve`.
//!
//! Two guarantees are pinned on the real TLS jobs (prove / check /
//! lint):
//!
//! 1. **Concurrency-invariance** — the stable responses for a fixed
//!    admitted sequence are byte-identical whether the jobs run serially
//!    or interleaved on a worker pool, and whatever per-request `jobs`
//!    value (1/2/4) each job fans out to. Parallelism changes wall-clock
//!    time only, never a payload byte.
//! 2. **Kill-and-restart replay** — completing part of a journaled
//!    queue, killing the engine, and resuming produces a results file
//!    byte-identical to a straight-through run, at every `jobs` value.
//!
//! Both lean on the stable/volatile response split: stable payloads
//! carry only replay-invariant facts (verdicts, counts, traces,
//! findings), while durations and warm-cache rewrite tallies travel in
//! the wire-only volatile section.

use std::path::PathBuf;

use equitls::obs::sink::Obs;
use equitls::serve::engine::{Admission, ServeConfig, ServeEngine};
use equitls::serve::proto::{JobKind, JobRequest};

const JOBS: [usize; 3] = [1, 2, 4];

fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("equitls_serve_{}_{name}.snap", std::process::id()))
}

/// The canonical job mix: one of each kind, covering the prover, the
/// model checker, and the lint analyses.
fn job_mix(jobs: usize) -> Vec<JobRequest> {
    let mut prove = JobRequest::new("m-prove", JobKind::Prove);
    prove.property = "lem-src-honest".to_string();
    prove.jobs = jobs;
    let mut check = JobRequest::new("m-check", JobKind::Check);
    check.max_messages = Some(2);
    check.max_depth = Some(3);
    check.jobs = jobs;
    let mut lint = JobRequest::new("m-lint", JobKind::Lint);
    lint.target = "standard".to_string();
    lint.jobs = jobs;
    vec![prove, check, lint]
}

fn submit_all(engine: &ServeEngine, requests: Vec<JobRequest>) -> Vec<u64> {
    requests
        .into_iter()
        .map(|request| match engine.submit(request) {
            Admission::Accepted { seq } => seq,
            other => panic!("mix job must be admitted, got {other:?}"),
        })
        .collect()
}

/// Run the mix serially (manual mode) and return the stable lines in
/// admission order.
fn serial_run(jobs: usize) -> Vec<String> {
    let engine = ServeEngine::start(
        ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        },
        Obs::noop(),
    )
    .expect("engine starts");
    let seqs = submit_all(&engine, job_mix(jobs));
    while engine.run_next_job() {}
    seqs.iter()
        .map(|&seq| engine.stable_response(seq).expect("job completed"))
        .collect()
}

/// Run the mix on a live worker pool and return the stable lines.
fn concurrent_run(jobs: usize, workers: usize) -> Vec<String> {
    let engine = ServeEngine::start(
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
        Obs::noop(),
    )
    .expect("engine starts");
    let seqs = submit_all(&engine, job_mix(jobs));
    let lines = seqs
        .iter()
        .map(|&seq| {
            engine.wait_response(seq);
            engine.stable_response(seq).expect("job completed")
        })
        .collect();
    engine.shutdown();
    lines
}

#[test]
fn interleaved_jobs_match_serial_at_every_jobs_value() {
    on_big_stack(|| {
        let reference = serial_run(1);
        assert_eq!(reference.len(), 3);
        assert!(
            reference[0].contains("\"proved\":true"),
            "the prove job goes through: {}",
            reference[0]
        );
        // Per-request fan-out is invisible in the stable payload.
        for jobs in JOBS {
            assert_eq!(
                serial_run(jobs),
                reference,
                "serial stable lines at jobs {jobs} match the jobs-1 reference"
            );
        }
        // Worker-pool interleaving is invisible too: 2 and 4 workers
        // execute the 3-job queue concurrently in whatever order the
        // scheduler picks, and the admission-ordered lines still match.
        for workers in [2, 4] {
            assert_eq!(
                concurrent_run(2, workers),
                serial_run(2),
                "stable lines with {workers} concurrent workers match serial"
            );
        }
    });
}

#[test]
fn killed_and_resumed_queue_replays_bit_identically() {
    on_big_stack(|| {
        for jobs in JOBS {
            let journal = tmp(&format!("kill_j{jobs}"));
            let resumed_out = tmp(&format!("kill_j{jobs}_resumed"));
            let straight_out = tmp(&format!("kill_j{jobs}_straight"));
            std::fs::remove_file(&journal).ok();

            // Interrupted run: journal everything, complete 1 of 3, then
            // "kill -9" (drop the engine mid-queue; the journal snapshot
            // on disk is all that survives).
            {
                let engine = ServeEngine::start(
                    ServeConfig {
                        workers: 0,
                        journal_path: Some(journal.clone()),
                        ..ServeConfig::default()
                    },
                    Obs::noop(),
                )
                .expect("engine starts");
                submit_all(&engine, job_mix(jobs));
                assert!(engine.run_next_job());
            }

            // Restarted run: resume the journal, replay the unfinished
            // suffix, write the results file.
            {
                let engine = ServeEngine::start(
                    ServeConfig {
                        workers: 0,
                        journal_path: Some(journal.clone()),
                        resume: true,
                        ..ServeConfig::default()
                    },
                    Obs::noop(),
                )
                .expect("journal resumes");
                assert!(
                    engine.journal_entry(0).unwrap().response.is_some(),
                    "work finished before the kill survives it"
                );
                while engine.run_next_job() {}
                engine.write_results(&resumed_out).expect("results written");
            }

            // Straight-through run of the same admitted sequence.
            {
                let engine = ServeEngine::start(
                    ServeConfig {
                        workers: 0,
                        ..ServeConfig::default()
                    },
                    Obs::noop(),
                )
                .expect("engine starts");
                submit_all(&engine, job_mix(jobs));
                while engine.run_next_job() {}
                engine
                    .write_results(&straight_out)
                    .expect("results written");
            }

            let resumed = std::fs::read(&resumed_out).expect("resumed results");
            let straight = std::fs::read(&straight_out).expect("straight results");
            assert!(!resumed.is_empty());
            assert_eq!(
                resumed, straight,
                "jobs {jobs}: killed-and-resumed results are byte-identical"
            );
            for p in [&journal, &resumed_out, &straight_out] {
                std::fs::remove_file(p).ok();
            }
        }
    });
}
