//! Integration test: proof-score recording and rendering (§5.2 / E2).
//!
//! Runs inv2 with score recording enabled and checks that the `fakeSfin2`
//! obligation — the one the paper walks through — yields discharged
//! passages whose decision trails contain the paper's landmark
//! assumptions, and that they render as `open … close` blocks.

use equitls::core::prelude::*;
use equitls::tls::{verify, TlsModel};

#[test]
fn inv2_records_the_papers_fakesfin2_case_structure() {
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(|| {
            let mut model = TlsModel::standard().unwrap();
            let config = ProverConfig {
                record_scores: true,
                ..verify::prover_config(&model)
            };
            let mut prover =
                Prover::new(&mut model.spec, &model.ots, &model.invariants).with_config(config);
            let hints = Hints::new()
                .lemma("inv2", "lem-esfin-origin")
                .lemma("inv2", "inv1");
            let report = prover.prove_inductive("inv2", &hints).unwrap();
            assert!(report.is_proved());

            let fake = report
                .steps
                .iter()
                .find(|s| s.action == "fakeSfin2")
                .expect("fakeSfin2 obligation exists");
            assert!(
                fake.scores.len() >= 3,
                "the paper's case analysis has five sub-cases; ours discharged {}",
                fake.scores.len()
            );
            // The landmark decisions of §5.2: the effective condition
            // (PMS gleanable), and the a/b = intruder splits.
            let all_decisions: Vec<String> =
                fake.scores.iter().flatten().map(|d| d.render()).collect();
            assert!(
                all_decisions.iter().any(|d| d.contains("cpms(nw(")),
                "the effective condition is split on: {all_decisions:?}"
            );
            assert!(
                all_decisions.iter().any(|d| d.contains("intruder")),
                "the intruder equalities are split on"
            );

            // And they render in the paper's open/close shape.
            let rendered = render_recorded_scores(&report);
            assert!(rendered.contains("open ISTEP"));
            assert!(rendered.contains("close"));
            assert!(rendered.contains("eq p' = fakeSfin2(p, …) ."));
        })
        .expect("spawn");
    child.join().expect("join");
}

#[test]
fn score_recording_is_off_by_default() {
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(|| {
            let mut model = TlsModel::standard().unwrap();
            let report = verify::verify_property(&mut model, "inv1").unwrap();
            assert!(report.base.scores.is_empty());
            assert!(report.steps.iter().all(|s| s.scores.is_empty()));
        })
        .expect("spawn");
    child.join().expect("join");
}
