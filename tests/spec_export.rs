//! Integration test: the CafeOBJ-style export of the TLS model re-parses.
//!
//! `render_spec_module` prints each live module's declarations in the
//! surface DSL; parsing that text back must succeed and preserve the
//! declaration counts — keeping the exporter, the parser, and the model in
//! sync.

use equitls::spec::parser::parse_module;
use equitls::spec::prelude::render_spec_module;
use equitls::tls::TlsModel;

#[test]
fn every_model_module_renders_and_reparses() {
    let model = TlsModel::standard().unwrap();
    let mut checked = 0;
    for module in model.spec.modules() {
        if module.name == "BOOL" {
            continue; // built-in, partially implicit
        }
        let text = render_spec_module(&model.spec, &module.name)
            .unwrap_or_else(|| panic!("{} renders", module.name));
        let ast = parse_module(&text)
            .unwrap_or_else(|e| panic!("{} re-parses: {e}\n{text}", module.name));
        assert_eq!(ast.name, module.name);
        assert_eq!(
            ast.ops.len(),
            module.ops.len(),
            "{}: op count preserved",
            module.name
        );
        assert_eq!(
            ast.visible_sorts.len() + ast.hidden_sorts.len(),
            module.sorts.len(),
            "{}: sort count preserved",
            module.name
        );
        checked += 1;
    }
    assert!(checked >= 6, "all model modules were exercised: {checked}");
}

#[test]
fn the_variant_model_also_exports() {
    let model = TlsModel::variant().unwrap();
    let text = render_spec_module(&model.spec, "PROTOCOL-FIN2V").expect("variant module");
    assert!(text.contains("bop cfin2 : Protocol Prin Secret Msg Msg -> Protocol ."));
    assert!(parse_module(&text).is_ok());
}
