//! Integration test: the full verification campaign (experiments E1–E5,
//! E8, E9).
//!
//! Proves all eighteen properties on the Figure 2 protocol and re-proves
//! them on the §5.3 variant. This is the headline reproduction result:
//! the paper's five properties (and our reconstruction of its thirteen
//! auxiliary lemmas) are machine-checked by the mechanized proof-score
//! prover.

use equitls::tls::{verify, TlsModel, Variant};

fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

#[test]
fn the_five_main_properties_prove_on_the_standard_protocol() {
    on_big_stack(|| {
        let mut model = TlsModel::standard().unwrap();
        for name in ["inv1", "inv2", "inv3", "inv4", "inv5"] {
            let report = verify::verify_property(&mut model, name).unwrap();
            assert!(
                report.is_proved(),
                "{name} should prove; open cases: {:#?}",
                report.open_cases()
            );
        }
    });
}

#[test]
fn all_thirteen_auxiliary_lemmas_prove() {
    on_big_stack(|| {
        let mut model = TlsModel::standard().unwrap();
        for plan in verify::PLANS.iter().filter(|p| p.name.starts_with("lem-")) {
            let report = verify::verify_property(&mut model, plan.name).unwrap();
            assert!(
                report.is_proved(),
                "{} should prove; open cases: {:#?}",
                plan.name,
                report.open_cases()
            );
        }
    });
}

#[test]
fn the_variant_protocol_satisfies_the_same_properties() {
    // §5.3: "We have also verified that the five properties … hold in the
    // protocol where a ClientFinished2 message precedes a ServerFinished2
    // message."
    on_big_stack(|| {
        let mut model = TlsModel::variant().unwrap();
        assert_eq!(model.variant, Variant::ClientFinished2First);
        for name in ["inv1", "inv2", "inv3", "inv4", "inv5"] {
            let report = verify::verify_property(&mut model, name).unwrap();
            assert!(
                report.is_proved(),
                "{name} should prove on the variant; open: {:#?}",
                report.open_cases()
            );
        }
    });
}

#[test]
fn proof_reports_count_passages_and_splits() {
    on_big_stack(|| {
        let mut model = TlsModel::standard().unwrap();
        let report = verify::verify_property(&mut model, "inv1").unwrap();
        // The inductive proof covers init + all 27 transitions.
        assert_eq!(report.steps.len(), 27);
        assert!(report.total_passages() > 27, "at least one passage each");
        assert!(report.total_splits() > 0);
        assert!(report.base.outcome.is_proved());
    });
}
