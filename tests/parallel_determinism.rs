//! Integration test: parallel execution is observationally deterministic.
//!
//! The parallel explorer (level-synchronous BFS with merge-at-barrier)
//! and the parallel prover (independent obligations on cloned specs) are
//! designed so that the *results* are a pure function of the input — the
//! thread count only changes wall-clock time. This test pins that
//! contract end-to-end on the TLS models: identical verdicts, state
//! counts, violation traces, and proved/vacuous/open tallies at
//! jobs = 1, 2, 4.
//!
//! The rewrite engine's accelerators are held to the same contract:
//! discrimination-tree indexing must be bit-identical to a linear rule
//! scan (it is a lookup structure, not a strategy), and the shared
//! normal-form cache may change the `rewrites` fuel tally only — never
//! a verdict, count, trace, or score.

use equitls::lint::{analyze_spec, AnalysisOptions, LintConfig};
use equitls::mc::prelude::*;
use equitls::obs::sink::{Obs, RecordingSink};
use equitls::tls::concrete::Scope;
use equitls::tls::verify::VerifyOptions;
use equitls::tls::{verify, TlsModel};
use std::sync::Arc;

const JOBS: [usize; 3] = [1, 2, 4];

fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

#[test]
fn tls_scope_exploration_is_identical_at_every_thread_count() {
    let mut scope = Scope::counterexample();
    scope.max_messages = 2;
    let limits = Limits {
        max_states: 100_000,
        max_depth: 3,
    };

    let runs: Vec<Exploration<_>> = JOBS
        .iter()
        .map(|&jobs| check_scope_jobs(&scope, &limits, jobs))
        .collect();
    let baseline = &runs[0];

    // The counterexample scope must actually exercise both outcomes:
    // held properties and a found violation with a trace.
    assert!(baseline.complete, "scope should be exhausted");
    assert!(
        baseline.violation("prop2p-cf-authentic").is_some(),
        "the 2' violation should be found in this scope"
    );
    assert!(baseline.violation("prop1-pms-secrecy").is_none());

    for (jobs, run) in JOBS.iter().zip(&runs).skip(1) {
        assert_eq!(run.states, baseline.states, "state count at jobs={jobs}");
        assert_eq!(run.depth_reached, baseline.depth_reached);
        assert_eq!(run.states_per_depth, baseline.states_per_depth);
        assert_eq!(run.dedup_hits, baseline.dedup_hits);
        assert_eq!(run.complete, baseline.complete);
        assert_eq!(
            run.violations.len(),
            baseline.violations.len(),
            "violation set at jobs={jobs}"
        );
        for (v, bv) in run.violations.iter().zip(&baseline.violations) {
            assert_eq!(v.property, bv.property, "verdict order at jobs={jobs}");
            assert_eq!(v.depth, bv.depth);
            assert_eq!(v.trace, bv.trace, "minimal trace at jobs={jobs}");
        }
    }
}

/// Profiling is pure observation: with a recording sink attached (span
/// timings, per-rule profiles, per-level explorer counters all flowing),
/// every verdict, count, and trace still matches the unprofiled baseline
/// at every thread count.
#[test]
fn profiling_does_not_change_results_at_any_thread_count() {
    let mut scope = Scope::counterexample();
    scope.max_messages = 2;
    let limits = Limits {
        max_states: 100_000,
        max_depth: 3,
    };
    let baseline = check_scope_jobs(&scope, &limits, 1);

    for jobs in JOBS {
        let recorder = Arc::new(RecordingSink::new());
        let obs = Obs::new(recorder.clone());
        let run = check_scope_config_obs(&scope, &limits, jobs, &ExploreConfig::default(), &obs);
        assert_eq!(run.states, baseline.states, "state count at jobs={jobs}");
        assert_eq!(run.states_per_depth, baseline.states_per_depth);
        assert_eq!(run.dedup_hits, baseline.dedup_hits);
        assert_eq!(run.complete, baseline.complete);
        assert_eq!(run.violations.len(), baseline.violations.len());
        for (v, bv) in run.violations.iter().zip(&baseline.violations) {
            assert_eq!(v.property, bv.property, "verdict order at jobs={jobs}");
            assert_eq!(v.trace, bv.trace, "trace at jobs={jobs}");
        }
        // The profile actually recorded something: per-level timing
        // counters for every explored level.
        let events = recorder.events();
        assert!(
            events.iter().any(|e| e.name().starts_with("mc.succ_us:")),
            "per-level successor timing recorded at jobs={jobs}"
        );
    }

    on_big_stack(|| {
        let baseline = {
            let mut model = TlsModel::standard().unwrap();
            verify::verify_property_jobs(&mut model, "inv1", 1).unwrap()
        };
        for jobs in JOBS {
            let recorder = Arc::new(RecordingSink::new());
            let obs = Obs::new(recorder.clone());
            let opts = VerifyOptions {
                jobs,
                profile_rules: true,
                ..VerifyOptions::default()
            };
            let mut model = TlsModel::standard().unwrap();
            let report = verify::verify_property_opts(&mut model, "inv1", &opts, &obs).unwrap();
            assert_eq!(report.is_proved(), baseline.is_proved());
            assert_eq!(report.steps.len(), baseline.steps.len());
            for (step, bstep) in report.steps.iter().zip(&baseline.steps) {
                assert_eq!(step.action, bstep.action, "step order at jobs={jobs}");
                assert_eq!(step.outcome, bstep.outcome, "verdict at jobs={jobs}");
                assert_eq!(step.metrics, bstep.metrics, "tallies at jobs={jobs}");
            }
            let events = recorder.events();
            assert!(
                events.iter().any(|e| e.name().starts_with("rule.time_us:")),
                "rule profile recorded at jobs={jobs}"
            );
            assert!(
                events
                    .iter()
                    .any(|e| e.name().starts_with("prover.obligation:")),
                "obligation spans recorded at jobs={jobs}"
            );
        }
    });
}

/// The static analyzer under `--jobs`: critical-pair joinability fans out
/// across workers, but each pair is judged with fresh normalizers, so the
/// rendered report — every diagnostic, order, note, and count — must be
/// identical at every thread count.
#[test]
fn lint_report_is_identical_at_every_thread_count() {
    on_big_stack(|| {
        let model = TlsModel::standard().unwrap();
        let config = LintConfig::new();
        let reports: Vec<String> = JOBS
            .iter()
            .map(|&jobs| {
                let options = AnalysisOptions {
                    jobs,
                    roots: Vec::new(),
                };
                let outcome = analyze_spec(&model.spec, "TLS (standard)", &config, &options, None);
                format!("{}", outcome.report)
            })
            .collect();
        for (jobs, report) in JOBS.iter().zip(&reports).skip(1) {
            assert_eq!(report, &reports[0], "lint report differs at jobs={jobs}");
        }
    });
}

/// The discrimination-tree index is a pure lookup accelerator: its
/// candidate enumeration reproduces the linear scan's rule-firing order
/// exactly, so an indexed proof run is **bit-identical** to a
/// linear-scan run — every verdict, tally, score, and rewrite count —
/// at every thread count. The recording sink pins that the index was
/// actually consulted, not silently bypassed.
#[test]
fn indexed_matching_is_bit_identical_to_linear_scan() {
    on_big_stack(|| {
        let baseline = {
            let opts = VerifyOptions {
                linear_scan: true,
                ..VerifyOptions::default()
            };
            let mut model = TlsModel::standard().unwrap();
            verify::verify_property_opts(&mut model, "inv1", &opts, &Obs::noop()).unwrap()
        };
        assert!(baseline.is_proved());

        for jobs in JOBS {
            let recorder = Arc::new(RecordingSink::new());
            let obs = Obs::new(recorder.clone());
            let opts = VerifyOptions {
                jobs,
                profile_rules: true,
                ..VerifyOptions::default() // indexing is the default
            };
            let mut model = TlsModel::standard().unwrap();
            let report = verify::verify_property_opts(&mut model, "inv1", &opts, &obs).unwrap();
            assert_eq!(report.is_proved(), baseline.is_proved());
            assert_eq!(report.steps.len(), baseline.steps.len());
            assert_eq!(report.base.outcome, baseline.base.outcome);
            assert_eq!(report.base.metrics, baseline.base.metrics);
            for (step, bstep) in report.steps.iter().zip(&baseline.steps) {
                assert_eq!(step.action, bstep.action, "step order at jobs={jobs}");
                assert_eq!(step.outcome, bstep.outcome, "verdict at jobs={jobs}");
                assert_eq!(
                    step.metrics, bstep.metrics,
                    "tallies (rewrites included) for {} at jobs={jobs}",
                    step.action
                );
                assert_eq!(step.scores, bstep.scores);
            }
            assert_eq!(
                report.total_rewrite_stats(),
                baseline.total_rewrite_stats(),
                "rewrite statistics must be bit-identical at jobs={jobs}"
            );
            let events = recorder.events();
            assert!(
                events.iter().any(|e| e.name() == "rewrite.index_lookups"),
                "index consulted at jobs={jobs}"
            );
        }
    });
}

/// The shared normal-form cache may only skip work a fresh derivation
/// would have repeated: a hit replays a published normal form, so it
/// reduces the `rewrites` fuel counter but can never change a verdict,
/// a passage/split/proved/vacuous/open tally, or a score — at any
/// thread count. The scoped model check runs after the cached proof
/// campaigns in the same process and must match its own pre-campaign
/// baseline exactly: the concrete explorer never rewrites, and engine
/// state must not bleed into it.
#[test]
fn shared_cache_changes_rewrite_counts_only() {
    let mut scope = Scope::counterexample();
    scope.max_messages = 2;
    let limits = Limits {
        max_states: 100_000,
        max_depth: 3,
    };
    let mc_baseline = check_scope_jobs(&scope, &limits, 1);

    on_big_stack(|| {
        let baseline = {
            let mut model = TlsModel::standard().unwrap();
            verify::verify_property_jobs(&mut model, "inv1", 1).unwrap()
        };
        assert!(baseline.is_proved());
        for jobs in JOBS {
            let opts = VerifyOptions {
                jobs,
                shared_nf_cache: true,
                ..VerifyOptions::default()
            };
            let mut model = TlsModel::standard().unwrap();
            let report =
                verify::verify_property_opts(&mut model, "inv1", &opts, &Obs::noop()).unwrap();
            assert_eq!(report.is_proved(), baseline.is_proved());
            assert_eq!(report.steps.len(), baseline.steps.len());
            assert_eq!(report.base.outcome, baseline.base.outcome);
            for (step, bstep) in report.steps.iter().zip(&baseline.steps) {
                assert_eq!(step.action, bstep.action, "step order at jobs={jobs}");
                assert_eq!(step.outcome, bstep.outcome, "verdict at jobs={jobs}");
                assert_eq!(step.scores, bstep.scores, "scores at jobs={jobs}");
                // Every tally except the fuel spent must match the cold
                // run; `rewrites` is exactly what a cache hit saves.
                let (m, bm) = (&step.metrics, &bstep.metrics);
                assert_eq!(m.passages, bm.passages, "passages at jobs={jobs}");
                assert_eq!(m.splits, bm.splits, "splits at jobs={jobs}");
                assert_eq!(m.max_depth, bm.max_depth, "depth at jobs={jobs}");
                assert_eq!(m.proved, bm.proved, "proved at jobs={jobs}");
                assert_eq!(m.vacuous, bm.vacuous, "vacuous at jobs={jobs}");
                assert_eq!(m.open, bm.open, "open at jobs={jobs}");
            }
        }
    });

    for jobs in JOBS {
        let run = check_scope_jobs(&scope, &limits, jobs);
        assert_eq!(run.states, mc_baseline.states, "mc states at jobs={jobs}");
        assert_eq!(run.states_per_depth, mc_baseline.states_per_depth);
        assert_eq!(run.dedup_hits, mc_baseline.dedup_hits);
        assert_eq!(run.complete, mc_baseline.complete);
        assert_eq!(run.violations.len(), mc_baseline.violations.len());
        for (v, bv) in run.violations.iter().zip(&mc_baseline.violations) {
            assert_eq!(v.property, bv.property, "mc verdict order at jobs={jobs}");
            assert_eq!(v.trace, bv.trace, "mc trace at jobs={jobs}");
        }
    }
}

#[test]
fn full_proof_score_is_identical_at_every_thread_count() {
    on_big_stack(|| {
        let reports: Vec<_> = JOBS
            .iter()
            .map(|&jobs| {
                let mut model = TlsModel::standard().unwrap();
                verify::verify_property_jobs(&mut model, "inv1", jobs).unwrap()
            })
            .collect();
        let baseline = &reports[0];
        assert!(baseline.is_proved());
        assert_eq!(baseline.steps.len(), 27);
        let base_totals = baseline.total_metrics();
        assert!(base_totals.proved > 0);
        assert_eq!(base_totals.open, 0);

        for (jobs, report) in JOBS.iter().zip(&reports).skip(1) {
            assert_eq!(report.is_proved(), baseline.is_proved());
            assert_eq!(report.steps.len(), baseline.steps.len());
            assert_eq!(
                report.base.outcome, baseline.base.outcome,
                "base case at jobs={jobs}"
            );
            for (step, bstep) in report.steps.iter().zip(&baseline.steps) {
                assert_eq!(step.action, bstep.action, "step order at jobs={jobs}");
                assert_eq!(
                    step.outcome, bstep.outcome,
                    "verdict for {} at jobs={jobs}",
                    step.action
                );
                assert_eq!(
                    step.metrics, bstep.metrics,
                    "proved/vacuous/open tallies for {} at jobs={jobs}",
                    step.action
                );
                assert_eq!(step.scores, bstep.scores);
            }
            let totals = report.total_metrics();
            assert_eq!(totals, base_totals, "campaign tallies at jobs={jobs}");
            assert_eq!(
                report.total_rewrite_stats().rewrites,
                baseline.total_rewrite_stats().rewrites
            );
        }
    });
}
