//! Integration test: the §5.3 negative results (experiments E6/E7).
//!
//! Properties 2′ and 3′ — client-side Finished authenticity — are *false*
//! in the protocol. Three independent checks agree:
//!
//! 1. the model checker finds violations by breadth-first search;
//! 2. the paper's exact counterexample traces replay through the concrete
//!    machine;
//! 3. the symbolic prover fails to prove the properties (open cases
//!    remain), while proving the server-side twins.

use equitls::core::prelude::{Invariant, InvariantSet, Prover};
use equitls::mc::prelude::*;
use equitls::spec::parser::{elaborate_term, parse_term_ast, ElabScope};
use equitls::tls::concrete::Scope;
use equitls::tls::{verify, TlsModel};

#[test]
fn bfs_finds_the_2prime_and_3prime_violations() {
    let mut scope = Scope::counterexample();
    scope.max_messages = 2;
    let limits = Limits {
        max_states: 100_000,
        max_depth: 3,
    };
    let result = check_scope(&scope, &limits);
    assert!(result.complete, "the bounded space should be exhausted");
    assert!(result.violation("prop2p-cf-authentic").is_some());
    assert!(result.violation("prop3p-cf2-authentic").is_some());
    // The five positive properties hold everywhere in the bound.
    for name in [
        "prop1-pms-secrecy",
        "prop2-sf-authentic",
        "prop3-sf2-authentic",
        "prop4-sh-ct-authentic",
        "prop5-sh2-authentic",
    ] {
        assert!(result.violation(name).is_none(), "{name} must hold");
    }
}

#[test]
fn the_papers_traces_replay_exactly() {
    let r2 = counterexample_2prime().expect("2' replays");
    assert_eq!(r2.trace.len(), 6, "six messages as in the paper");
    let r3 = counterexample_3prime().expect("3' replays");
    assert_eq!(r3.trace.len(), 4, "four messages as in the paper");
}

#[test]
fn anonymity_corollary_the_server_cannot_identify_the_client() {
    // §5.3: "if clients use TLS where they are not authenticated, they
    // cannot be identified". Concretely: the final state of the 2' run is
    // one where the server accepted a session "with p2" although every
    // client-side message was created by the intruder.
    let replay = counterexample_2prime().unwrap();
    let (_, final_state) = replay.trace.last().unwrap();
    let client_msgs: Vec<_> = final_state
        .messages()
        .filter(|m| m.src == equitls::tls::concrete::Prin(2))
        .collect();
    assert!(!client_msgs.is_empty());
    assert!(
        client_msgs
            .iter()
            .all(|m| m.crt == equitls::tls::concrete::Prin::INTRUDER),
        "every message 'from p2' was actually created by the intruder"
    );
}

/// The symbolic prover cannot prove 2′ — and reports honest open cases.
#[test]
fn the_symbolic_prover_leaves_2prime_open() {
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(|| {
            let mut model = TlsModel::standard().unwrap();
            // State 2' as an invariant: a conformant cf seemingly from a
            // trustable client really originates from the client.
            let body_src = r"not (A = intruder)
                and cf(B1, A, B, ecfin(key(A, PM, R1, R2),
                                       cfin(A, B, I, L, C, R1, R2, PM))) \in nw(P)
                implies
                cf(A, A, B, ecfin(key(A, PM, R1, R2),
                                  cfin(A, B, I, L, C, R1, R2, PM))) \in nw(P)";
            let ast = parse_term_ast(body_src).unwrap();
            let mut scope = ElabScope::new();
            let store = model.spec.store();
            let mut vars = std::collections::HashMap::new();
            for name in ["P", "A", "B", "B1", "R1", "R2", "L", "C", "I", "PM"] {
                let var = store.var_by_name(name).expect("property var exists");
                vars.insert(name, var);
            }
            for (name, &var) in &vars {
                let occurrence = model.spec.store_mut().var(var);
                scope.bind(name, occurrence);
            }
            let body = elaborate_term(&mut model.spec, &scope, &ast).unwrap();
            let inv = Invariant::new(
                &model.spec,
                "prop2prime",
                vars["P"],
                vec![
                    vars["A"], vars["B"], vars["B1"], vars["R1"], vars["R2"], vars["L"], vars["C"],
                    vars["I"], vars["PM"],
                ],
                body,
            )
            .unwrap();
            let mut invariants = InvariantSet::new();
            for (name, _, _) in equitls::tls::symbolic::properties::PROPERTIES {
                invariants.push(model.invariants.get(name).unwrap().clone());
            }
            invariants.push(inv);
            let config = verify::prover_config(&model);
            let mut prover =
                Prover::new(&mut model.spec, &model.ots, &invariants).with_config(config);
            let report = prover
                .prove_inductive("prop2prime", &equitls::core::prelude::Hints::new())
                .unwrap();
            assert!(
                !report.is_proved(),
                "property 2' must NOT prove — the paper refutes it"
            );
            // The failing obligation is an intruder transition that
            // constructs the client Finished.
            let open = report.open_cases();
            assert!(
                open.iter().any(|(action, _)| action.starts_with("fake")),
                "the open case should come from an intruder fake: {open:?}"
            );
        })
        .expect("spawn");
    child.join().expect("join");
}
