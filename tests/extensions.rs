//! Extension properties beyond the paper's eighteen.
//!
//! The paper's invariants all speak about the network; these extensions
//! speak about the *session store* (`ss`), closing the loop between
//! "messages were exchanged" and "a session was recorded":
//!
//! * client-side session soundness: when a trustable client records a
//!   full-handshake session, its pre-master secret names the client and
//!   the session peer — the client never books a session under a
//!   different identity pair. (The server-side analogue is *false* for
//!   the same reason as property 2′: the server cannot authenticate the
//!   client.)

use equitls::core::prelude::*;
use equitls::spec::parser::{elaborate_term, parse_term_ast, ElabScope};
use equitls::tls::{verify, TlsModel};

fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

fn build_invariant(model: &mut TlsModel, name: &str, params: &[&str], body_src: &str) -> Invariant {
    let ast = parse_term_ast(body_src).unwrap();
    let mut scope = ElabScope::new();
    let mut vars = std::collections::HashMap::new();
    for var_name in ["P", "A", "B", "I", "S", "PM"] {
        if let Some(var) = model.spec.store().var_by_name(var_name) {
            vars.insert(var_name, var);
            let occurrence = model.spec.store_mut().var(var);
            scope.bind(var_name, occurrence);
        }
    }
    let body = elaborate_term(&mut model.spec, &scope, &ast).unwrap();
    Invariant::new(
        &model.spec,
        name,
        vars["P"],
        params.iter().map(|p| vars[*p]).collect(),
        body,
    )
    .unwrap()
}

#[test]
fn client_session_records_are_well_named() {
    on_big_stack(|| {
        let mut model = TlsModel::standard().unwrap();
        // If a trustable client A records any session with B under I,
        // the recorded pre-master secret names exactly (A, B).
        let ext = build_invariant(
            &mut model,
            "ext-session-client",
            &["A", "B", "I"],
            r"not (A = intruder) and not (ss(P, A, B, I) = noSession)
              implies
              (client(spms(ss(P, A, B, I))) = A
               and server(spms(ss(P, A, B, I))) = B)",
        );
        let mut invariants = InvariantSet::new();
        for (name, _, _) in equitls::tls::symbolic::properties::PROPERTIES {
            invariants.push(model.invariants.get(name).unwrap().clone());
        }
        invariants.push(ext);
        let config = verify::prover_config(&model);
        let mut prover = Prover::new(&mut model.spec, &model.ots, &invariants).with_config(config);
        let report = prover
            .prove_inductive("ext-session-client", &Hints::new())
            .unwrap();
        assert!(
            report.is_proved(),
            "client session soundness should prove; open: {:#?}",
            report.open_cases()
        );
    });
}

#[test]
fn server_session_records_are_not_well_named() {
    // The server-side analogue is FALSE: after the 2'-style run, the
    // server records a session "with a" whose pre-master secret names the
    // intruder. The prover must leave it open, with the failure at a
    // session-recording transition.
    on_big_stack(|| {
        let mut model = TlsModel::standard().unwrap();
        let ext = build_invariant(
            &mut model,
            "ext-session-server",
            &["A", "B", "I"],
            r"not (B = intruder) and not (ss(P, B, A, I) = noSession)
              implies
              client(spms(ss(P, B, A, I))) = A",
        );
        let mut invariants = InvariantSet::new();
        for (name, _, _) in equitls::tls::symbolic::properties::PROPERTIES {
            invariants.push(model.invariants.get(name).unwrap().clone());
        }
        invariants.push(ext);
        let config = verify::prover_config(&model);
        let mut prover = Prover::new(&mut model.spec, &model.ots, &invariants).with_config(config);
        let report = prover
            .prove_inductive("ext-session-server", &Hints::new())
            .unwrap();
        assert!(
            !report.is_proved(),
            "server-side session naming must NOT prove (cf. property 2')"
        );
        let open = report.open_cases();
        assert!(
            open.iter()
                .any(|(action, _)| action == "compl2" || action == "compl" || action == "cfin2"),
            "failure localizes to a session-recording transition: {open:?}"
        );
    });
}
