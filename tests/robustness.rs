//! Robustness end-to-end: unified budgets, cooperative cancellation, and
//! panic containment across the prover and the explorer.
//!
//! Pins the PR's two acceptance criteria on the real TLS models:
//!
//! 1. a seeded `FaultPlan` panic in one prover obligation at `jobs = 4`
//!    yields the *same report* as `jobs = 1` — the obligation is marked
//!    as a worker fault, every sibling still proves;
//! 2. a deadline-expired exploration returns `complete = false` with
//!    `StopReason::DeadlineExceeded` and an internally consistent
//!    `states_per_depth` tally.
//!
//! Plus the check-suite smoke: a 2-second deadline on the §5 scope check
//! (which finishes far sooner) leaves results identical at jobs 1/2/4.

use equitls::mc::prelude::*;
use equitls::obs::sink::Obs;
use equitls::tls::concrete::Scope;
use equitls::tls::verify::{self, VerifyOptions};
use equitls::tls::TlsModel;
use std::time::Duration;

const JOBS: [usize; 3] = [1, 2, 4];

fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

/// The §5 counterexample scope bounded to two messages: big enough to
/// exercise wide frontiers, small enough to finish in well under a second.
fn small_scope() -> (Scope, Limits) {
    let mut scope = Scope::counterexample();
    scope.max_messages = 2;
    let limits = Limits {
        max_states: 100_000,
        max_depth: 3,
    };
    (scope, limits)
}

#[test]
fn injected_prover_panic_yields_identical_reports_at_jobs_1_and_4() {
    on_big_stack(|| {
        // The `kexch` obligation panics the moment it starts; the other
        // 26 transitions and the base case must be untouched.
        let plan = FaultPlan::new()
            .with_fault(Fault::new(FaultSite::Obligation, FaultKind::Panic, 0).in_scope("kexch"));
        let reports: Vec<_> = [1usize, 4]
            .iter()
            .map(|&jobs| {
                let mut model = TlsModel::standard().expect("model builds");
                let opts = VerifyOptions {
                    jobs,
                    fault_plan: Some(plan.clone()),
                    ..VerifyOptions::default()
                };
                verify::verify_property_opts(&mut model, "lem-src-honest", &opts, &Obs::noop())
                    .expect("engine ok")
            })
            .collect();

        for report in &reports {
            assert!(!report.is_proved(), "a faulted obligation is not a proof");
            let faults = report.faults();
            assert_eq!(faults.len(), 1, "exactly one obligation faulted");
            let (action, fault) = &faults[0];
            assert_eq!(action, "kexch");
            assert_eq!(fault.site, "obligation:kexch");
            assert!(
                fault.message.contains("injected fault"),
                "panic payload surfaces in the report: {}",
                fault.message
            );
            // Every sibling obligation proved despite the panic next door.
            for step in &report.steps {
                if step.action != "kexch" {
                    assert!(
                        step.outcome.is_proved(),
                        "sibling {} must be unaffected",
                        step.action
                    );
                }
            }
            assert!(report.base.outcome.is_proved(), "base case unaffected");
        }

        // The two reports are identical, step for step.
        let (one, four) = (&reports[0], &reports[1]);
        assert_eq!(one.base.outcome, four.base.outcome);
        assert_eq!(one.steps.len(), four.steps.len());
        for (a, b) in one.steps.iter().zip(&four.steps) {
            assert_eq!(a.action, b.action, "step order");
            assert_eq!(a.outcome, b.outcome, "verdict for {}", a.action);
            assert_eq!(a.metrics, b.metrics, "tallies for {}", a.action);
        }
    });
}

#[test]
fn cancelled_campaign_reports_open_obligations_not_a_dead_process() {
    on_big_stack(|| {
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let mut model = TlsModel::standard().expect("model builds");
        let opts = VerifyOptions {
            budget,
            ..VerifyOptions::default()
        };
        let report =
            verify::verify_property_opts(&mut model, "lem-src-honest", &opts, &Obs::noop())
                .expect("engine ok");
        assert!(!report.is_proved());
        let open = report.open_cases();
        assert!(!open.is_empty());
        for (_, case) in &open {
            assert!(
                case.residual.contains("cancelled"),
                "residual names the stop reason: {}",
                case.residual
            );
        }
    });
}

#[test]
fn deadline_expired_exploration_is_partial_with_a_typed_reason() {
    let (scope, limits) = small_scope();
    let config = ExploreConfig {
        budget: Budget::unlimited().with_deadline(Duration::ZERO),
        fault_plan: None,
        ..ExploreConfig::default()
    };
    let result = check_scope_config(&scope, &limits, 1, &config);
    assert!(!result.complete);
    assert_eq!(result.stop_reason, Some(StopReason::DeadlineExceeded));
    assert_eq!(
        result.states_per_depth.iter().sum::<usize>(),
        result.states,
        "partial per-level tally stays consistent with the state count"
    );
    assert_eq!(result.states_per_depth.len(), result.depth_reached + 1);
}

#[test]
fn injected_deadline_truncates_the_tls_scope_identically_at_every_jobs() {
    let (scope, limits) = small_scope();
    // The "deadline" fires exactly when frontier entry 40 is merged —
    // deep enough that level 2's wide frontier is mid-expansion.
    let config = ExploreConfig {
        budget: Budget::unlimited(),
        fault_plan: Some(FaultPlan::new().with_fault(Fault::new(
            FaultSite::Successor,
            FaultKind::DeadlineExpiry,
            40,
        ))),
        ..ExploreConfig::default()
    };
    let runs: Vec<_> = JOBS
        .iter()
        .map(|&jobs| check_scope_config(&scope, &limits, jobs, &config))
        .collect();
    let baseline = &runs[0];
    assert!(!baseline.complete);
    assert_eq!(baseline.stop_reason, Some(StopReason::DeadlineExceeded));
    assert!(
        baseline.states > 1,
        "some states were explored before the stop"
    );
    assert_eq!(
        baseline.states_per_depth.iter().sum::<usize>(),
        baseline.states
    );
    for (jobs, run) in JOBS.iter().zip(&runs).skip(1) {
        assert_eq!(run.states, baseline.states, "states at jobs={jobs}");
        assert_eq!(
            run.stop_reason, baseline.stop_reason,
            "reason at jobs={jobs}"
        );
        assert_eq!(
            run.states_per_depth, baseline.states_per_depth,
            "tally at jobs={jobs}"
        );
        assert_eq!(run.dedup_hits, baseline.dedup_hits, "dedup at jobs={jobs}");
        assert_eq!(run.violations.len(), baseline.violations.len());
    }
}

#[test]
fn two_second_deadline_smoke_is_identical_at_jobs_1_2_4() {
    // The scope finishes far inside two seconds, so the deadline never
    // trips — but the budget machinery is live on every path, and the
    // results must be bit-identical across thread counts.
    let (scope, limits) = small_scope();
    let config = ExploreConfig {
        budget: Budget::unlimited().with_deadline(Duration::from_secs(2)),
        fault_plan: None,
        ..ExploreConfig::default()
    };
    let runs: Vec<_> = JOBS
        .iter()
        .map(|&jobs| check_scope_config(&scope, &limits, jobs, &config))
        .collect();
    let baseline = &runs[0];
    assert!(baseline.complete, "scope should finish inside the deadline");
    assert_eq!(baseline.stop_reason, None);
    assert!(baseline.violation("prop2p-cf-authentic").is_some());
    for (jobs, run) in JOBS.iter().zip(&runs).skip(1) {
        assert_eq!(run.states, baseline.states, "states at jobs={jobs}");
        assert_eq!(run.complete, baseline.complete, "complete at jobs={jobs}");
        assert_eq!(
            run.states_per_depth, baseline.states_per_depth,
            "tally at jobs={jobs}"
        );
        assert_eq!(run.dedup_hits, baseline.dedup_hits, "dedup at jobs={jobs}");
        for (v, bv) in run.violations.iter().zip(&baseline.violations) {
            assert_eq!(v.property, bv.property, "verdicts at jobs={jobs}");
            assert_eq!(v.trace, bv.trace, "traces at jobs={jobs}");
        }
    }
}
