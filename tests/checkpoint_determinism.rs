//! Checkpoint/resume end-to-end: the headline guarantee of the
//! crash-safe persistence layer on the real TLS models.
//!
//! Pins the PR's acceptance criterion at every `jobs` value: a run
//! interrupted mid-flight (by a deterministic injected fault) and resumed
//! from its snapshot produces the *same result* as a straight-through
//! run —
//!
//! 1. for the explorer: identical state counts, per-level tallies, dedup
//!    hits, verdicts, and witness traces of the §5 scope check;
//! 2. for the prover: an identical `inv1` proof report (outcomes,
//!    metrics, rewrite statistics per obligation), with the obligations
//!    the interrupted run already proved spliced in from the ledger
//!    rather than re-run.

use equitls::mc::prelude::*;
use equitls::obs::sink::{Obs, RecordingSink};
use equitls::obs::summary::MetricsSummary;
use equitls::tls::concrete::{Scope, State};
use equitls::tls::verify::{self, VerifyOptions};
use equitls::tls::TlsModel;
use std::path::PathBuf;
use std::sync::Arc;

const JOBS: [usize; 3] = [1, 2, 4];

fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("join")
}

/// A fresh snapshot path under the system temp dir (removed by the test).
fn tmp_snapshot(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("equitls_ckpt_{}_{name}.snap", std::process::id()))
}

/// The §5 counterexample scope bounded to two messages (as in the
/// robustness suite): wide frontiers, sub-second runtime.
fn small_scope() -> (Scope, Limits) {
    let mut scope = Scope::counterexample();
    scope.max_messages = 2;
    let limits = Limits {
        max_states: 100_000,
        max_depth: 3,
    };
    (scope, limits)
}

fn assert_same_exploration(resumed: &Exploration<State>, straight: &Exploration<State>, ctx: &str) {
    assert_eq!(resumed.states, straight.states, "states {ctx}");
    assert_eq!(resumed.depth_reached, straight.depth_reached, "depth {ctx}");
    assert_eq!(resumed.complete, straight.complete, "complete {ctx}");
    assert_eq!(
        resumed.stop_reason, straight.stop_reason,
        "stop reason {ctx}"
    );
    assert_eq!(
        resumed.states_per_depth, straight.states_per_depth,
        "per-level tally {ctx}"
    );
    assert_eq!(resumed.dedup_hits, straight.dedup_hits, "dedup {ctx}");
    assert_eq!(
        resumed.violations.len(),
        straight.violations.len(),
        "violation count {ctx}"
    );
    for (r, s) in resumed.violations.iter().zip(&straight.violations) {
        assert_eq!(r.property, s.property, "violated property {ctx}");
        assert_eq!(r.depth, s.depth, "violation depth {ctx}");
        assert_eq!(r.trace, s.trace, "witness trace {ctx}");
    }
}

#[test]
fn interrupted_then_resumed_scope_check_is_identical_at_jobs_1_2_4() {
    for jobs in JOBS {
        let (scope, limits) = small_scope();
        let straight = check_scope_jobs(&scope, &limits, jobs);
        assert!(straight.complete, "scope finishes uninterrupted");

        // Interrupt: the injected "deadline" fires when frontier entry 40
        // is merged — deep enough that level 2 is mid-expansion, so the
        // snapshot on disk is the level-1 barrier, not the final state.
        let path = tmp_snapshot(&format!("scope_j{jobs}"));
        let _ = std::fs::remove_file(&path);
        let interrupt = ExploreConfig {
            budget: Budget::unlimited(),
            fault_plan: Some(FaultPlan::new().with_fault(Fault::new(
                FaultSite::Successor,
                FaultKind::DeadlineExpiry,
                40,
            ))),
            checkpoint_path: Some(path.clone()),
            checkpoint_every_secs: 0,
            ..ExploreConfig::default()
        };
        let interrupted = check_scope_config(&scope, &limits, jobs, &interrupt);
        assert!(!interrupted.complete, "fault interrupts the search");
        assert_eq!(interrupted.stop_reason, Some(StopReason::DeadlineExceeded));
        assert!(path.exists(), "barrier snapshot was written");

        // Resume without the fault: picks up at the checkpointed barrier
        // and must land exactly where the straight-through run did —
        // with profiling enabled, which must not perturb anything.
        let resume = ExploreConfig {
            checkpoint_path: Some(path.clone()),
            ..ExploreConfig::default()
        };
        let recorder = Arc::new(RecordingSink::new());
        let obs = Obs::new(recorder.clone());
        let resumed =
            check_scope_resume_obs(&scope, &limits, jobs, &resume, &obs).expect("snapshot resumes");
        assert_same_exploration(&resumed, &straight, &format!("at jobs={jobs}"));
        assert!(
            recorder
                .events()
                .iter()
                .any(|e| e.name().starts_with("mc.succ_us:")),
            "profiled resume records per-level timing at jobs={jobs}"
        );
        let _ = std::fs::remove_file(&path);
    }
}

fn assert_same_report(
    resumed: &equitls::core::prelude::ProofReport,
    straight: &equitls::core::prelude::ProofReport,
    ctx: &str,
) {
    assert_eq!(resumed.invariant, straight.invariant, "invariant {ctx}");
    assert_eq!(resumed.is_proved(), straight.is_proved(), "verdict {ctx}");
    let pairs = [(&resumed.base, &straight.base)];
    let steps = resumed.steps.iter().zip(&straight.steps);
    for (r, s) in pairs.into_iter().chain(steps) {
        assert_eq!(r.action, s.action, "obligation order {ctx}");
        assert_eq!(r.outcome, s.outcome, "outcome of {} {ctx}", r.action);
        assert_eq!(r.metrics, s.metrics, "metrics of {} {ctx}", r.action);
        assert_eq!(
            r.rewrite_stats, s.rewrite_stats,
            "rewrite stats of {} {ctx}",
            r.action
        );
    }
    assert_eq!(
        resumed.steps.len(),
        straight.steps.len(),
        "step count {ctx}"
    );
}

#[test]
fn interrupted_then_resumed_inv1_proof_is_identical_at_jobs_1_2_4() {
    on_big_stack(|| {
        let straight = {
            let mut model = TlsModel::standard().expect("model builds");
            verify::verify_property_opts(
                &mut model,
                "inv1",
                &VerifyOptions::default(),
                &Obs::noop(),
            )
            .expect("straight-through proof runs")
        };
        assert!(straight.is_proved(), "inv1 proves uninterrupted");

        for jobs in JOBS {
            let path = tmp_snapshot(&format!("inv1_j{jobs}"));
            let _ = std::fs::remove_file(&path);

            // Interrupt: the campaign is cancelled the moment the `kexch`
            // obligation starts. Everything that finished before the
            // cancellation is in the ledger as Proved; everything after is
            // recorded open with a `(budget: …)` residual.
            let interrupt = VerifyOptions {
                jobs,
                fault_plan: Some(FaultPlan::new().with_fault(
                    Fault::new(FaultSite::Obligation, FaultKind::Cancel, 0).in_scope("kexch"),
                )),
                checkpoint_path: Some(path.clone()),
                ..VerifyOptions::default()
            };
            let mut model = TlsModel::standard().expect("model builds");
            let interrupted =
                verify::verify_property_opts(&mut model, "inv1", &interrupt, &Obs::noop())
                    .expect("interrupted run still returns a report");
            assert!(
                !interrupted.is_proved(),
                "cancellation leaves obligations open at jobs={jobs}"
            );
            assert!(path.exists(), "obligation ledger was written");

            // Resume: proved obligations come from the ledger, the rest
            // re-run; the report must match the straight-through one even
            // with rule profiling enabled (profiling is pure observation).
            let recorder = Arc::new(RecordingSink::new());
            let obs = Obs::new(recorder.clone());
            let resume = VerifyOptions {
                jobs,
                checkpoint_path: Some(path.clone()),
                resume: true,
                profile_rules: true,
                ..VerifyOptions::default()
            };
            let mut model = TlsModel::standard().expect("model builds");
            let resumed = verify::verify_property_opts(&mut model, "inv1", &resume, &obs)
                .expect("resume runs");
            assert_same_report(&resumed, &straight, &format!("at jobs={jobs}"));

            let summary = MetricsSummary::from_events(&recorder.events());
            assert!(
                summary.counter_total("persist.resume_skipped_obligations") >= 1,
                "at least one proved obligation was spliced from the ledger at jobs={jobs}"
            );
            let _ = std::fs::remove_file(&path);
        }
    });
}
