//! End-to-end observability tests: the event stream a proof emits, the
//! metrics invariants reports must satisfy, and the JSONL trace format.

use equitls::core::prelude::*;
use equitls::obs::event::Event;
use equitls::obs::json;
use equitls::obs::sink::{JsonlSink, Obs, RecordingSink};
use equitls::obs::summary::MetricsSummary;
use equitls::spec::prelude::*;
use std::sync::{Arc, Mutex};

/// A one-bit machine whose flag can only be set (the crate-docs example):
/// one observer, one action, and a tautological invariant provable with
/// no case splits.
fn flag_world() -> (Spec, Ots, InvariantSet) {
    let mut spec = Spec::new().unwrap();
    spec.begin_module("FLAG");
    spec.hidden_sort("Sys").unwrap();
    spec.op("init", &[], "Sys", equitls::kernel::op::OpAttrs::defined())
        .unwrap();
    spec.observer("flag", &["Sys"], "Bool").unwrap();
    spec.action("set", &["Sys"], "Sys").unwrap();
    let alg = spec.alg().clone();
    let init = spec.parse_term("init").unwrap();
    let flag_init = spec.app("flag", &[init]).unwrap();
    let ff = alg.ff(spec.store_mut());
    let tt = alg.tt(spec.store_mut());
    spec.eq("flag-init", flag_init, ff).unwrap();
    let s = spec.var("S", "Sys").unwrap();
    let set_s = spec.app("set", &[s]).unwrap();
    let flag_set = spec.app("flag", &[set_s]).unwrap();
    spec.eq("flag-set", flag_set, tt).unwrap();

    let ots = Ots::from_spec(&mut spec, "Sys", "init").unwrap();
    let sys = spec.sort_id("Sys").unwrap();
    let p = spec.store_mut().declare_var("P", sys).unwrap();
    let pv = spec.store_mut().var(p);
    let flag_p = spec.app("flag", &[pv]).unwrap();
    let not_flag = alg.not(spec.store_mut(), flag_p).unwrap();
    let body = alg.or(spec.store_mut(), flag_p, not_flag).unwrap();
    let inv = Invariant::new(&spec, "taut", p, vec![], body).unwrap();
    let mut set = InvariantSet::new();
    set.push(inv);
    (spec, ots, set)
}

fn prove_flag_with(obs: &Obs) -> ProofReport {
    let (mut spec, ots, set) = flag_world();
    let mut prover = Prover::new(&mut spec, &ots, &set)
        .with_config(ProverConfig {
            profile_rules: true,
            ..ProverConfig::default()
        })
        .with_obs(obs.clone());
    prover.prove_inductive("taut", &Hints::new()).unwrap()
}

#[test]
fn spans_and_counters_fire_in_proof_order() {
    let recorder = Arc::new(RecordingSink::new());
    let obs = Obs::new(recorder.clone());
    let report = prove_flag_with(&obs);
    assert!(report.is_proved());

    let events = recorder.events();
    assert!(!events.is_empty());

    // The stream is a sequence of well-nested obligation spans: init
    // first, then the single action, each with its leaf verdicts and
    // engine counters strictly inside the span.
    let mut open: Vec<String> = Vec::new();
    let mut obligations: Vec<String> = Vec::new();
    for event in &events {
        match event {
            Event::SpanEnter { name } => {
                if let Some(ob) = name.strip_prefix("prover.obligation:") {
                    obligations.push(ob.to_string());
                }
                open.push(name.clone());
            }
            Event::SpanExit { name, .. } => {
                assert_eq!(open.pop().as_deref(), Some(name.as_str()), "well nested");
            }
            Event::Counter { name, .. } | Event::Gauge { name, .. } => {
                if name.starts_with("prover.leaf.")
                    || name.starts_with("rule.")
                    || name.starts_with("rewrite.")
                    || name == "kernel.term_count"
                {
                    assert!(
                        open.iter().any(|s| s.starts_with("prover.obligation:")),
                        "{name} fired outside any obligation span"
                    );
                }
            }
        }
    }
    assert!(open.is_empty(), "all spans closed");
    assert_eq!(
        obligations,
        ["init", "set"],
        "base case first, then the action"
    );

    // The counters agree with the report.
    let summary = MetricsSummary::from_events(&events);
    let totals = report.total_metrics();
    assert_eq!(
        summary.counter_total("prover.leaf.proved") as usize,
        totals.proved
    );
    assert_eq!(
        summary.counter_total("prover.leaf.open") as usize,
        totals.open
    );
    assert_eq!(summary.counter_total("rewrite.rewrites"), totals.rewrites);
    assert!(summary.gauge("kernel.term_count").unwrap_or(0.0) > 0.0);
}

#[test]
fn report_totals_equal_the_sum_of_per_obligation_metrics() {
    let report = prove_flag_with(&Obs::noop());
    let totals = report.total_metrics();

    // Totals are exactly the base case plus every transition obligation.
    let mut summed = report.base.metrics;
    for step in &report.steps {
        summed = summed.merged(&step.metrics);
    }
    assert_eq!(totals, summed);

    // Every passage lands in exactly one verdict bucket, per obligation
    // and in total.
    for step in std::iter::once(&report.base).chain(&report.steps) {
        let m = &step.metrics;
        assert_eq!(
            m.passages,
            m.proved + m.vacuous + m.open,
            "obligation {}",
            step.action
        );
    }
    assert_eq!(
        totals.passages,
        totals.proved + totals.vacuous + totals.open
    );

    // The rewrite totals match too.
    let stats = report.total_rewrite_stats();
    assert_eq!(stats.rewrites, totals.rewrites);
}

#[test]
fn jsonl_trace_round_trips_line_by_line() {
    // A Write adapter sharing its buffer with the test.
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buffer: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = JsonlSink::new(Box::new(Shared(buffer.clone())));
    let obs = Obs::new(Arc::new(sink));
    let report = prove_flag_with(&obs);
    obs.flush();
    assert!(report.is_proved());

    let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "a proof emits several events");
    let mut last_t = 0.0;
    for line in &lines {
        let value =
            json::parse(line).unwrap_or_else(|e| panic!("line is not valid JSON: {e}\n{line}"));
        // Every event carries a type, a name, and a monotone timestamp.
        let ty = value
            .get("type")
            .and_then(|v| v.as_str())
            .expect("type field");
        assert!(
            ["span_enter", "span_exit", "counter", "gauge"].contains(&ty),
            "unknown event type {ty}"
        );
        assert!(value.get("name").and_then(|v| v.as_str()).is_some());
        let t = value
            .get("t_us")
            .and_then(|v| v.as_f64())
            .expect("t_us field");
        assert!(t >= last_t, "timestamps are monotone");
        last_t = t;
        match ty {
            "span_exit" => assert!(value.get("dur_us").is_some()),
            "counter" => assert!(value.get("delta").is_some()),
            "gauge" => assert!(value.get("value").is_some()),
            _ => {}
        }
    }
}
