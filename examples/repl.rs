//! A tiny CafeOBJ-flavoured REPL over the TLS specification.
//!
//! Loads the full symbolic model and accepts:
//!
//! * `red <term> .` — reduce a term to normal form (the CafeOBJ command
//!   the paper's proof scores revolve around);
//! * `mod! NAME { … }` — load an additional module;
//! * `modules` — list loaded modules;
//! * `quit`.
//!
//! ```text
//! $ cargo run --release --example repl
//! EquiTLS> red client(pms(intruder, ca, s)) .
//! intruder
//! ```
//!
//! Non-interactive use: pipe commands on stdin.

use equitls::tls::TlsModel;
use std::io::{BufRead, Write};

fn main() {
    let mut model = TlsModel::standard().expect("model builds");
    // Declare a few arbitrary constants so terms are easy to write.
    for (name, sort) in [
        ("a", "Prin"),
        ("b", "Prin"),
        ("s", "Secret"),
        ("r1", "Rand"),
        ("r2", "Rand"),
        ("i", "Sid"),
        ("c", "Choice"),
        ("l", "ListOfChoices"),
        ("p", "Protocol"),
    ] {
        let sort_id = model.spec.sort_id(sort).expect("sort exists");
        model
            .spec
            .store_mut()
            .arbitrary_constant(name, sort_id)
            .expect("fresh constant");
    }
    println!("EquiTLS REPL — the abstract TLS handshake model is loaded.");
    println!("Commands: red <term> . | mod! NAME {{ … }} | modules | quit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print!("EquiTLS> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        buffer.push_str(&line);
        buffer.push('\n');
        let trimmed = buffer.trim().to_string();
        let complete = trimmed == "quit"
            || trimmed == "modules"
            || (trimmed.starts_with("red ") && trimmed.ends_with('.'))
            || (trimmed.starts_with("mod!") && trimmed.ends_with('}'));
        if !complete {
            if !trimmed.is_empty() {
                print!("     ...> ");
                std::io::stdout().flush().ok();
            }
            continue;
        }
        buffer.clear();
        if trimmed == "quit" {
            break;
        } else if trimmed == "modules" {
            for m in model.spec.modules() {
                println!(
                    "  {} ({} sorts, {} ops, {} equations)",
                    m.name,
                    m.sorts.len(),
                    m.ops.len(),
                    m.equations.len()
                );
            }
        } else if let Some(rest) = trimmed.strip_prefix("red ") {
            let src = rest.trim_end_matches('.').trim();
            match model.spec.parse_term(src) {
                Ok(term) => match model.spec.red(term) {
                    Ok(normal) => {
                        println!("{}", model.spec.store().display(normal));
                    }
                    Err(e) => println!("reduction error: {e}"),
                },
                Err(e) => println!("parse error: {e}"),
            }
        } else if trimmed.starts_with("mod!") {
            match model.spec.load_module(&trimmed) {
                Ok(()) => println!("module loaded."),
                Err(e) => println!("error: {e}"),
            }
        }
        print!("EquiTLS> ");
        std::io::stdout().flush().ok();
    }
    println!();
}
