//! Experiment E1: prove pre-master-secret secrecy (the paper's property 1)
//! and show the proof in the paper's own format.
//!
//! Prints the per-transition proof statistics and a §5.2-style rendered
//! proof passage for the `fakeSfin2` inductive case of `inv2`, whose five
//! sub-cases the paper walks through.
//!
//! ```text
//! cargo run --release --example verify_secrecy
//! ```

use equitls::core::prelude::{render_passage, render_step_table, Decision};
use equitls::tls::{verify, TlsModel};

fn main() {
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(run)
        .expect("spawn");
    child.join().expect("prover thread");
}

fn run() {
    let mut model = TlsModel::standard().expect("model builds");

    println!("== property 1: pre-master secrets cannot be leaked ==\n");
    let report = verify::verify_property(&mut model, "inv1").expect("prover runs");
    print!("{}", render_step_table(&report));
    println!(
        "\nverdict: {}\n",
        if report.is_proved() { "PROVED" } else { "OPEN" }
    );

    println!("== supporting lemma: gleanable ciphertexts have gleanable payloads ==\n");
    let lemma = verify::verify_property(&mut model, "lem-cepms-cpms").expect("prover runs");
    println!(
        "lem-cepms-cpms: {} ({} passages, {:?})\n",
        if lemma.is_proved() { "PROVED" } else { "OPEN" },
        lemma.total_passages(),
        lemma.duration
    );

    println!("== a proof passage in the paper's §5.2 format ==\n");
    // The fifth fakeSfin2 sub-case of inv2: all hash fields coincide, both
    // principals trustable — discharged by strengthening with inv1.
    let passage = render_passage(
        "inv2",
        "fakeSfin2",
        &[
            ("b10".into(), "Prin".into()),
            ("a10".into(), "Prin".into()),
            ("i10".into(), "Sid".into()),
            ("l10".into(), "ListOfChoices".into()),
            ("c10".into(), "Choice".into()),
            ("r10".into(), "Rand".into()),
            ("r20".into(), "Rand".into()),
            ("pms10".into(), "Pms".into()),
        ],
        &[
            Decision::CondTrue {
                cond: "pms10 \\in cpms(nw(p))".into(),
            },
            Decision::Atom {
                atom: "b1 = intruder".into(),
                value: true,
            },
            Decision::Atom {
                atom: "pms10 = pms(a,b,s)".into(),
                value: true,
            },
            Decision::Atom {
                atom: "b = intruder".into(),
                value: false,
            },
            Decision::Atom {
                atom: "a = intruder".into(),
                value: false,
            },
        ],
        "inv1(p,pms(a,b,s))",
    );
    println!("{passage}");
}
