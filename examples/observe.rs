//! Experiment E9: observing a proof — tracing and effort metrics.
//!
//! The paper reports its verification effort in human terms (about a
//! week, §1/§7); the machine-checked analogue is the event stream the
//! prover emits. This example proves the PMS-secrecy property (inv1)
//! twice:
//!
//! 1. with a recording sink, to fold the events into summary tables
//!    (hot rewrite rules, wall-clock per proof obligation);
//! 2. with a JSONL sink, to stream the same events to
//!    `target/observe-trace.jsonl` for offline analysis.
//!
//! ```text
//! cargo run --release --example observe [-- --profile <out.json>]
//! ```
//!
//! `--profile <out.json>` additionally converts the recorded events to a
//! Chrome trace (open in Perfetto or `about://tracing`).

use equitls::obs::sink::{JsonlSink, Obs, RecordingSink};
use equitls::obs::summary::{Align, MetricsSummary, Table};
use equitls::obs::trace::Trace;
use equitls::tls::{verify, TlsModel};
use std::sync::Arc;

fn main() {
    // Deep proof searches recurse heavily; run on a large stack.
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(run)
        .expect("spawn prover thread");
    child.join().expect("prover thread panicked");
}

fn run() {
    let mut args = std::env::args().skip(1);
    let mut profile: Option<std::path::PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--profile needs a file path");
                    std::process::exit(2);
                });
                profile = Some(path.into());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    println!("== proving inv1 (PMS secrecy) with a recording sink ==\n");
    let recorder = Arc::new(RecordingSink::new());
    let obs = Obs::new(recorder.clone());
    let mut model = TlsModel::standard().expect("model builds");
    let report = verify::verify_property_with(&mut model, "inv1", &obs, true).expect("prover runs");
    assert!(report.is_proved());

    let summary = MetricsSummary::from_events(&recorder.events());

    println!("proof effort (the report's own totals):");
    let totals = report.total_metrics();
    println!(
        "  passages {}  splits {}  rewrites {}  max-depth {}  wall-clock {:.2?}",
        totals.passages, totals.splits, totals.rewrites, totals.max_depth, report.duration
    );
    println!(
        "  cache hit rate {:.1}%\n",
        report.total_rewrite_stats().cache_hit_rate() * 100.0
    );

    println!("hottest rewrite rules (by cumulative match+fire time):");
    let mut table = Table::new(
        &["rule", "attempts", "fires"],
        &[Align::Left, Align::Right, Align::Right],
    );
    for (label, _) in summary.counters_with_prefix("rule.time_us:").iter().take(8) {
        table.row(vec![
            label.clone(),
            summary
                .counter_total(&format!("rule.attempts:{label}"))
                .to_string(),
            summary
                .counter_total(&format!("rule.fires:{label}"))
                .to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("slowest proof obligations:");
    let mut spans = Table::new(&["obligation", "time"], &[Align::Left, Align::Right]);
    for (name, agg) in summary.spans_by_total().into_iter().take(8) {
        spans.row(vec![name, format!("{:.2?}", agg.total)]);
    }
    println!("{}", spans.render());

    if let Some(path) = &profile {
        let chrome = Trace::from_events(recorder.timed_events()).chrome_trace();
        match std::fs::write(path, chrome.to_string()) {
            Ok(()) => eprintln!(
                "Chrome trace written to {} (open in Perfetto)",
                path.display()
            ),
            Err(e) => {
                eprintln!("cannot write profile {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    // Second run: stream the same events as JSONL for offline analysis.
    let path = std::path::Path::new("target/observe-trace.jsonl");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let jsonl = JsonlSink::create(path).expect("trace file opens");
    let obs = Obs::new(Arc::new(jsonl));
    let mut model = TlsModel::standard().expect("model builds");
    let report = verify::verify_property_with(&mut model, "inv1", &obs, true).expect("prover runs");
    obs.flush();
    assert!(report.is_proved());
    let lines = std::fs::read_to_string(path)
        .map(|s| s.lines().count())
        .unwrap_or(0);
    println!(
        "== JSONL trace: {lines} events written to {} ==",
        path.display()
    );
}
