//! Experiments E6/E7: the §5.3 counterexamples to properties 2′ and 3′.
//!
//! First the model checker *finds* a violation of ClientFinished
//! authenticity by breadth-first search; then the paper's exact
//! six-message trace is replayed step-by-step through the machine. The
//! anonymity corollary (clients without certificates cannot be
//! identified) is the content of these runs: the server accepts a session
//! it believes is with `a` although `a` never participated.
//!
//! ```text
//! cargo run --release --example find_attack [-- --jobs N]
//! ```
//!
//! `--jobs N` runs the breadth-first search on N worker threads (0 = all
//! cores); the violation trace found is identical for every N.

use equitls::mc::prelude::*;
use equitls::tls::concrete::{props, Scope};

fn parse_jobs() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--jobs needs a thread count (0 = all cores)");
                std::process::exit(2);
            });
        }
    }
    0
}

fn main() {
    let jobs = parse_jobs();
    println!("== searching for a violation of property 2' (ClientFinished authenticity) ==\n");
    let mut scope = Scope::counterexample();
    scope.max_messages = 2;
    let machine = TlsMachine::new(scope.clone());
    let scope_for_monitor = scope.clone();
    let monitor =
        move |s: &equitls::tls::concrete::State| props::prop2p_cf_authentic(s, &scope_for_monitor);
    let limits = Limits {
        max_states: 100_000,
        max_depth: 3,
    };
    let result = explore_jobs(&machine, &[("prop2p", &monitor)], &limits, jobs);
    println!(
        "explored {} states to depth {} in {:?} (complete: {})",
        result.states, result.depth_reached, result.duration, result.complete
    );
    match result.violation("prop2p") {
        Some(v) => {
            println!("VIOLATION found at depth {}:\n{}", v.depth, render_trace(v));
        }
        None => println!("no violation found (unexpected!)"),
    }

    println!("== replaying the paper's six-message counterexample to 2' ==\n");
    match counterexample_2prime() {
        Ok(replay) => {
            let mut prev: Option<&equitls::tls::concrete::State> = None;
            for (i, (label, state)) in replay.trace.iter().enumerate() {
                let msg = state
                    .messages()
                    .find(|m| prev.is_none_or(|p| !p.network.contains(m)))
                    .map(|m| m.to_string())
                    .unwrap_or_default();
                println!("({}) {label:<22} {msg}", i + 1);
                prev = Some(state);
            }
            println!("\n=> violates {}", replay.violated);
            println!(
                "=> server p3 completed the handshake believing the client was p2,\n   \
                 but p2 never sent a message: clients are not authenticated (and\n   \
                 therefore anonymous) in TLS without client certificates."
            );
        }
        Err(e) => println!("replay failed: {e}"),
    }

    println!("\n== replaying the paper's counterexample to 3' (abbreviated handshake) ==\n");
    match counterexample_3prime() {
        Ok(replay) => {
            let mut prev: Option<&equitls::tls::concrete::State> = None;
            for (i, (label, state)) in replay.trace.iter().enumerate() {
                let msg = state
                    .messages()
                    .find(|m| prev.is_none_or(|p| !p.network.contains(m)))
                    .map(|m| m.to_string())
                    .unwrap_or_default();
                println!("({}) {label:<22} {msg}", i + 1);
                prev = Some(state);
            }
            println!("\n=> violates {}", replay.violated);
        }
        Err(e) => println!("replay failed: {e}"),
    }
}
