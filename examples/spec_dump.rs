//! Export the TLS specification as CafeOBJ-style text.
//!
//! Prints every module of the symbolic model (declarations plus equation
//! counts) in the surface DSL — the closest thing to the paper's CafeOBJ
//! source listing. Pipe to a file to get a `.cafe`-style artifact:
//!
//! ```text
//! cargo run --release --example spec_dump > tls.cafe
//! ```

use equitls::spec::prelude::render_spec_module;
use equitls::tls::TlsModel;

fn main() {
    let model = TlsModel::standard().expect("model builds");
    println!("-- EquiTLS: the abstract TLS handshake protocol (Figure 2)");
    println!(
        "-- {} modules, {} operators, {} transitions\n",
        model.spec.modules().len(),
        model.spec.store().signature().op_count(),
        model.ots.actions.len(),
    );
    for module in model.spec.modules() {
        if module.name == "BOOL" {
            continue; // built-in
        }
        if let Some(text) = render_spec_module(&model.spec, &module.name) {
            println!("{text}\n");
        }
    }
    println!("-- properties ({}):", model.invariants.len());
    for (name, params, body) in equitls::tls::symbolic::properties::PROPERTIES {
        println!("--   {name}({}) :", params.join(", "));
        for line in body.lines() {
            println!("--     {}", line.trim());
        }
    }
}
