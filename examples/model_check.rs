//! Experiment E10: bounded exhaustive checking à la Mitchell et al.
//!
//! The paper's related work (§6) used the Murφ model checker with two
//! clients, one server and bounded sessions. This binary runs the same
//! style of analysis over the concrete model: all §5 monitors, increasing
//! network bounds, with a states/depth table — properties 1–5 hold, the
//! refuted 2′/3′ are violated.
//!
//! ```text
//! cargo run --release --example model_check [-- --jobs N] [--deadline-ms N] [--max-mem-mb N]
//!     [--checkpoint <path>] [--checkpoint-every-secs N] [--resume]
//!     [--profile <out.json>] [--heartbeat-every-secs N]
//!     [--spill-dir <dir>] [--max-resident-shards N] [--no-symmetry]
//! ```
//!
//! `--jobs N` explores each BFS level on N worker threads (0 = all
//! cores); results are identical for every N. `--deadline-ms` and
//! `--max-mem-mb` bound the whole run: a tripped budget reports a
//! *partial* but internally consistent tally with a typed stop reason
//! instead of running away — unless `--spill-dir <dir>` gives the
//! visited set a disk tier, in which case cold shards spill there (one
//! `m<bound>` subdirectory per network bound) and the search completes
//! under the same ceiling, bit-identical to an unconstrained run, with
//! the degradation disclosed. `--max-resident-shards N` additionally
//! caps how many shards stay resident after each level barrier.
//! `--no-symmetry` turns off the default scalarset symmetry reduction
//! (same verdicts over the larger raw state space). `--checkpoint
//! <path>` snapshots each bound's BFS at level barriers (one file per
//! network bound, `<path>.m<bound>`); `--resume` picks every bound up
//! from its snapshot — the final tables are identical to an
//! uninterrupted run. `--profile <out.json>` records per-level
//! successor/dedup timing and writes a Chrome trace (open in Perfetto);
//! `--heartbeat-every-secs N` prints a progress line to stderr at level
//! barriers. Neither changes any verdict or count.
//! `--inject-spill-write-fault N` (testing) fails the N-th spill write
//! "disk full": the affected shard stays resident and the run completes
//! with identical results, disclosing `spill-write-failed`.

use equitls::mc::prelude::*;
use equitls::obs::sink::{Obs, RecordingSink};
use equitls::obs::trace::Trace;
use equitls::tls::concrete::Scope;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    jobs: usize,
    deadline_ms: Option<u64>,
    max_mem_mb: Option<u64>,
    checkpoint: Option<std::path::PathBuf>,
    checkpoint_every_secs: u64,
    resume: bool,
    profile: Option<std::path::PathBuf>,
    heartbeat_every_secs: u64,
    spill_dir: Option<std::path::PathBuf>,
    max_resident_shards: usize,
    symmetry: bool,
    inject_spill_write_fault: Option<u64>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        jobs: 0,
        deadline_ms: None,
        max_mem_mb: None,
        checkpoint: None,
        checkpoint_every_secs: 0,
        resume: false,
        profile: None,
        heartbeat_every_secs: 0,
        spill_dir: None,
        max_resident_shards: 0,
        symmetry: true,
        inject_spill_write_fault: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |hint: &str| {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{arg} needs {hint}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--jobs" => parsed.jobs = numeric("a thread count (0 = all cores)") as usize,
            "--deadline-ms" => parsed.deadline_ms = Some(numeric("a duration in milliseconds")),
            "--max-mem-mb" => parsed.max_mem_mb = Some(numeric("a size in mebibytes")),
            "--checkpoint-every-secs" => {
                parsed.checkpoint_every_secs = numeric("a duration in seconds");
            }
            "--heartbeat-every-secs" => {
                parsed.heartbeat_every_secs = numeric("a duration in seconds");
            }
            "--checkpoint" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--checkpoint needs a file path");
                    std::process::exit(2);
                });
                parsed.checkpoint = Some(path.into());
            }
            "--profile" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--profile needs a file path");
                    std::process::exit(2);
                });
                parsed.profile = Some(path.into());
            }
            "--resume" => parsed.resume = true,
            "--spill-dir" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--spill-dir needs a directory path");
                    std::process::exit(2);
                });
                parsed.spill_dir = Some(path.into());
            }
            "--max-resident-shards" => {
                parsed.max_resident_shards = numeric("a shard cap") as usize;
            }
            "--no-symmetry" => parsed.symmetry = false,
            "--inject-spill-write-fault" => {
                parsed.inject_spill_write_fault = Some(numeric("a write-attempt index"));
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if parsed.resume && parsed.checkpoint.is_none() {
        eprintln!("--resume needs --checkpoint <path>");
        std::process::exit(2);
    }
    parsed
}

fn main() {
    let args = parse_args();
    let jobs = args.jobs;
    let mut budget = Budget::unlimited();
    if let Some(ms) = args.deadline_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(mb) = args.max_mem_mb {
        budget = budget.with_max_mem_mb(mb);
    }
    // Signal-drain: SIGINT/SIGTERM cancel the shared budget token; the
    // BFS stops at the next level barrier, the per-bound checkpoints
    // keep their last barrier snapshot, and the process exits 130 so
    // scripts resume with `--resume` instead of reporting a failure.
    equitls::persist::signal::install_term_flag();
    let term_token = budget.cancel_token();
    std::thread::Builder::new()
        .name("term-watcher".into())
        .spawn(move || {
            while !equitls::persist::signal::term_requested() {
                std::thread::sleep(Duration::from_millis(25));
            }
            term_token.cancel();
        })
        .expect("spawn term watcher");
    println!(
        "== bounded exhaustive check (Mitchell-et-al.-style scope, {} worker threads) ==\n",
        resolve_jobs(jobs)
    );
    let recorder = args
        .profile
        .as_ref()
        .map(|_| Arc::new(RecordingSink::new()));
    let obs = match &recorder {
        Some(rec) => Obs::new(rec.clone()),
        None => Obs::noop(),
    };
    for max_messages in [1, 2, 3] {
        let mut scope = Scope::counterexample();
        scope.max_messages = max_messages;
        let limits = Limits {
            max_states: 150_000,
            max_depth: max_messages + 1,
        };
        // One snapshot file per network bound: the bounds are independent
        // searches, so each gets its own resumable checkpoint — and its
        // own spill subdirectory, so shard files never mix across bounds.
        let config = ExploreConfig {
            budget: budget.clone(),
            fault_plan: args.inject_spill_write_fault.map(|n| {
                FaultPlan::new().with_fault(
                    Fault::new(FaultSite::SpillWrite, FaultKind::IoError, n).in_scope("visited"),
                )
            }),
            checkpoint_path: args
                .checkpoint
                .as_ref()
                .map(|p| p.with_extension(format!("m{max_messages}"))),
            checkpoint_every_secs: args.checkpoint_every_secs,
            heartbeat_every_secs: args.heartbeat_every_secs,
            spill_dir: args
                .spill_dir
                .as_ref()
                .map(|d| d.join(format!("m{max_messages}"))),
            max_resident_shards: args.max_resident_shards,
            spill_shards: 0,
        };
        let result = if args.resume {
            match check_scope_resume_obs_sym(&scope, &limits, jobs, &config, &obs, args.symmetry) {
                Ok(result) => result,
                Err(e) => {
                    eprintln!("cannot resume network bound {max_messages}: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            check_scope_config_obs_sym(&scope, &limits, jobs, &config, &obs, args.symmetry)
        };
        println!(
            "network bound {max_messages}: {} states, depth {}, {:?}, complete: {}{}",
            result.states,
            result.depth_reached,
            result.duration,
            result.complete,
            match result.stop_reason {
                Some(reason) => format!(" (stopped: {reason})"),
                None => String::new(),
            }
        );
        print!("  states/depth:");
        for (d, n) in result.states_per_depth.iter().enumerate() {
            print!(" {d}:{n}");
        }
        println!();
        if result.unexpanded > 0 {
            println!(
                "  unexpanded: {} (states enqueued but never expanded)",
                result.unexpanded
            );
        }
        if result.spill_shards > 0 || !result.degradation.is_empty() {
            println!(
                "  spill: {} shards, {} bytes, {} reloads; degradation: [{}]",
                result.spill_shards,
                result.spill_bytes,
                result.spill_reloads,
                result.degradation.join(", ")
            );
        }
        for (name, expected_to_hold) in expected_outcomes() {
            let violated = result.violation(name);
            let status = match (expected_to_hold, violated.is_some()) {
                (true, false) => "holds (as the paper proves)",
                (false, true) => "VIOLATED (as the paper's counterexample shows)",
                (true, true) => "VIOLATED — disagreement with the paper!",
                (false, false) => "no violation in this bound (needs a larger scope)",
            };
            println!("  {name:<24} {status}");
            if let Some(v) = violated {
                if !expected_to_hold {
                    println!("    trace ({} steps):", v.trace.len());
                    for (label, _) in &v.trace {
                        println!("      {label}");
                    }
                }
            }
        }
        println!();
    }
    if let (Some(path), Some(rec)) = (&args.profile, &recorder) {
        let chrome = Trace::from_events(rec.timed_events()).chrome_trace();
        match std::fs::write(path, chrome.to_string()) {
            Ok(()) => eprintln!(
                "Chrome trace written to {} (open in Perfetto)",
                path.display()
            ),
            Err(e) => {
                eprintln!("cannot write profile {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if equitls::persist::signal::term_requested() {
        let checkpointed = args
            .checkpoint
            .as_ref()
            .map(|p| {
                format!(
                    "; checkpoints under {} written, resume with --resume",
                    p.display()
                )
            })
            .unwrap_or_default();
        eprintln!(
            "model_check: {} received, search drained{checkpointed}",
            equitls::persist::signal::term_signal_name().unwrap_or("termination signal"),
        );
        std::process::exit(equitls::persist::signal::TERM_EXIT_CODE);
    }
}
