//! Experiment E10: bounded exhaustive checking à la Mitchell et al.
//!
//! The paper's related work (§6) used the Murφ model checker with two
//! clients, one server and bounded sessions. This binary runs the same
//! style of analysis over the concrete model: all §5 monitors, increasing
//! network bounds, with a states/depth table — properties 1–5 hold, the
//! refuted 2′/3′ are violated.
//!
//! ```text
//! cargo run --release --example model_check [-- --jobs N]
//! ```
//!
//! `--jobs N` explores each BFS level on N worker threads (0 = all
//! cores); results are identical for every N.

use equitls::mc::prelude::*;
use equitls::tls::concrete::Scope;

fn parse_jobs() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--jobs needs a thread count (0 = all cores)");
                std::process::exit(2);
            });
        }
    }
    0
}

fn main() {
    let jobs = parse_jobs();
    println!(
        "== bounded exhaustive check (Mitchell-et-al.-style scope, {} worker threads) ==\n",
        resolve_jobs(jobs)
    );
    for max_messages in [1, 2, 3] {
        let mut scope = Scope::counterexample();
        scope.max_messages = max_messages;
        let limits = Limits {
            max_states: 150_000,
            max_depth: max_messages + 1,
        };
        let result = check_scope_jobs(&scope, &limits, jobs);
        println!(
            "network bound {max_messages}: {} states, depth {}, {:?}, complete: {}",
            result.states, result.depth_reached, result.duration, result.complete
        );
        print!("  states/depth:");
        for (d, n) in result.states_per_depth.iter().enumerate() {
            print!(" {d}:{n}");
        }
        println!();
        for (name, expected_to_hold) in expected_outcomes() {
            let violated = result.violation(name);
            let status = match (expected_to_hold, violated.is_some()) {
                (true, false) => "holds (as the paper proves)",
                (false, true) => "VIOLATED (as the paper's counterexample shows)",
                (true, true) => "VIOLATED — disagreement with the paper!",
                (false, false) => "no violation in this bound (needs a larger scope)",
            };
            println!("  {name:<24} {status}");
            if let Some(v) = violated {
                if !expected_to_hold {
                    println!("    trace ({} steps):", v.trace.len());
                    for (label, _) in &v.trace {
                        println!("      {label}");
                    }
                }
            }
        }
        println!();
    }
}
