//! Experiments E9 and E8: the full verification campaign on the standard
//! protocol and on the §5.3 variant (ClientFinished2 first).
//!
//! The paper reports that verifying its 18 invariants took "about one
//! week" of proof-score writing; this binary regenerates the
//! machine-checked analogue: per-invariant passages, splits, rewrite
//! steps, and wall-clock time.
//!
//! ```text
//! cargo run --release --example proof_report            # standard
//! cargo run --release --example proof_report -- --variant
//! ```

use equitls::core::prelude::render_report_table;
use equitls::tls::{verify, TlsModel};

fn main() {
    let child = std::thread::Builder::new()
        .stack_size(512 * 1024 * 1024)
        .spawn(run)
        .expect("spawn");
    child.join().expect("prover thread");
}

fn run() {
    let variant = std::env::args().any(|a| a == "--variant");
    let mut model = if variant {
        println!("== §5.3 variant: ClientFinished2 precedes ServerFinished2 ==\n");
        TlsModel::variant().expect("variant model builds")
    } else {
        println!("== Figure 2 protocol: ServerFinished2 precedes ClientFinished2 ==\n");
        TlsModel::standard().expect("standard model builds")
    };
    let reports = verify::verify_all(&mut model).expect("campaign runs");
    println!("{}", render_report_table(&reports));
    let proved = reports.iter().filter(|r| r.is_proved()).count();
    println!("{proved}/{} properties proved", reports.len());
    let passages: usize = reports.iter().map(|r| r.total_passages()).sum();
    let splits: usize = reports.iter().map(|r| r.total_splits()).sum();
    println!("{passages} proof passages, {splits} case splits in total");
    println!(
        "(the paper: \"it took about one week to verify 18 invariants\"; \
         the mechanized campaign replays in seconds)"
    );
}
