//! Quickstart: drive the Figure 2 handshake end-to-end (experiment E11).
//!
//! Runs the full negotiation (six messages) followed by the abbreviated
//! resumption (four messages) through the concrete machine, printing each
//! message in the paper's notation, then proves the headline property
//! (pre-master-secret secrecy) on the symbolic model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use equitls::mc::prelude::{Model, TlsMachine};
use equitls::tls::concrete::{Scope, State};
use equitls::tls::{verify, TlsModel};

fn drive(machine: &TlsMachine, state: &State, prefixes: &[&str]) -> Option<State> {
    let mut current = state.clone();
    for prefix in prefixes {
        let (label, next) = machine
            .successors(&current)
            .into_iter()
            .find(|(l, _)| l.starts_with(prefix))?;
        let new_msg = next
            .messages()
            .find(|m| !current.network.contains(m))
            .map(|m| m.to_string())
            .unwrap_or_else(|| "(session update)".to_string());
        println!("  {label:<22} {new_msg}");
        current = next;
    }
    Some(current)
}

fn main() {
    println!("== EquiTLS quickstart ==\n");
    println!("Full handshake (Figure 2, messages 1-6):");
    let mut scope = Scope::counterexample();
    scope.rands = 4; // enough fresh randoms for the resumption too
    let machine = TlsMachine::new(scope);
    let state = drive(
        &machine,
        &State::new(),
        &[
            "chello(p2,p3",
            "shello(p3,p2",
            "cert(p3,p2",
            "kexch(p2,p3",
            "cfin(p2,p3",
            "sfin(p3,p2",
            "compl(p2,p3",
        ],
    )
    .expect("the honest run is enabled");
    println!("\n  client p2 established a session with server p3\n");

    println!("Abbreviated handshake (resumption, messages 7-10):");
    // The server records the session too (compl2 bookkeeping) so it can
    // resume; in the full protocol this happens on ClientFinished2 of the
    // previous session, so mirror the client's record.
    let mut state = state;
    let client_session = state
        .session(
            equitls::tls::concrete::Prin(2),
            equitls::tls::concrete::Prin(3),
            equitls::tls::concrete::Sid(0),
        )
        .expect("client session exists");
    state.sessions.insert(
        (
            equitls::tls::concrete::Prin(3),
            equitls::tls::concrete::Prin(2),
            equitls::tls::concrete::Sid(0),
        ),
        client_session,
    );
    drive(
        &machine,
        &state,
        &[
            "chello2(p2,p3",
            "shello2(p3,p2",
            "sfin2(p3,p2",
            "cfin2(p2,p3",
        ],
    )
    .expect("the resumption is enabled");

    println!("\nProving the headline property on the symbolic model:");
    let mut model = TlsModel::standard().expect("model builds");
    let report = verify::verify_property(&mut model, "inv1").expect("prover runs");
    println!(
        "  inv1 (pre-master secrets cannot be leaked): {}",
        if report.is_proved() { "PROVED" } else { "OPEN" }
    );
    println!(
        "  ({} proof passages, {} case splits, {:?})",
        report.total_passages(),
        report.total_splits(),
        report.duration
    );
}
