//! # EquiTLS
//!
//! A from-scratch Rust reproduction of **“Equational Approach to Formal
//! Analysis of TLS”** (Kazuhiro Ogata & Kokichi Futatsugi, ICDCS 2005).
//!
//! The paper analyzes an abstract model of the TLS handshake protocol with
//! the **OTS/CafeOBJ method**: the protocol (together with a Dolev–Yao
//! intruder) is modeled as an *observational transition system* written in
//! equations, and invariants are verified by *proof scores* — case
//! analyses whose leaves are reductions of Boolean terms to `true`.
//!
//! EquiTLS rebuilds the entire stack:
//!
//! | crate | role |
//! |-------|------|
//! | [`kernel`] | order-sorted terms, signatures, hash-consing, matching |
//! | [`rewrite`] | the rewriting engine + Boolean rings (complete propositional reasoning) + free-constructor equality |
//! | [`spec`] | CafeOBJ-style modules, proof passages, and a surface DSL |
//! | [`core`] | the OTS framework and the mechanized proof-score prover |
//! | [`tls`] | the abstract TLS handshake model (symbolic and concrete) and the 18 verified properties |
//! | [`mc`] | a Murφ-style bounded model checker reproducing the §5.3 counterexamples |
//! | [`lint`] | static analysis of rewrite systems: termination (LPO), local confluence (critical pairs), sufficient completeness |
//! | [`obs`] | zero-dependency tracing/metrics: event sinks, JSONL traces, summary tables |
//! | [`persist`] | crash-safe checkpoint snapshots: versioned, CRC-checked, atomically written |
//! | [`serve`] | a supervised, always-warm verification daemon: bounded admission, graceful degradation, crash-resumable job queues |
//!
//! # Quick start
//!
//! Prove the paper's first property — pre-master secrets cannot be leaked:
//!
//! ```
//! use equitls::tls::{verify, TlsModel};
//!
//! let mut model = TlsModel::standard()?;
//! let report = verify::verify_property(&mut model, "inv1")?;
//! assert!(report.is_proved());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Reproduce the paper's counterexample to ClientFinished authenticity
//! (property 2′, §5.3):
//!
//! ```
//! use equitls::mc::prelude::counterexample_2prime;
//!
//! let replay = counterexample_2prime().expect("the paper's trace replays");
//! assert_eq!(replay.trace.len(), 6);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-experiment reproduction notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use equitls_core as core;
pub use equitls_kernel as kernel;
pub use equitls_lint as lint;
pub use equitls_mc as mc;
pub use equitls_obs as obs;
pub use equitls_persist as persist;
pub use equitls_rewrite as rewrite;
pub use equitls_serve as serve;
pub use equitls_spec as spec;
pub use equitls_tls as tls;
