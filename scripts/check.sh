#!/usr/bin/env bash
# The full local gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== tls-lint =="
cargo run -q --release -p equitls-tls --bin tls-lint

echo "== parallel determinism (2 jobs) =="
cargo test -q --release --test parallel_determinism

echo "== robustness: fault injection + 2s-deadline smoke (jobs 1/2/4) =="
cargo test -q --release --test robustness
cargo test -q --release -p equitls-tls --test cli_budget

echo "== checkpoint/resume: determinism (jobs 1/2/4) + snapshot corruption =="
cargo test -q --release --test checkpoint_determinism
cargo test -q --release -p equitls-tls --test cli_checkpoint

echo "== checkpoint/resume: kill-and-resume smoke =="
# Interrupt a campaign with a short deadline (ledger stays on disk),
# resume it to completion, and diff the report against a straight-through
# run — identical up to wall-clock columns (field 5 of every table row).
CKPT="$(mktemp -u /tmp/equitls_check_XXXXXX.snap)"
STRIP_TIMES='{ $5 = ""; print }'
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-cepms-cpms inv1 --deadline-ms 60 --checkpoint "$CKPT" > /dev/null || true
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-cepms-cpms inv1 --resume --checkpoint "$CKPT" \
    | awk "$STRIP_TIMES" > /tmp/equitls_check_resumed.txt
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-cepms-cpms inv1 \
    | awk "$STRIP_TIMES" > /tmp/equitls_check_straight.txt
diff /tmp/equitls_check_resumed.txt /tmp/equitls_check_straight.txt
rm -f "$CKPT" /tmp/equitls_check_resumed.txt /tmp/equitls_check_straight.txt

echo "== trace smoke: profiled campaign -> summarize/export/diff =="
# A profiled proof writes a JSONL trace and a Chrome trace; the offline
# tool must summarize it, convert it, and find no regression against
# itself.
TRACE="$(mktemp -u /tmp/equitls_check_XXXXXX.jsonl)"
PROFILE="$(mktemp -u /tmp/equitls_check_XXXXXX.chrome.json)"
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-src-honest --trace "$TRACE" --profile "$PROFILE" > /dev/null
test -s "$TRACE" && test -s "$PROFILE"
cargo run -q --release -p equitls-tls --bin tls-trace -- \
    summarize "$TRACE" > /dev/null
cargo run -q --release -p equitls-tls --bin tls-trace -- \
    export "$TRACE" --chrome "${PROFILE}.2" > /dev/null
cargo run -q --release -p equitls-tls --bin tls-trace -- \
    diff "$TRACE" "$TRACE" > /dev/null
rm -f "$TRACE" "$PROFILE" "${PROFILE}.2"

echo "== lint cache smoke: cold -> warm -> corrupted =="
# A cold run writes the cache; a warm run over the unchanged spec reuses
# every pass (byte-identical stdout) and still exits 0; a byte-flipped
# cache is rejected with a typed error on stderr and the run completes
# cold, without a panic.
LINTCACHE="$(mktemp -u /tmp/equitls_check_XXXXXX.lint.snap)"
cargo run -q --release -p equitls-tls --bin tls-lint -- \
    --cache "$LINTCACHE" > /tmp/equitls_check_lint_cold.txt 2> /tmp/equitls_check_lint_cold.err
grep -q "0 passes reused" /tmp/equitls_check_lint_cold.err
cargo run -q --release -p equitls-tls --bin tls-lint -- \
    --cache "$LINTCACHE" > /tmp/equitls_check_lint_warm.txt 2> /tmp/equitls_check_lint_warm.err
grep -q "passes reused, 0 analyzed" /tmp/equitls_check_lint_warm.err
cmp /tmp/equitls_check_lint_cold.txt /tmp/equitls_check_lint_warm.txt
python3 - "$LINTCACHE" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[-1] ^= 1
open(path, 'wb').write(data)
EOF
cargo run -q --release -p equitls-tls --bin tls-lint -- \
    --cache "$LINTCACHE" > /tmp/equitls_check_lint_corrupt.txt 2> /tmp/equitls_check_lint_corrupt.err
grep -q "is unusable" /tmp/equitls_check_lint_corrupt.err
grep -q "0 passes reused" /tmp/equitls_check_lint_corrupt.err
cmp /tmp/equitls_check_lint_cold.txt /tmp/equitls_check_lint_corrupt.txt
rm -f "$LINTCACHE" /tmp/equitls_check_lint_{cold,warm,corrupt}.{txt,err}

echo "== SARIF + dependency graph well-formedness =="
SARIF="$(mktemp -u /tmp/equitls_check_XXXXXX.sarif)"
DOT="$(mktemp -u /tmp/equitls_check_XXXXXX.dot)"
cargo run -q --release -p equitls-tls --bin tls-lint -- \
    --sarif "$SARIF" --graph "$DOT" > /dev/null
python3 - "$SARIF" <<'EOF'
import json, sys
log = json.load(open(sys.argv[1]))
assert log["version"] == "2.1.0", log["version"]
assert len(log["runs"]) >= 1
run = log["runs"][0]
rules = run["tool"]["driver"]["rules"]
assert any(r["id"] == "unbound-variable" for r in rules)
assert any(r["id"] == "dead-rule" for r in rules)
results = run["results"]
assert results, "the fixture targets must contribute findings"
assert all("ruleId" in r for r in results)
assert any(
    "region" in loc["physicalLocation"]
    for r in results
    for loc in r.get("locations", [])
), "findings about parsed equations must carry source regions"
EOF
grep -q "^digraph" "$DOT"
rm -f "$SARIF" "$DOT"

echo "== bench smoke =="
BENCH_SMOKE=1 cargo bench -q -p equitls-bench --bench parallel

echo "== rewriting bench smoke: indexed must not lose to linear scan =="
# A fixed tiny workload through all three engine legs. Wall times jitter,
# so the gate is deliberately loose (indexed within 1.5x of linear on the
# fan-out normalize loop); the structural assertions are exact — the
# index must actually prune, and the shared cache must hit on every
# clone after the first.
REWRITING_JSON="$(mktemp -u /tmp/equitls_check_XXXXXX.rewriting.json)"
BENCH_SMOKE=1 BENCH_OUT="$REWRITING_JSON" \
    cargo bench -q -p equitls-bench --bench rewriting
python3 - "$REWRITING_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
legs = {leg["leg"]: leg for leg in doc["fanout"]["legs"]}
linear, indexed, shared = legs["linear"], legs["indexed"], legs["indexed+shared"]
assert indexed["normalize_ms"] <= 1.5 * linear["normalize_ms"], (
    f"indexed fan-out {indexed['normalize_ms']:.3f} ms vs "
    f"linear {linear['normalize_ms']:.3f} ms"
)
assert indexed["rewrites"] == linear["rewrites"], "indexed must be bit-identical"
assert indexed["index_pruned"] > 0, "the index must prune candidates"
clones = doc["fanout"]["clones"]
assert shared["shared_hits"] == clones - 1, (
    f"every clone after the first must hit: {shared['shared_hits']} of {clones - 1}"
)
EOF
rm -f "$REWRITING_JSON"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== OK =="
