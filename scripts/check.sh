#!/usr/bin/env bash
# The full local gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== tls-lint =="
cargo run -q --release -p equitls-tls --bin tls-lint

echo "== parallel determinism (2 jobs) =="
cargo test -q --release --test parallel_determinism

echo "== robustness: fault injection + 2s-deadline smoke (jobs 1/2/4) =="
cargo test -q --release --test robustness
cargo test -q --release -p equitls-tls --test cli_budget

echo "== checkpoint/resume: determinism (jobs 1/2/4) + snapshot corruption =="
cargo test -q --release --test checkpoint_determinism
cargo test -q --release -p equitls-tls --test cli_checkpoint

echo "== checkpoint/resume: kill-and-resume smoke =="
# Interrupt a campaign with a short deadline (ledger stays on disk),
# resume it to completion, and diff the report against a straight-through
# run — identical up to wall-clock columns (field 5 of every table row).
CKPT="$(mktemp -u /tmp/equitls_check_XXXXXX.snap)"
STRIP_TIMES='{ $5 = ""; print }'
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-cepms-cpms inv1 --deadline-ms 60 --checkpoint "$CKPT" > /dev/null || true
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-cepms-cpms inv1 --resume --checkpoint "$CKPT" \
    | awk "$STRIP_TIMES" > /tmp/equitls_check_resumed.txt
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-cepms-cpms inv1 \
    | awk "$STRIP_TIMES" > /tmp/equitls_check_straight.txt
diff /tmp/equitls_check_resumed.txt /tmp/equitls_check_straight.txt
rm -f "$CKPT" /tmp/equitls_check_resumed.txt /tmp/equitls_check_straight.txt

echo "== memory resilience: spill smoke (ceiling completes by spilling, bit-identical) =="
# A 16 MiB heap ceiling truncates the bound-3 scope check when the
# visited set must stay resident; the same ceiling with a spill
# directory completes by pushing cold shards to disk — bit-identical to
# an unconstrained run (wall-clock stripped), with the degradation
# disclosed, a resumable manifest checkpoint, and typed failure on a
# corrupted shard file.
SPILL_DIR="$(mktemp -d /tmp/equitls_check_spill_XXXXXX)"
SPILL_CKPT="$(mktemp -u /tmp/equitls_check_XXXXXX.spill.snap)"
MC="cargo run -q --release --example model_check --"
STRIP_DURATION='s/depth ([0-9]+), [^,]*, complete/depth \1, T, complete/'
$MC --jobs 2 \
    | sed -E "$STRIP_DURATION" > /tmp/equitls_check_spill_base.txt
# Resident-only under the ceiling: typed truncation, disclosed.
$MC --jobs 2 --max-mem-mb 16 > /tmp/equitls_check_spill_trunc.txt
grep -q "stopped: memory ceiling exceeded" /tmp/equitls_check_spill_trunc.txt
grep -q "unexpanded:" /tmp/equitls_check_spill_trunc.txt
# Same ceiling + spill tier: completes, spills, matches the baseline.
$MC --jobs 2 --max-mem-mb 16 --spill-dir "$SPILL_DIR" --checkpoint "$SPILL_CKPT" \
    > /tmp/equitls_check_spill_full.txt
test "$(grep -c 'complete: true' /tmp/equitls_check_spill_full.txt)" -eq 3
grep -q "visited-spilled" /tmp/equitls_check_spill_full.txt
test "$(find "$SPILL_DIR" -name '*.vshard' | wc -l)" -ge 1
sed -E "$STRIP_DURATION" /tmp/equitls_check_spill_full.txt \
    | grep -v '^  spill:' \
    | diff - /tmp/equitls_check_spill_base.txt
# A byte-flipped shard fails the resume with a typed error and exit 2 …
VSHARD="$(find "$SPILL_DIR" -name '*.vshard' | sort | tail -1)"
python3 - "$VSHARD" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[-1] ^= 1
open(path, 'wb').write(data)
EOF
if $MC --jobs 2 --max-mem-mb 16 --spill-dir "$SPILL_DIR" \
    --checkpoint "$SPILL_CKPT" --resume \
    > /dev/null 2> /tmp/equitls_check_spill_corrupt.err; then
    echo "resume over a corrupted shard must fail" >&2
    exit 1
fi
grep -q "cannot resume" /tmp/equitls_check_spill_corrupt.err
# … and the restored bytes resume to the identical final tables.
python3 - "$VSHARD" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[-1] ^= 1
open(path, 'wb').write(data)
EOF
$MC --jobs 2 --max-mem-mb 16 --spill-dir "$SPILL_DIR" \
    --checkpoint "$SPILL_CKPT" --resume \
    | sed -E "$STRIP_DURATION" | grep -v '^  spill:' \
    | diff - /tmp/equitls_check_spill_base.txt
# Disk-full injection: the first shard write fails, the shard stays
# resident, the run still completes identically — degradation disclosed.
rm -rf "$SPILL_DIR"; mkdir -p "$SPILL_DIR"
$MC --jobs 2 --max-mem-mb 16 --spill-dir "$SPILL_DIR" --inject-spill-write-fault 0 \
    > /tmp/equitls_check_spill_fault.txt
test "$(grep -c 'complete: true' /tmp/equitls_check_spill_fault.txt)" -eq 3
grep -q "spill-write-failed" /tmp/equitls_check_spill_fault.txt
sed -E "$STRIP_DURATION" /tmp/equitls_check_spill_fault.txt \
    | grep -v '^  spill:' \
    | diff - /tmp/equitls_check_spill_base.txt
rm -rf "$SPILL_DIR" "$SPILL_CKPT".m* /tmp/equitls_check_spill_*.txt /tmp/equitls_check_spill_corrupt.err

echo "== spill determinism suite (jobs 1/2/4) =="
cargo test -q --release --test spill_determinism

echo "== trace smoke: profiled campaign -> summarize/export/diff =="
# A profiled proof writes a JSONL trace and a Chrome trace; the offline
# tool must summarize it, convert it, and find no regression against
# itself.
TRACE="$(mktemp -u /tmp/equitls_check_XXXXXX.jsonl)"
PROFILE="$(mktemp -u /tmp/equitls_check_XXXXXX.chrome.json)"
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-src-honest --trace "$TRACE" --profile "$PROFILE" > /dev/null
test -s "$TRACE" && test -s "$PROFILE"
cargo run -q --release -p equitls-tls --bin tls-trace -- \
    summarize "$TRACE" > /dev/null
cargo run -q --release -p equitls-tls --bin tls-trace -- \
    export "$TRACE" --chrome "${PROFILE}.2" > /dev/null
cargo run -q --release -p equitls-tls --bin tls-trace -- \
    diff "$TRACE" "$TRACE" > /dev/null
rm -f "$TRACE" "$PROFILE" "${PROFILE}.2"

echo "== lint cache smoke: cold -> warm -> corrupted =="
# A cold run writes the cache; a warm run over the unchanged spec reuses
# every pass (byte-identical stdout) and still exits 0; a byte-flipped
# cache is rejected with a typed error on stderr and the run completes
# cold, without a panic.
LINTCACHE="$(mktemp -u /tmp/equitls_check_XXXXXX.lint.snap)"
cargo run -q --release -p equitls-tls --bin tls-lint -- \
    --cache "$LINTCACHE" > /tmp/equitls_check_lint_cold.txt 2> /tmp/equitls_check_lint_cold.err
grep -q "0 passes reused" /tmp/equitls_check_lint_cold.err
cargo run -q --release -p equitls-tls --bin tls-lint -- \
    --cache "$LINTCACHE" > /tmp/equitls_check_lint_warm.txt 2> /tmp/equitls_check_lint_warm.err
grep -q "passes reused, 0 analyzed" /tmp/equitls_check_lint_warm.err
cmp /tmp/equitls_check_lint_cold.txt /tmp/equitls_check_lint_warm.txt
python3 - "$LINTCACHE" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[-1] ^= 1
open(path, 'wb').write(data)
EOF
cargo run -q --release -p equitls-tls --bin tls-lint -- \
    --cache "$LINTCACHE" > /tmp/equitls_check_lint_corrupt.txt 2> /tmp/equitls_check_lint_corrupt.err
grep -q "is unusable" /tmp/equitls_check_lint_corrupt.err
grep -q "0 passes reused" /tmp/equitls_check_lint_corrupt.err
cmp /tmp/equitls_check_lint_cold.txt /tmp/equitls_check_lint_corrupt.txt
rm -f "$LINTCACHE" /tmp/equitls_check_lint_{cold,warm,corrupt}.{txt,err}

echo "== SARIF + dependency graph well-formedness =="
SARIF="$(mktemp -u /tmp/equitls_check_XXXXXX.sarif)"
DOT="$(mktemp -u /tmp/equitls_check_XXXXXX.dot)"
cargo run -q --release -p equitls-tls --bin tls-lint -- \
    --sarif "$SARIF" --graph "$DOT" > /dev/null
python3 - "$SARIF" <<'EOF'
import json, sys
log = json.load(open(sys.argv[1]))
assert log["version"] == "2.1.0", log["version"]
assert len(log["runs"]) >= 1
run = log["runs"][0]
rules = run["tool"]["driver"]["rules"]
assert any(r["id"] == "unbound-variable" for r in rules)
assert any(r["id"] == "dead-rule" for r in rules)
results = run["results"]
assert results, "the fixture targets must contribute findings"
assert all("ruleId" in r for r in results)
assert any(
    "region" in loc["physicalLocation"]
    for r in results
    for loc in r.get("locations", [])
), "findings about parsed equations must carry source regions"
EOF
grep -q "^digraph" "$DOT"
rm -f "$SARIF" "$DOT"

echo "== serve: concurrency determinism (jobs 1/2/4) + signal drain =="
cargo test -q --release --test serve_determinism
cargo test -q --release -p equitls-serve
cargo test -q --release -p equitls-tls --test cli_signal

echo "== serve smoke: daemon, kill -9 mid-campaign, resume, byte-compare =="
# Start a daemon with a journaled queue, submit a campaign of async
# (--ack) jobs, kill -9 the daemon mid-campaign, restart it with
# --resume, drain, and byte-compare the replayed results file against a
# straight-through run of the same submissions.
SERVE_SOCK="$(mktemp -u /tmp/equitls_check_XXXXXX.sock)"
SERVE_JOURNAL="$(mktemp -u /tmp/equitls_check_XXXXXX.queue.snap)"
SERVE_RESUMED=/tmp/equitls_check_serve_resumed.jsonl
SERVE_STRAIGHT=/tmp/equitls_check_serve_straight.jsonl
SERVE="./target/release/equitls-serve"
CLIENT="./target/release/tls-client"
wait_for_socket() {
    for _ in $(seq 1 100); do
        [ -S "$1" ] && return 0
        sleep 0.1
    done
    echo "daemon never opened $1" >&2
    return 1
}
submit_campaign() {
    "$CLIENT" --socket "$SERVE_SOCK" --id j1 --ack prove inv1 > /dev/null
    "$CLIENT" --socket "$SERVE_SOCK" --id j2 --ack prove lem-src-honest > /dev/null
    "$CLIENT" --socket "$SERVE_SOCK" --id j3 --ack check --max-depth 2 > /dev/null
    "$CLIENT" --socket "$SERVE_SOCK" --id j4 --ack lint --target standard > /dev/null
    "$CLIENT" --socket "$SERVE_SOCK" --id j5 --ack prove inv2 > /dev/null
}
# Leg 1: admit the campaign, then kill -9 before it finishes.
"$SERVE" --socket "$SERVE_SOCK" --workers 1 --journal "$SERVE_JOURNAL" &
SERVE_PID=$!
wait_for_socket "$SERVE_SOCK"
submit_campaign
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
# kill -9 leaves the socket file behind; remove it so wait_for_socket
# observes the restarted daemon's bind, not the stale file.
rm -f "$SERVE_SOCK"
# Leg 2: restart from the journal, drain, collect the replayed results.
"$SERVE" --socket "$SERVE_SOCK" --workers 1 --journal "$SERVE_JOURNAL" \
    --resume --results "$SERVE_RESUMED" &
SERVE_PID=$!
wait_for_socket "$SERVE_SOCK"
"$CLIENT" --socket "$SERVE_SOCK" drain > /dev/null
wait "$SERVE_PID"
# Leg 3: the same campaign straight through, no kill.
rm -f "$SERVE_JOURNAL"
"$SERVE" --socket "$SERVE_SOCK" --workers 1 --journal "$SERVE_JOURNAL" \
    --results "$SERVE_STRAIGHT" &
SERVE_PID=$!
wait_for_socket "$SERVE_SOCK"
submit_campaign
"$CLIENT" --socket "$SERVE_SOCK" drain > /dev/null
wait "$SERVE_PID"
test -s "$SERVE_RESUMED"
cmp "$SERVE_RESUMED" "$SERVE_STRAIGHT"
rm -f "$SERVE_SOCK" "$SERVE_JOURNAL" "$SERVE_RESUMED" "$SERVE_STRAIGHT"

echo "== bench smoke =="
BENCH_SMOKE=1 cargo bench -q -p equitls-bench --bench parallel
BENCH_SMOKE=1 cargo bench -q -p equitls-bench --bench serve

echo "== rewriting bench smoke: indexed must not lose to linear scan =="
# A fixed tiny workload through all three engine legs. Wall times jitter,
# so the gate is deliberately loose (indexed within 1.5x of linear on the
# fan-out normalize loop); the structural assertions are exact — the
# index must actually prune, and the shared cache must hit on every
# clone after the first.
REWRITING_JSON="$(mktemp -u /tmp/equitls_check_XXXXXX.rewriting.json)"
BENCH_SMOKE=1 BENCH_OUT="$REWRITING_JSON" \
    cargo bench -q -p equitls-bench --bench rewriting
python3 - "$REWRITING_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
legs = {leg["leg"]: leg for leg in doc["fanout"]["legs"]}
linear, indexed, shared = legs["linear"], legs["indexed"], legs["indexed+shared"]
assert indexed["normalize_ms"] <= 1.5 * linear["normalize_ms"], (
    f"indexed fan-out {indexed['normalize_ms']:.3f} ms vs "
    f"linear {linear['normalize_ms']:.3f} ms"
)
assert indexed["rewrites"] == linear["rewrites"], "indexed must be bit-identical"
assert indexed["index_pruned"] > 0, "the index must prune candidates"
clones = doc["fanout"]["clones"]
assert shared["shared_hits"] == clones - 1, (
    f"every clone after the first must hit: {shared['shared_hits']} of {clones - 1}"
)
EOF
rm -f "$REWRITING_JSON"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== OK =="
