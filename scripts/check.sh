#!/usr/bin/env bash
# The full local gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== tls-lint =="
cargo run -q --release -p equitls-tls --bin tls-lint

echo "== parallel determinism (2 jobs) =="
cargo test -q --release --test parallel_determinism

echo "== robustness: fault injection + 2s-deadline smoke (jobs 1/2/4) =="
cargo test -q --release --test robustness
cargo test -q --release -p equitls-tls --test cli_budget

echo "== bench smoke =="
BENCH_SMOKE=1 cargo bench -q -p equitls-bench --bench parallel

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== OK =="
