#!/usr/bin/env bash
# The full local gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== tls-lint =="
cargo run -q --release -p equitls-tls --bin tls-lint

echo "== parallel determinism (2 jobs) =="
cargo test -q --release --test parallel_determinism

echo "== robustness: fault injection + 2s-deadline smoke (jobs 1/2/4) =="
cargo test -q --release --test robustness
cargo test -q --release -p equitls-tls --test cli_budget

echo "== checkpoint/resume: determinism (jobs 1/2/4) + snapshot corruption =="
cargo test -q --release --test checkpoint_determinism
cargo test -q --release -p equitls-tls --test cli_checkpoint

echo "== checkpoint/resume: kill-and-resume smoke =="
# Interrupt a campaign with a short deadline (ledger stays on disk),
# resume it to completion, and diff the report against a straight-through
# run — identical up to wall-clock columns (field 5 of every table row).
CKPT="$(mktemp -u /tmp/equitls_check_XXXXXX.snap)"
STRIP_TIMES='{ $5 = ""; print }'
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-cepms-cpms inv1 --deadline-ms 60 --checkpoint "$CKPT" > /dev/null || true
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-cepms-cpms inv1 --resume --checkpoint "$CKPT" \
    | awk "$STRIP_TIMES" > /tmp/equitls_check_resumed.txt
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-cepms-cpms inv1 \
    | awk "$STRIP_TIMES" > /tmp/equitls_check_straight.txt
diff /tmp/equitls_check_resumed.txt /tmp/equitls_check_straight.txt
rm -f "$CKPT" /tmp/equitls_check_resumed.txt /tmp/equitls_check_straight.txt

echo "== trace smoke: profiled campaign -> summarize/export/diff =="
# A profiled proof writes a JSONL trace and a Chrome trace; the offline
# tool must summarize it, convert it, and find no regression against
# itself.
TRACE="$(mktemp -u /tmp/equitls_check_XXXXXX.jsonl)"
PROFILE="$(mktemp -u /tmp/equitls_check_XXXXXX.chrome.json)"
cargo run -q --release -p equitls-tls --bin tls-prove -- \
    lem-src-honest --trace "$TRACE" --profile "$PROFILE" > /dev/null
test -s "$TRACE" && test -s "$PROFILE"
cargo run -q --release -p equitls-tls --bin tls-trace -- \
    summarize "$TRACE" > /dev/null
cargo run -q --release -p equitls-tls --bin tls-trace -- \
    export "$TRACE" --chrome "${PROFILE}.2" > /dev/null
cargo run -q --release -p equitls-tls --bin tls-trace -- \
    diff "$TRACE" "$TRACE" > /dev/null
rm -f "$TRACE" "$PROFILE" "${PROFILE}.2"

echo "== bench smoke =="
BENCH_SMOKE=1 cargo bench -q -p equitls-bench --bench parallel

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== OK =="
