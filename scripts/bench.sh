#!/usr/bin/env bash
# Reproducible benchmark pipeline: the parallel execution layer (E14),
# the rewrite engine's indexing / shared-cache legs (E19), and the serve
# daemon's warm-path latency (E20).
#
# Runs the explorer and prover workloads at jobs ∈ {1, 2, all cores},
# the three-leg rewriting benchmark, and the cold/warm serve legs, and
# writes BENCH_parallel.json, BENCH_rewriting.json, and BENCH_serve.json
# at the repository root.
# Knobs:
#
#   BENCH_SAMPLES=N   timed repetitions per point (default 3, best-of-N)
#   BENCH_OUT=path    output path override (applies to whichever bench
#                     runs; only meaningful with BENCH_ONLY)
#   BENCH_ONLY=name   run a single bench: "parallel", "rewriting", or "serve"
#   BENCH_SMOKE=1     tiny limits + temp output, for CI smoke
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

# Provenance: stamp the commit and machine into the JSON so a
# BENCH_*.json file can always be traced back to what produced it.
BENCH_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD 2>/dev/null; then
    BENCH_GIT_REV="${BENCH_GIT_REV}-dirty"
fi
BENCH_HOSTNAME="$(hostname 2>/dev/null || uname -n 2>/dev/null || echo unknown)"
export BENCH_GIT_REV BENCH_HOSTNAME

run_bench() {
    local name="$1" default_out="$2"
    echo "== cargo bench -p equitls-bench --bench $name =="
    cargo bench -q -p equitls-bench --bench "$name"
    if [ "${BENCH_SMOKE:-0}" != "1" ]; then
        echo "== $default_out =="
        cat "${BENCH_OUT:-$default_out}"
    fi
}

case "${BENCH_ONLY:-all}" in
parallel) run_bench parallel BENCH_parallel.json ;;
rewriting) run_bench rewriting BENCH_rewriting.json ;;
serve) run_bench serve BENCH_serve.json ;;
all)
    if [ -n "${BENCH_OUT:-}" ]; then
        echo "BENCH_OUT needs BENCH_ONLY=parallel, rewriting, or serve" >&2
        exit 2
    fi
    run_bench parallel BENCH_parallel.json
    run_bench rewriting BENCH_rewriting.json
    run_bench serve BENCH_serve.json
    ;;
*)
    echo "unknown BENCH_ONLY='${BENCH_ONLY}' (want parallel|rewriting|serve|all)" >&2
    exit 2
    ;;
esac
