#!/usr/bin/env bash
# Reproducible benchmark pipeline for the parallel execution layer (E14).
#
# Runs the explorer and prover workloads at jobs ∈ {1, 2, all cores} and
# writes BENCH_parallel.json at the repository root. Knobs:
#
#   BENCH_SAMPLES=N   timed repetitions per point (default 3, best-of-N)
#   BENCH_OUT=path    output path (default <repo>/BENCH_parallel.json)
#   BENCH_SMOKE=1     tiny limits + temp output, for CI smoke
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

# Provenance: stamp the commit and machine into the JSON so a
# BENCH_*.json file can always be traced back to what produced it.
BENCH_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD 2>/dev/null; then
    BENCH_GIT_REV="${BENCH_GIT_REV}-dirty"
fi
BENCH_HOSTNAME="$(hostname 2>/dev/null || uname -n 2>/dev/null || echo unknown)"
export BENCH_GIT_REV BENCH_HOSTNAME

echo "== cargo bench -p equitls-bench --bench parallel =="
cargo bench -q -p equitls-bench --bench parallel

if [ "${BENCH_SMOKE:-0}" != "1" ]; then
    echo "== BENCH_parallel.json =="
    cat "${BENCH_OUT:-BENCH_parallel.json}"
fi
